"""Common file-system machinery: layout, inodes, data placement.

The substrates model a flat-namespace file system with page-granular
extents.  What matters for the paper's experiments is the *write traffic*
each design generates (data pages, metadata pages, journal pages), so the
on-"disk" structures are kept structurally (Python objects) while every
page-sized update is issued to the SSD as a real page write with
realistic content.
"""

from dataclasses import dataclass, field

from repro.common.errors import FileSystemError
from repro.fs.allocator import BlockAllocator

INODES_PER_PAGE = 32


@dataclass
class Inode:
    """One file's metadata."""

    inode_id: int
    name: str
    size: int = 0
    mtime_us: int = 0
    version: int = 0
    extents: dict = field(default_factory=dict)  # file page index -> LPA


@dataclass
class FileStats:
    """Write-traffic breakdown (the Figure 9 comparison signal)."""

    data_page_writes: int = 0
    meta_page_writes: int = 0
    journal_page_writes: int = 0
    pages_read: int = 0
    bytes_written: int = 0
    bytes_read: int = 0

    @property
    def total_page_writes(self):
        return self.data_page_writes + self.meta_page_writes + self.journal_page_writes


class FileSystemBase:
    """Shared logic; subclasses specialize placement and journaling."""

    #: Fraction of the device set aside for file data (rest: metadata).
    name = "basefs"

    def __init__(self, ssd, max_files=1024):
        self.ssd = ssd
        self.page_size = ssd.device.geometry.page_size
        inode_pages = max(1, max_files // INODES_PER_PAGE)
        reserved = 1 + inode_pages + self._journal_pages()
        data_pages = ssd.logical_pages - reserved
        if data_pages <= 0:
            raise FileSystemError("device too small for file system layout")
        self._inode_region_start = 1
        self._inode_pages = inode_pages
        self._journal_start = 1 + inode_pages
        self.allocator = BlockAllocator(reserved, data_pages)
        self._inodes = {}
        self._next_inode_id = 0
        self.max_files = max_files
        self.stats = FileStats()
        self._write_superblock()

    # --- Layout hooks ---------------------------------------------------------

    def _journal_pages(self):
        return 0

    # --- Metadata writes ------------------------------------------------------

    def _meta_page_content(self, tag, version):
        """Realistic metadata page content: mostly stable, small churn."""
        header = ("%s:%s:v%d" % (self.name, tag, version)).encode()
        return header.ljust(self.page_size, b"\x00")[: self.page_size]

    def _write_superblock(self):
        self.ssd.write(0, self._meta_page_content("super", 0))
        self.stats.meta_page_writes += 1

    def _inode_lpa(self, inode_id):
        return self._inode_region_start + (inode_id // INODES_PER_PAGE) % self._inode_pages

    def _write_inode(self, inode):
        inode.version += 1
        lpa = self._inode_lpa(inode.inode_id)
        self.ssd.write(lpa, self._meta_page_content("inode%d" % lpa, inode.version))
        self.stats.meta_page_writes += 1

    # --- Namespace -------------------------------------------------------------

    def create(self, name):
        if name in self._inodes:
            raise FileSystemError("file exists: %r" % name)
        if len(self._inodes) >= self.max_files:
            raise FileSystemError("too many files")
        inode = Inode(self._next_inode_id, name, mtime_us=self.ssd.clock.now_us)
        self._next_inode_id += 1
        self._inodes[name] = inode
        self._write_inode(inode)
        return inode

    def exists(self, name):
        return name in self._inodes

    def list_files(self):
        return sorted(self._inodes)

    def _inode(self, name):
        inode = self._inodes.get(name)
        if inode is None:
            raise FileSystemError("no such file: %r" % name)
        return inode

    def file_size(self, name):
        return self._inode(name).size

    def file_lpas(self, name):
        """The file's page extents — what TimeKits recovery operates on."""
        inode = self._inode(name)
        return [inode.extents[i] for i in sorted(inode.extents)]

    def delete(self, name):
        inode = self._inode(name)
        for lpa in inode.extents.values():
            self.ssd.trim(lpa)
            self.allocator.release(lpa)
        del self._inodes[name]
        self._write_inode(inode)

    # --- Data path (subclass hooks) -----------------------------------------------

    def _place_page(self, inode, page_index):
        """LPA to write for this file page (may reuse or remap)."""
        raise NotImplementedError

    def _data_write(self, inode, page_index, content):
        lpa = self._place_page(inode, page_index)
        self.ssd.write(lpa, content)
        self.stats.data_page_writes += 1
        return lpa

    def _pre_write(self, inode, page_payloads):
        """Hook before in-place data writes (journaling goes here)."""

    # --- Public I/O ----------------------------------------------------------------

    def write(self, name, offset, data):
        """Write ``data`` bytes at byte ``offset``; returns bytes written."""
        if offset < 0:
            raise FileSystemError("negative offset")
        inode = self._inode(name)
        payloads = self._paginate(inode, offset, data)
        self._pre_write(inode, payloads)
        for page_index, content in payloads:
            self._data_write(inode, page_index, content)
        inode.size = max(inode.size, offset + len(data))
        inode.mtime_us = self.ssd.clock.now_us
        self._write_inode(inode)
        self.stats.bytes_written += len(data)
        return len(data)

    def write_pages(self, name, first_page, npages, contents=None):
        """Page-aligned fast path; ``contents`` is an optional page list."""
        inode = self._inode(name)
        payloads = []
        for i in range(npages):
            content = contents[i] if contents is not None else None
            payloads.append((first_page + i, content))
        self._pre_write(inode, payloads)
        for page_index, content in payloads:
            self._data_write(inode, page_index, content)
        inode.size = max(inode.size, (first_page + npages) * self.page_size)
        inode.mtime_us = self.ssd.clock.now_us
        self._write_inode(inode)
        self.stats.bytes_written += npages * self.page_size
        return npages

    def read(self, name, offset, length):
        """Read ``length`` bytes at ``offset``; returns bytes (or None
        page placeholders joined as zero bytes in content-less mode)."""
        inode = self._inode(name)
        if offset >= inode.size:
            return b""
        length = min(length, inode.size - offset)
        out = bytearray()
        first = offset // self.page_size
        last = (offset + length - 1) // self.page_size
        for page_index in range(first, last + 1):
            page = self._read_page(inode, page_index)
            out.extend(page)
        start = offset - first * self.page_size
        self.stats.bytes_read += length
        return bytes(out[start : start + length])

    def read_pages(self, name, first_page, npages):
        inode = self._inode(name)
        return [self._read_page(inode, first_page + i) for i in range(npages)]

    def _read_page(self, inode, page_index):
        lpa = inode.extents.get(page_index)
        if lpa is None:
            return bytes(self.page_size)
        data, _ = self.ssd.read(lpa)
        self.stats.pages_read += 1
        if data is None:
            return bytes(self.page_size)
        return data

    def _paginate(self, inode, offset, data):
        """Split a byte write into page payloads, read-modify-writing
        partial head/tail pages like a real FS."""
        payloads = []
        cursor = 0
        while cursor < len(data):
            absolute = offset + cursor
            page_index = absolute // self.page_size
            within = absolute % self.page_size
            take = min(self.page_size - within, len(data) - cursor)
            chunk = data[cursor : cursor + take]
            if take == self.page_size:
                content = chunk
            else:
                existing = bytearray(self._read_page(inode, page_index))
                existing[within : within + take] = chunk
                content = bytes(existing)
            payloads.append((page_index, content))
            cursor += take
        return payloads
