"""Bitmap block allocator for the file-system substrates."""

from repro.common.errors import FileSystemError


class BlockAllocator:
    """Allocates logical page addresses from a contiguous region.

    Next-fit scanning with a free count, like a classic FS block bitmap.
    """

    def __init__(self, start_lpa, count):
        if count <= 0:
            raise FileSystemError("allocator needs a non-empty region")
        self.start_lpa = start_lpa
        self.count = count
        self._used = bytearray(count)
        self._free = count
        self._cursor = 0

    @property
    def free_count(self):
        return self._free

    @property
    def used_count(self):
        return self.count - self._free

    def allocate(self):
        """Return a free LPA, or raise :class:`FileSystemError`."""
        if self._free == 0:
            raise FileSystemError("file system out of space")
        for probe in range(self.count):
            index = (self._cursor + probe) % self.count
            if not self._used[index]:
                self._used[index] = 1
                self._free -= 1
                self._cursor = (index + 1) % self.count
                return self.start_lpa + index
        raise FileSystemError("allocator free count out of sync")

    def allocate_many(self, n):
        return [self.allocate() for _ in range(n)]

    def release(self, lpa):
        index = lpa - self.start_lpa
        if not 0 <= index < self.count:
            raise FileSystemError("LPA %d outside allocator region" % lpa)
        if not self._used[index]:
            raise FileSystemError("double free of LPA %d" % lpa)
        self._used[index] = 0
        self._free += 1

    def is_allocated(self, lpa):
        index = lpa - self.start_lpa
        return 0 <= index < self.count and bool(self._used[index])
