"""Plain in-place file system — the one the paper runs on TimeSSD.

No journal: data pages have stable LPAs and are overwritten in place
(the device's out-of-place machinery underneath retains history).  This
is "Ext4 with journaling disabled" from the paper's §5.3 methodology.
"""

from repro.fs.base import FileSystemBase


class PlainFS(FileSystemBase):
    """In-place updates, no journaling, no FS-level remapping."""

    name = "plainfs"

    def _place_page(self, inode, page_index):
        lpa = inode.extents.get(page_index)
        if lpa is None:
            lpa = self.allocator.allocate()
            inode.extents[page_index] = lpa
        return lpa
