"""F2FS-style log-structured file system.

Updates never overwrite in place at the FS level: each written page gets
a fresh LPA (the old one is trimmed and freed) and node/NAT metadata is
updated periodically.  This avoids the journal's double write — the
paper measures F2FS between Ext4 and TimeSSD — at the cost of FS-level
cleaning and node-table traffic.
"""

from repro.fs.base import FileSystemBase

# One NAT/segment-summary page write per this many remapped data pages,
# approximating F2FS's amortized node traffic.
NAT_UPDATE_INTERVAL = 64


class LogStructuredFS(FileSystemBase):
    """Out-of-place placement with amortized node-table updates."""

    name = "f2fssim"

    def __init__(self, ssd, max_files=1024):
        super().__init__(ssd, max_files=max_files)
        self._remaps_since_nat = 0
        self.nat_writes = 0

    def _place_page(self, inode, page_index):
        old = inode.extents.get(page_index)
        lpa = self.allocator.allocate()
        inode.extents[page_index] = lpa
        if old is not None:
            # The old location is obsolete at the FS level: free and TRIM
            # it so the device knows (F2FS issues discards the same way).
            self.ssd.trim(old)
            self.allocator.release(old)
        self._remaps_since_nat += 1
        if self._remaps_since_nat >= NAT_UPDATE_INTERVAL:
            self._remaps_since_nat = 0
            self._write_nat_page()
        return lpa

    def _write_nat_page(self):
        self.nat_writes += 1
        self.ssd.write(0, self._meta_page_content("nat", self.nat_writes))
        self.stats.meta_page_writes += 1
