"""File-system substrates over the simulated SSDs.

Figure 9 of the paper compares software approaches to retaining storage
state (Ext4 data journaling, F2FS log-structured writes) against TimeSSD
under a plain, journal-free file system.  These simulators reproduce the
*write traffic patterns* of each design over the same block device:

* :class:`JournalingFS` — ext4-style data journaling: every update is
  written twice (journal, then home location) plus a commit record;
* :class:`LogStructuredFS` — F2FS-style: updates go to fresh blocks
  (out-of-place at the FS level) plus periodic node-table updates;
* :class:`PlainFS` — in-place updates with no journal, relying on the
  device (TimeSSD) for history and recovery.
"""

from repro.fs.allocator import BlockAllocator
from repro.fs.base import FileSystemBase, FileStats
from repro.fs.cow import CowFS
from repro.fs.journaling import JournalingFS
from repro.fs.logstructured import LogStructuredFS
from repro.fs.plain import PlainFS

__all__ = [
    "BlockAllocator",
    "FileSystemBase",
    "FileStats",
    "CowFS",
    "JournalingFS",
    "LogStructuredFS",
    "PlainFS",
]
