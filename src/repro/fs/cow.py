"""Copy-on-write snapshotting file system (ext3cow / btrfs style).

The paper's related work (§6) contrasts TimeSSD with *software*
versioning: snapshotting and versioning file systems retain history
above the block interface.  This substrate implements that alternative
so the extension benchmark can compare the two approaches head-to-head:

* ``snapshot()`` opens a new epoch; the first write to any page after a
  snapshot copies it to a fresh location (COW) so the snapshot keeps
  the old block;
* ``read_at(name, snapshot_id, ...)`` reads a file as of a snapshot;
* ``delete_snapshot()`` releases page versions no live snapshot needs.

Unlike TimeSSD's firmware retention, all of this is ordinary host
software: a kernel-privileged attacker can simply call
``delete_snapshot`` — which is precisely the paper's motivation — and
every retained version costs a full page of user-visible space.
"""

from dataclasses import dataclass, field

from repro.common.errors import FileSystemError
from repro.fs.base import FileSystemBase


@dataclass
class _PageVersion:
    """One on-disk version of a file page."""

    lpa: int
    birth_epoch: int
    death_epoch: int = None  # epoch in which it was superseded (None = live)


class CowFS(FileSystemBase):
    """Snapshotting FS with page-granular copy-on-write."""

    name = "cowfs"

    def __init__(self, ssd, max_files=1024):
        super().__init__(ssd, max_files=max_files)
        self._epoch = 0
        self._snapshots = {}  # snapshot id -> epoch frozen
        self._next_snapshot_id = 1
        # (inode_id, page_index) -> [ _PageVersion, ... ] oldest first.
        self._versions = {}

    # --- Snapshot management ------------------------------------------------------

    def snapshot(self):
        """Freeze the current state; returns a snapshot id."""
        snapshot_id = self._next_snapshot_id
        self._next_snapshot_id += 1
        self._snapshots[snapshot_id] = self._epoch
        self._epoch += 1
        # Superblock write records the snapshot, like a real FS commit.
        self.ssd.write(0, self._meta_page_content("snap", snapshot_id))
        self.stats.meta_page_writes += 1
        return snapshot_id

    def snapshots(self):
        return sorted(self._snapshots)

    def delete_snapshot(self, snapshot_id):
        """Drop a snapshot and free versions nothing else references.

        This is the operation ransomware with kernel privileges uses to
        destroy software-retained history — it succeeds silently, which
        is the contrast with TimeSSD's firmware-isolated retention.
        """
        if snapshot_id not in self._snapshots:
            raise FileSystemError("no such snapshot: %r" % snapshot_id)
        del self._snapshots[snapshot_id]
        self._reap_unreferenced()

    def _live_epochs(self):
        return set(self._snapshots.values())

    def _reap_unreferenced(self):
        live = self._live_epochs()
        for key, versions in self._versions.items():
            kept = []
            for version in versions:
                if version.death_epoch is None:
                    kept.append(version)  # current content, always kept
                    continue
                needed = any(
                    version.birth_epoch <= epoch < version.death_epoch
                    for epoch in live
                )
                if needed:
                    kept.append(version)
                else:
                    self.ssd.trim(version.lpa)
                    self.allocator.release(version.lpa)
            self._versions[key] = kept

    # --- COW placement ------------------------------------------------------------

    def _place_page(self, inode, page_index):
        key = (inode.inode_id, page_index)
        versions = self._versions.setdefault(key, [])
        current = versions[-1] if versions else None
        if current is None:
            lpa = self.allocator.allocate()
            versions.append(_PageVersion(lpa, self._epoch))
            inode.extents[page_index] = lpa
            return lpa
        if current.birth_epoch == self._epoch or not self._snapshot_covers(current):
            # No snapshot holds this version: overwrite in place.
            return current.lpa
        # COW: the old version belongs to a snapshot; write elsewhere.
        lpa = self.allocator.allocate()
        current.death_epoch = self._epoch
        versions.append(_PageVersion(lpa, self._epoch))
        inode.extents[page_index] = lpa
        return lpa

    def _snapshot_covers(self, version):
        return any(epoch >= version.birth_epoch for epoch in self._live_epochs())

    # --- Time-travel reads ----------------------------------------------------------

    def _version_at(self, inode, page_index, epoch):
        versions = self._versions.get((inode.inode_id, page_index), [])
        for version in reversed(versions):
            died = version.death_epoch
            if version.birth_epoch <= epoch and (died is None or died > epoch):
                return version
        return None

    def read_at(self, name, snapshot_id, offset, length):
        """Read file content as of ``snapshot_id``."""
        if snapshot_id not in self._snapshots:
            raise FileSystemError("no such snapshot: %r" % snapshot_id)
        epoch = self._snapshots[snapshot_id]
        inode = self._inode(name)
        out = bytearray()
        first = offset // self.page_size
        last = (offset + length - 1) // self.page_size
        for page_index in range(first, last + 1):
            version = self._version_at(inode, page_index, epoch)
            if version is None:
                out.extend(bytes(self.page_size))
                continue
            data, _ = self.ssd.read(version.lpa)
            self.stats.pages_read += 1
            out.extend(data if data is not None else bytes(self.page_size))
        start = offset - first * self.page_size
        return bytes(out[start : start + length])

    def restore_from_snapshot(self, name, snapshot_id):
        """Roll a file back to a snapshot (writes the old content)."""
        inode = self._inode(name)
        size = inode.size
        content = self.read_at(name, snapshot_id, 0, size)
        self.write(name, 0, content)
        return size

    # --- Accounting ------------------------------------------------------------------

    def retained_version_pages(self):
        """Pages consumed purely by snapshot history (dead versions)."""
        return sum(
            1
            for versions in self._versions.values()
            for version in versions
            if version.death_epoch is not None
        )

    def delete(self, name):
        inode = self._inode(name)
        # Current extents may be snapshot-referenced; only free versions
        # no snapshot covers.
        for page_index in list(inode.extents):
            key = (inode.inode_id, page_index)
            versions = self._versions.get(key, [])
            if versions:
                versions[-1].death_epoch = self._epoch
        del self._inodes[name]
        self._write_inode(inode)
        self._reap_unreferenced()
