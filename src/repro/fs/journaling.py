"""Ext4-style data journaling.

With ``data=journal`` every update is written twice: first the data and
metadata go to the journal (plus a commit record per transaction), then
checkpointing writes them to their home locations.  That doubling is the
write amplification the paper's Figure 9 charges against Ext4.
"""

from repro.fs.base import FileSystemBase

DEFAULT_JOURNAL_PAGES = 256


class JournalingFS(FileSystemBase):
    """In-place placement plus a circular data journal."""

    name = "ext4sim"

    def __init__(self, ssd, max_files=1024, journal_pages=DEFAULT_JOURNAL_PAGES):
        self._journal_size = journal_pages
        self._journal_cursor = 0
        super().__init__(ssd, max_files=max_files)
        self.transactions = 0

    def _journal_pages(self):
        return self._journal_size

    def _journal_write(self, content):
        lpa = self._journal_start + self._journal_cursor
        self._journal_cursor = (self._journal_cursor + 1) % self._journal_size
        self.ssd.write(lpa, content)
        self.stats.journal_page_writes += 1

    def _place_page(self, inode, page_index):
        lpa = inode.extents.get(page_index)
        if lpa is None:
            lpa = self.allocator.allocate()
            inode.extents[page_index] = lpa
        return lpa

    def _pre_write(self, inode, page_payloads):
        """One transaction: journal each data page, then a commit record."""
        for _page_index, content in page_payloads:
            self._journal_write(content)
        self.transactions += 1
        self._journal_write(
            self._meta_page_content("commit", self.transactions)
        )
