"""Encryption-ransomware family models (paper Figure 10).

Each profile captures the storage-visible behaviour of one family as
reported in the malware-analysis literature the paper builds on
(FlashGuard, CCS'17): attack speed, victim coverage, and modus operandi
— ``overwrite`` families read a file and encrypt it in place;
``delete_rewrite`` families write an encrypted copy and delete the
original.  Both leave the plaintext recoverable inside TimeSSD.
"""

import random
from dataclasses import dataclass, field

from repro.common.units import MINUTE_US, SECOND_US
from repro.workloads.content import ContentFactory


@dataclass(frozen=True)
class RansomwareProfile:
    """Storage-level fingerprint of one ransomware family."""

    name: str
    #: Files encrypted per minute (attack speed).
    files_per_minute: float
    #: Fraction of user files the family encrypts before revealing itself.
    target_fraction: float
    #: "overwrite" (read-encrypt-overwrite) or "delete_rewrite".
    pattern: str = "overwrite"

    def __post_init__(self):
        if self.pattern not in ("overwrite", "delete_rewrite"):
            raise ValueError("unknown attack pattern %r" % self.pattern)


# Speeds/coverage approximate published analyses; the relative spread is
# what matters for the Figure 10 shape (recovery time tracks the volume
# of data each family encrypted).
RANSOMWARE_FAMILIES = {
    "Petya": RansomwareProfile("Petya", files_per_minute=400, target_fraction=0.95),
    "CTB-Locker": RansomwareProfile("CTB-Locker", 220, 0.80),
    "JigSaw": RansomwareProfile("JigSaw", 60, 0.40),
    "Maktub": RansomwareProfile("Maktub", 150, 0.70),
    "Mobef": RansomwareProfile("Mobef", 90, 0.50),
    "CryptoWall": RansomwareProfile("CryptoWall", 200, 0.85, "delete_rewrite"),
    "Locky": RansomwareProfile("Locky", 260, 0.90, "delete_rewrite"),
    "7ev3n": RansomwareProfile("7ev3n", 80, 0.45),
    "Stampado": RansomwareProfile("Stampado", 50, 0.35),
    "TeslaCrypt": RansomwareProfile("TeslaCrypt", 180, 0.75),
    "HydraCrypt": RansomwareProfile("HydraCrypt", 120, 0.60),
    "CryptoFortress": RansomwareProfile("CryptoFortress", 100, 0.55),
    "Cerber": RansomwareProfile("Cerber", 240, 0.85, "delete_rewrite"),
}


@dataclass
class AttackReport:
    """What the attack did — the defender's recovery work list."""

    family: str
    started_us: int
    finished_us: int
    encrypted_files: list = field(default_factory=list)
    #: name -> LPAs holding the file at attack time (for overwrite
    #: families these are the live extents; for delete_rewrite families
    #: the original extents that were trimmed).
    victim_extents: dict = field(default_factory=dict)

    @property
    def duration_us(self):
        return self.finished_us - self.started_us


class RansomwareAttack:
    """Executes a family profile against a file system."""

    def __init__(self, fs, profile, seed=0):
        self.fs = fs
        self.profile = profile
        self._rng = random.Random(seed)
        self._content = ContentFactory(fs.page_size, self._rng)

    def _encrypted_page(self):
        # Ciphertext is incompressible random data.
        return self._content.incompressible()

    def execute(self):
        """Encrypt the targeted fraction of files; returns AttackReport."""
        fs = self.fs
        profile = self.profile
        files = [f for f in fs.list_files() if not f.startswith(".")]
        self._rng.shuffle(files)
        count = max(1, int(len(files) * profile.target_fraction))
        victims = files[:count]
        gap_us = int(MINUTE_US / profile.files_per_minute)
        report = AttackReport(
            family=profile.name,
            started_us=fs.ssd.clock.now_us,
            finished_us=fs.ssd.clock.now_us,
        )
        for name in victims:
            npages = max(1, (fs.file_size(name) + fs.page_size - 1) // fs.page_size)
            report.victim_extents[name] = list(fs.file_lpas(name))
            if profile.pattern == "overwrite":
                # Read (the tell-tale ransomware signature), then encrypt
                # in place.
                fs.read(name, 0, fs.file_size(name))
                for page in range(npages):
                    fs.write_pages(name, page, 1, [self._encrypted_page()])
            else:
                # Write an encrypted copy, delete the original.
                fs.read(name, 0, fs.file_size(name))
                copy = name + ".locked"
                fs.create(copy)
                for page in range(npages):
                    fs.write_pages(copy, page, 1, [self._encrypted_page()])
                fs.delete(name)
            report.encrypted_files.append(name)
            fs.ssd.clock.advance(gap_us)
        report.finished_us = fs.ssd.clock.now_us
        return report
