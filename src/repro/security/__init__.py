"""Security substrates: ransomware models and the FlashGuard comparator.

The paper's §5.5.1 recovers data encrypted by 13 live ransomware
families and compares against FlashGuard (CCS'17).  The family models
here reproduce each family's storage-level behaviour — how many files it
encrypts, how fast, and whether it overwrites in place or deletes and
rewrites — which is what recovery time depends on.
"""

from repro.security.flashguard import FlashGuardSSD
from repro.security.ransomware import (
    RANSOMWARE_FAMILIES,
    AttackReport,
    RansomwareAttack,
    RansomwareProfile,
)
from repro.security.defense import RansomwareDefense, RecoveryReport

__all__ = [
    "RANSOMWARE_FAMILIES",
    "RansomwareProfile",
    "RansomwareAttack",
    "AttackReport",
    "FlashGuardSSD",
    "RansomwareDefense",
    "RecoveryReport",
]
