"""Post-attack data recovery workflows (paper §5.5.1).

Once the ransom note appears, the defender knows the attack window and
the victim files.  ``RansomwareDefense`` restores them either through
TimeKits (on a TimeSSD) or through FlashGuard's narrower retention.
"""

from dataclasses import dataclass, field

from repro.common.errors import QueryError
from repro.security.flashguard import FlashGuardSSD
from repro.timekits.api import TimeKits, pick_as_of


@dataclass
class RecoveryReport:
    """Outcome of a whole-attack recovery."""

    defender: str
    files_recovered: int = 0
    files_failed: int = 0
    pages_restored: int = 0
    elapsed_us: int = 0
    recovered_content: dict = field(default_factory=dict)  # name -> {page: data}


class RansomwareDefense:
    """Recovers every file an :class:`AttackReport` lists as encrypted."""

    def __init__(self, fs):
        self.fs = fs

    def _restore_into_fs(self, name, page_datas):
        """Write recovered page contents back through the file system."""
        fs = self.fs
        locked = name + ".locked"
        if fs.exists(locked):
            fs.delete(locked)
        if not fs.exists(name):
            fs.create(name)
        for page_index, data in enumerate(page_datas):
            fs.write_pages(name, page_index, 1, [data])

    def recover_with_timekits(self, attack_report, threads=1):
        """TimeSSD path: query pre-attack versions, write them back."""
        ssd = self.fs.ssd
        kits = TimeKits(ssd)
        t_clean = attack_report.started_us - 1
        report = RecoveryReport(defender="TimeSSD")
        start = ssd.clock.now_us
        for name in attack_report.encrypted_files:
            lpas = attack_report.victim_extents[name]
            chains, _ = kits.walk_many(lpas, threads)
            page_datas = []
            ok = True
            for lpa in lpas:
                version = pick_as_of(chains.get(lpa, []), t_clean)
                if version is None:
                    ok = False
                    break
                page_datas.append(version.data)
            if not ok:
                report.files_failed += 1
                continue
            self._restore_into_fs(name, page_datas)
            report.files_recovered += 1
            report.pages_restored += len(page_datas)
            report.recovered_content[name] = dict(enumerate(page_datas))
        report.elapsed_us = ssd.clock.now_us - start
        return report

    def recover_with_flashguard(self, attack_report, threads=1):
        """FlashGuard path: restore read-then-overwritten pages."""
        ssd = self.fs.ssd
        if not isinstance(ssd, FlashGuardSSD):
            raise QueryError("FlashGuard recovery needs a FlashGuardSSD device")
        t_clean = attack_report.started_us - 1
        report = RecoveryReport(defender="FlashGuard")
        start = ssd.clock.now_us
        for name in attack_report.encrypted_files:
            lpas = attack_report.victim_extents[name]
            restored, _elapsed = ssd.recover_lpas(
                lpas, t_clean, threads, write_back=False
            )
            if len(restored) < len(lpas):
                report.files_failed += 1
                continue
            page_datas = [restored[lpa] for lpa in lpas]
            self._restore_into_fs(name, page_datas)
            report.files_recovered += 1
            report.pages_restored += len(page_datas)
            report.recovered_content[name] = dict(enumerate(page_datas))
        report.elapsed_us = ssd.clock.now_us - start
        return report
