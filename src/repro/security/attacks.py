"""Attacks aimed at TimeSSD itself (paper §3.1, §3.10).

Beyond ordinary ransomware, the paper analyses adversaries who attack
the *retention mechanism*:

* **junk flooding** — intensively write/delete junk to force GC to
  recycle the retained history.  Defense: within the retention floor
  nothing can be recycled, so the device fills and stops serving I/O —
  a loud, user-visible alarm instead of silent history loss;
* **slow dribbling** — write junk slowly to stay under the radar.
  Defense: a less write-intensive workload simply *lengthens* retention
  ("the retention duration can increase to up to 56 days"), raising the
  attacker's exposure window;
* **rollback wiping** — use the recovery API itself: roll everything
  back, then flood.  Defense: rollbacks are regular writes (the
  pre-rollback state is retained too) and the flood hits the same floor
  guarantee as above.
"""

import random
from dataclasses import dataclass

from repro.common.errors import RetentionViolationError
from repro.timekits.api import TimeKits


@dataclass
class AttackOutcome:
    """What the attacker achieved — and what the defender kept."""

    attack: str
    device_alarmed: bool
    junk_pages_written: int
    attack_duration_us: int
    history_survived: bool


def _history_intact(ssd, protected, t_clean):
    """Every protected (lpa -> content) pair still retrievable as of
    ``t_clean``?"""
    kits = TimeKits(ssd)
    for lpa, content in protected.items():
        result = kits.addr_query(lpa, cnt=1, t=t_clean)
        version = result.value.get(lpa)
        if version is None or version.data != content:
            return False
    return True


def _junk_pool(ssd, rng, variants=16):
    """Pre-generated incompressible junk pages (attackers avoid
    compressible content — it would only help the defender)."""
    size = ssd.device.geometry.page_size
    return [bytes(rng.randrange(256) for _ in range(size)) for _ in range(variants)]


class JunkFloodAttack:
    """Write junk as fast as the device accepts it."""

    def __init__(self, ssd, seed=0, junk_gap_us=50):
        self.ssd = ssd
        self._rng = random.Random(seed)
        self.junk_gap_us = junk_gap_us
        self._junk = _junk_pool(ssd, self._rng)

    def execute(self, protected, t_clean, max_pages=500_000):
        """Flood until the device alarms (or ``max_pages``); returns
        the outcome including whether ``protected`` history survived."""
        ssd = self.ssd
        start = ssd.clock.now_us
        working = ssd.logical_pages
        written = 0
        alarmed = False
        for i in range(max_pages):
            lpa = self._rng.randrange(working)
            try:
                ssd.write(lpa, self._junk[i % len(self._junk)])
            except RetentionViolationError:
                alarmed = True
                break
            written += 1
            ssd.clock.advance(self.junk_gap_us)
        return AttackOutcome(
            attack="junk-flood",
            device_alarmed=alarmed,
            junk_pages_written=written,
            attack_duration_us=ssd.clock.now_us - start,
            history_survived=_history_intact(ssd, protected, t_clean),
        )


class SlowDribbleAttack:
    """Write junk slowly, hoping retention quietly erodes."""

    def __init__(self, ssd, seed=0, junk_gap_us=30_000_000):
        self.ssd = ssd
        self._rng = random.Random(seed)
        self.junk_gap_us = junk_gap_us
        self._junk = _junk_pool(ssd, self._rng)

    def execute(self, protected, t_clean, pages=2_000):
        ssd = self.ssd
        start = ssd.clock.now_us
        written = 0
        alarmed = False
        for i in range(pages):
            try:
                ssd.write(
                    self._rng.randrange(ssd.logical_pages),
                    self._junk[i % len(self._junk)],
                )
            except RetentionViolationError:
                alarmed = True
                break
            written += 1
            ssd.clock.advance(self.junk_gap_us)
        return AttackOutcome(
            attack="slow-dribble",
            device_alarmed=alarmed,
            junk_pages_written=written,
            attack_duration_us=ssd.clock.now_us - start,
            history_survived=_history_intact(ssd, protected, t_clean),
        )


class RollbackWipeAttack:
    """Abuse the recovery API: roll back everything, then flood."""

    def __init__(self, ssd, seed=0):
        self.ssd = ssd
        self._rng = random.Random(seed)

    def execute(self, protected, t_clean, flood_pages=200_000):
        ssd = self.ssd
        kits = TimeKits(ssd)
        start = ssd.clock.now_us
        alarmed = False
        written = 0
        try:
            # Step 1: revert the whole device to its earliest state.
            kits.rollback_all(t=0)
        except RetentionViolationError:
            alarmed = True
        if not alarmed:
            # Step 2: flood with junk to push the real history out.
            flood = JunkFloodAttack(ssd, seed=self._rng.randrange(1 << 16))
            flood_outcome = flood.execute(protected, t_clean, max_pages=flood_pages)
            alarmed = flood_outcome.device_alarmed
            written = flood_outcome.junk_pages_written
        return AttackOutcome(
            attack="rollback-wipe",
            device_alarmed=alarmed,
            junk_pages_written=written,
            attack_duration_us=ssd.clock.now_us - start,
            history_survived=_history_intact(ssd, protected, t_clean),
        )
