"""FlashGuard (CCS'17), the paper's Figure 10 comparator.

FlashGuard defends against encryption ransomware with a narrower
retention rule than TimeSSD: it retains an invalidated page **only if
the page was read since it was last written** — the read-then-overwrite
signature of file encryption.  Retained pages are kept uncompressed, so
recovery skips the delta-decompression TimeSSD pays (the ~14% gap in
Figure 10), but arbitrary history queries are impossible.
"""

from collections import deque
from dataclasses import dataclass

from repro.common.atomic import atomic_section
from repro.common.errors import DeviceFullError
from repro.flash.page import NULL_PPA
from repro.ftl.block_manager import BlockKind, StreamId
from repro.ftl.ssd import BaseSSD


@dataclass
class _RetainedVersion:
    lpa: int
    timestamp_us: int
    ppa: int
    evicted: bool = False


class FlashGuardSSD(BaseSSD):
    """An SSD retaining read-then-overwritten pages for recovery."""

    def __init__(self, config=None, clock=None):
        super().__init__(config, clock)
        self._read_since_write = set()
        self._retained_by_ppa = {}
        self._versions_by_lpa = {}
        self._retention_queue = deque()
        self.retained_count = 0

    # --- Retention rule ----------------------------------------------------------

    def read(self, lpa):
        data, response = super().read(lpa)
        self._read_since_write.add(lpa)
        return data, response

    def _on_invalidate(self, lpa, old_ppa, now_us):
        super()._on_invalidate(lpa, old_ppa, now_us)
        if lpa not in self._read_since_write:
            return
        self._read_since_write.discard(lpa)
        oob = self.device.peek_page(old_ppa).oob
        version = _RetainedVersion(lpa, oob.timestamp_us, old_ppa)
        self._retained_by_ppa[old_ppa] = version
        self._versions_by_lpa.setdefault(lpa, []).append(version)
        self._retention_queue.append(version)
        self.retained_count += 1

    # --- GC: migrate retained pages like valid ones --------------------------------

    def _collect_garbage(self, now_us):
        victim = self.block_manager.select_greedy_victim(BlockKind.DATA)
        if victim is None:
            if not self._evict_oldest_retained(fraction=0.1):
                raise DeviceFullError("FlashGuard: device full of live data")
            return
        self._reclaim(victim, now_us)

    @atomic_section(
        "FlashGuard reclaims a victim as one step: live and retained "
        "pages migrate and the block is erased before anyone else can "
        "allocate from it",
        # Per-page migration is self-consistent: a page is remapped (or
        # its retained-version record re-pointed) before the next page
        # is touched, so a mid-reclaim failure loses nothing.
        restores_state=True,
    )
    def _reclaim(self, victim, now_us):
        geo = self.device.geometry
        bm = self.block_manager
        from repro.flash.page import PageState

        for ppa in geo.pages_of_block(victim):
            page = self.device.peek_page(ppa)
            if page.state is not PageState.PROGRAMMED:
                continue
            if bm.is_valid(ppa):
                result = self.device.read_page(ppa, now_us)
                new_ppa = bm.allocate_page(StreamId.GC)
                # FlashGuard is itself an FTL (the CCS'17 comparator), so
                # its GC owns raw page migration like repro.ftl does.
                self.device.program_page(new_ppa, result.data, result.oob, now_us)  # almanac: ignore[layering-flash-api]
                bm.mark_valid(new_ppa)
                bm.invalidate_page(ppa)
                self.remap_migrated_page(result.oob, ppa, new_ppa)
            elif ppa in self._retained_by_ppa:
                version = self._retained_by_ppa.pop(ppa)
                result = self.device.read_page(ppa, now_us)
                new_ppa = bm.allocate_page(StreamId.GC)
                self.device.program_page(new_ppa, result.data, result.oob, now_us)  # almanac: ignore[layering-flash-api]
                version.ppa = new_ppa
                self._retained_by_ppa[new_ppa] = version
        self._erase_and_release(victim, now_us)

    def _ensure_free_space(self, now_us):
        guard = 0
        bm = self.block_manager
        while bm.free_block_count <= self.config.gc_low_watermark:
            pages_before = self.free_page_estimate()
            self._collect_garbage(now_us)
            self.gc_runs += 1
            if self.free_page_estimate() <= pages_before:
                self._evict_oldest_retained(fraction=0.1)
            guard += 1
            if guard > 4 * self.device.geometry.total_blocks:
                raise DeviceFullError("FlashGuard GC cannot make progress")

    def _evict_oldest_retained(self, fraction):
        """Give up the oldest retained versions to make GC progress."""
        evict = max(1, int(len(self._retention_queue) * fraction))
        evicted = 0
        while evicted < evict and self._retention_queue:
            version = self._retention_queue.popleft()
            if version.evicted:
                continue
            version.evicted = True
            self._retained_by_ppa.pop(version.ppa, None)
            versions = self._versions_by_lpa.get(version.lpa)
            if versions:
                self._versions_by_lpa[version.lpa] = [
                    v for v in versions if v is not version
                ]
            self.retained_count -= 1
            evicted += 1
        return evicted > 0

    # --- Recovery -----------------------------------------------------------------

    def recover_lpas(self, lpas, t, threads=1, write_back=True):
        """Restore each LPA to its newest retained version at/before ``t``.

        Returns ``(restored, elapsed_us)`` where ``restored`` maps LPA to
        the recovered page data.  Thread-level parallelism matches the
        TimeKits model: each simulated thread works its share of LPAs
        serially, overlapping across channels.  With ``write_back=False``
        the versions are only read (the caller restores them through a
        file system).
        """
        start = self.clock.now_us
        cursors = [start] * max(1, threads)
        restored = {}
        pending = []
        for i, lpa in enumerate(lpas):
            k = i % len(cursors)
            version = self._pick_version(lpa, t)
            if version is None:
                continue
            result = self.device.read_page(version.ppa, cursors[k])
            cursors[k] = result.complete_us
            restored[lpa] = result.data
            pending.append((lpa, result.data))
        self.clock.advance_to(max(cursors))
        if write_back:
            for lpa, data in pending:
                self.write(lpa, data)
        return restored, self.clock.now_us - start

    def _pick_version(self, lpa, t):
        best = None
        for version in self._versions_by_lpa.get(lpa, ()):
            if version.evicted:
                continue
            if version.timestamp_us <= t and (
                best is None or version.timestamp_us > best.timestamp_us
            ):
                best = version
        if best is None:
            # Fall back to the oldest retained version (best effort).
            candidates = [v for v in self._versions_by_lpa.get(lpa, ()) if not v.evicted]
            best = min(candidates, key=lambda v: v.timestamp_us) if candidates else None
        return best
