"""Device-side fault mechanics: what a fired fault does to the media.

:class:`FaultHooks` adapts a :class:`~repro.faults.plan.FaultPlan` to the
three hook points :class:`repro.flash.device.FlashDevice` exposes
(``on_read`` / ``on_program`` / ``on_erase``).  Hooks run *before* the
operation commits, so a fault means the op never happened as far as
counters and timing are concerned — except for the physical residue the
fault itself leaves:

* TORN_PROGRAM persists a half-written page with a mismatched OOB
  sequence tag, then raises :class:`PowerCutError` — the state recovery
  must detect and discard;
* PROGRAM_FAIL burns the page (garbage data, torn tag): real NAND
  consumes the page on a failed program, so firmware must skip it;
* PROGRAM_FAIL_PERMANENT / ERASE_FAIL additionally mark the block as a
  grown bad block (``Block.failed``), which survives power cuts;
* POWER_CUT and READ_UNCORRECTABLE leave no residue.

The flash layer never imports this module (layering: faults sits above
the firmware); it only calls the duck-typed hook methods when a plan is
installed via ``SSDConfig.faults``.
"""

from repro.common.errors import (
    EraseFailureError,
    PowerCutError,
    ProgramFailureError,
    UncorrectableReadError,
)
from repro.faults.plan import FaultKind, OpType

OP_READ = OpType.READ
OP_PROGRAM = OpType.PROGRAM
OP_ERASE = OpType.ERASE

#: Marker stored as page data when a program fails mid-flight and the
#: model has no byte-level content to truncate (modeled-content mode).
BURNED_PAGE = "<burned>"


class FaultHooks:
    """Installable fault hooks: ``SSDConfig(faults=FaultHooks(plan))``."""

    def __init__(self, plan):
        self.plan = plan

    @staticmethod
    def _note_fired(device, kind, op, address):
        """Account the fired fault in the device's observability scope."""
        metrics = device.obs.metrics
        metrics.counter("fault.fired").inc()
        metrics.counter("fault.%s" % kind.name).inc()
        tr = device.obs.trace
        if tr.enabled:
            tr.emit(
                "fault",
                kind.name,
                device.last_op_start_us,
                op=op.name,
                address=address,
            )

    # --- Hook points (called by FlashDevice before each op commits) ---------

    def on_read(self, device, ppa):
        kind = self.plan.fire(OP_READ, ppa)
        if kind is None:
            return
        self._note_fired(device, kind, OP_READ, ppa)
        if kind is FaultKind.POWER_CUT:
            raise PowerCutError(
                "power cut before read of PPA %d (flash op %d)"
                % (ppa, self.plan.ops_seen),
                op_index=self.plan.ops_seen,
            )
        if kind is FaultKind.READ_UNCORRECTABLE:
            raise UncorrectableReadError(ppa)

    def on_program(self, device, ppa, data, oob):
        kind = self.plan.fire(OP_PROGRAM, ppa)
        if kind is None:
            return
        self._note_fired(device, kind, OP_PROGRAM, ppa)
        if kind is FaultKind.POWER_CUT:
            raise PowerCutError(
                "power cut before program of PPA %d (flash op %d)"
                % (ppa, self.plan.ops_seen),
                op_index=self.plan.ops_seen,
            )
        if kind is FaultKind.TORN_PROGRAM:
            self._burn_page(device, ppa, data, oob, torn=True)
            raise PowerCutError(
                "power cut tore program of PPA %d (flash op %d)"
                % (ppa, self.plan.ops_seen),
                op_index=self.plan.ops_seen,
            )
        # Transient or permanent program failure: the page is consumed.
        self._burn_page(device, ppa, data, oob, torn=False)
        permanent = kind is FaultKind.PROGRAM_FAIL_PERMANENT
        if permanent:
            device.blocks[device.geometry.block_of_page(ppa)].failed = True
        raise ProgramFailureError(ppa, permanent=permanent)

    def on_erase(self, device, pba):
        kind = self.plan.fire(OP_ERASE, pba)
        if kind is None:
            return
        self._note_fired(device, kind, OP_ERASE, pba)
        if kind is FaultKind.POWER_CUT:
            raise PowerCutError(
                "power cut before erase of PBA %d (flash op %d)"
                % (pba, self.plan.ops_seen),
                op_index=self.plan.ops_seen,
            )
        device.blocks[pba].failed = True
        raise EraseFailureError(pba)

    # --- Media residue ------------------------------------------------------

    @staticmethod
    def _burn_page(device, ppa, data, oob, torn):
        """Consume the page: partial/garbage data under a torn OOB tag.

        Goes through ``Block.program`` so NAND sequencing invariants hold
        and the block's write pointer advances — exactly what a real
        failed/torn program does to the media.
        """
        geo = device.geometry
        block = device.blocks[geo.block_of_page(ppa)]
        if isinstance(data, (bytes, bytearray)):
            half = len(data) // 2
            residue = bytes(data[:half]).ljust(len(data), b"\x00")
        elif torn:
            residue = data
        else:
            residue = BURNED_PAGE
        block.program(geo.page_offset(ppa), residue, oob.as_torn())
