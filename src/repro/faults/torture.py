"""Crash-point torture: cut power at every flash op and prove recovery.

The harness replays one deterministic host workload (writes and trims
over a small working set) against a REAL-content TimeSSD, once cleanly
to count the flash operations it performs, then once per enumerated
crash point with a :class:`~repro.faults.plan.FaultPlan` arming a power
cut at that exact op.  After each cut it rebuilds the firmware tables
from flash and asserts the recovery contract:

* the device audit (:class:`~repro.timessd.verify.DeviceAuditor`) finds
  zero invariant violations;
* every write acknowledged before the cut reads back byte-identical
  (serial host: a write is acked only after its flash program completed,
  so its page carries an intact OOB sequence tag and must win the
  rebuilt mapping);
* the device accepts and serves new writes afterwards, and a second
  audit stays clean.

Acked *trims* are exempt: the trim tombstone is volatile RAM state, so a
crash may resurrect the pre-trim data — the same contract as a real
SSD's DSM deallocate, which is advisory across power loss.

This module is a library (no printing); the ``repro torture`` CLI
formats the :class:`TortureReport`.
"""

import random
from dataclasses import dataclass, field, replace

from repro.common.errors import PowerCutError, ReproError
from repro.common.units import SECOND_US
from repro.faults.hooks import FaultHooks
from repro.faults.plan import FaultPlan
from repro.flash.geometry import FlashGeometry
from repro.flash.reliability import FlashReliability
from repro.timessd.config import ContentMode, TimeSSDConfig
from repro.timessd.recovery import rebuild_from_flash, simulate_power_loss
from repro.timessd.ssd import TimeSSD
from repro.timessd.verify import DeviceAuditor

#: Page size of the torture device — small so REAL-content payloads and
#: delta compression stay cheap across hundreds of crash points.
PAGE_SIZE = 256


@dataclass
class TortureConfig:
    """Knobs of one torture run (defaults suit CI smoke tests)."""

    #: Host operations (writes + trims) in the replayed workload.
    ops: int = 400
    #: Distinct LPAs the workload touches.
    working_set: int = 48
    #: Fraction of post-fill host ops that are trims.
    trim_ratio: float = 0.10
    #: Test every k-th flash op as a crash point (1 = exhaustive).
    crash_every: int = 1
    #: Tear the program the cut lands on (vs. cutting cleanly before it).
    torn: bool = True
    seed: int = 0x70B7
    #: Host think time between ops (lets idle-time compression kick in).
    gap_us: int = 700
    #: Writes issued after each recovery to prove the device still works.
    post_recovery_writes: int = 8
    #: Small enough that the default workload forces GC, migrations and
    #: delta flushes — the paths a crash must not corrupt.
    blocks_per_plane: int = 6
    #: Enable media aging + the patrol scrubber.  The enumerated crash
    #: points then also land inside patrol reads, read-retry ladders and
    #: scrub refresh migrations — proving a power cut mid-refresh never
    #: loses the at-risk page's only intact copy.  Use
    #: :func:`scrub_preset` rather than flipping this alone: scrub work
    #: only runs in predicted-idle windows, so the host gap must exceed
    #: the idle threshold.
    scrub: bool = False
    #: Write recovery checkpoints every this many blocks' worth of page
    #: programs (None = off).  With it on, the enumerated crash points
    #: also land inside checkpoint part/root programs and the
    #: superseded-block erases — proving a cut mid-checkpoint always
    #: falls back to a consistent (possibly older) image.
    checkpoint_interval_blocks: int = None
    #: ECC budget of the scrub-torture device — small, so aging pressure
    #: (and refresh work) is visible within the short replay.
    scrub_ecc_bits: int = 8
    #: Raw BER tuned so the mean error count sits near half the budget:
    #: refreshes are frequent, full-ladder losses vanishingly rare.
    scrub_raw_ber: float = 0.002


def scrub_preset(**overrides):
    """A :class:`TortureConfig` that exercises the scrub/refresh paths.

    The host gap is stretched past the idle predictor's threshold
    (10 ms) so every inter-op gap opens a housekeeping window for the
    patrol scrubber, and the op count is kept small because scrub adds
    patrol reads (more flash ops → more crash points).
    """
    config = TortureConfig(scrub=True, ops=160, gap_us=15_000)
    return replace(config, **overrides) if overrides else config


@dataclass
class CrashOutcome:
    """What one crash point did to the recovery contract."""

    cut_at: int
    acked_ops: int = 0
    torn_pages: int = 0
    problems: list = field(default_factory=list)

    @property
    def ok(self):
        return not self.problems


@dataclass
class TortureReport:
    """Aggregate of a full crash-point sweep."""

    total_flash_ops: int
    crash_every: int
    outcomes: list = field(default_factory=list)
    #: Scrub activity of the clean (fault-free) run — nonzero proves the
    #: crash-point sweep actually covered patrol/refresh flash ops.
    scrub_patrol_reads: int = 0
    scrub_refreshes: int = 0

    @property
    def cuts_tested(self):
        return len(self.outcomes)

    @property
    def failures(self):
        return [o for o in self.outcomes if not o.ok]

    @property
    def ok(self):
        return not self.failures

    def summary_lines(self):
        """Human-readable report (the CLI prints these)."""
        lines = [
            "torture: %d flash ops, %d crash points (every %d), %s"
            % (
                self.total_flash_ops,
                self.cuts_tested,
                self.crash_every,
                "all recovered" if self.ok else "%d FAILED" % len(self.failures),
            )
        ]
        if self.scrub_patrol_reads or self.scrub_refreshes:
            lines.append(
                "  scrub coverage: %d patrol reads, %d refreshes in the "
                "clean run" % (self.scrub_patrol_reads, self.scrub_refreshes)
            )
        for outcome in self.failures:
            lines.append(
                "  cut@%d (%d ops acked, %d torn pages):"
                % (outcome.cut_at, outcome.acked_ops, outcome.torn_pages)
            )
            lines.extend("    - %s" % p for p in outcome.problems)
        return lines


def build_workload(config):
    """The deterministic host-op list: ``(op, lpa, payload)`` tuples.

    A sequential fill of the working set, then seeded uniform-random
    overwrites and trims.  Payloads name their op and LPA so a lost or
    misdirected write is self-evident on read-back.
    """
    rng = random.Random(config.seed)
    ops = []
    for i in range(config.ops):
        if i < config.working_set:
            kind, lpa = "write", i
        else:
            lpa = rng.randrange(config.working_set)
            kind = "trim" if rng.random() < config.trim_ratio else "write"
        if kind == "write":
            payload = (b"op%06d lpa%05d" % (i, lpa)).ljust(PAGE_SIZE, b"\xAB")
            ops.append(("write", lpa, payload))
        else:
            ops.append(("trim", lpa, None))
    return ops


def _build_ssd(config, plan):
    geometry = FlashGeometry(
        channels=4,
        chips_per_channel=1,
        planes_per_chip=1,
        blocks_per_plane=config.blocks_per_plane,
        pages_per_block=16,
        page_size=PAGE_SIZE,
    )
    extras = {}
    if config.scrub:
        extras = dict(
            reliability=FlashReliability(
                raw_bit_error_rate=config.scrub_raw_ber,
                retention_ber_per_hour=50.0,
                read_disturb_ber_per_read=0.01,
                ecc_correctable_bits=config.scrub_ecc_bits,
                seed=config.seed,
            ),
            patrol_scrub=True,
            # Watermark at 3/4 of the budget: ~20% of patrol reads
            # refresh (steady activity without a refresh storm).
            scrub_risk_fraction=0.75,
            scrub_pages_per_run=8,
        )
    return TimeSSD(
        TimeSSDConfig(
            geometry=geometry,
            retention_floor_us=2 * SECOND_US,
            bloom_capacity=128,
            bloom_segment_max_age_us=SECOND_US // 2,
            content_mode=ContentMode.REAL,
            faults=FaultHooks(plan),
            checkpoint_interval_blocks=config.checkpoint_interval_blocks,
            **extras,
        )
    )


def _replay(ssd, workload, gap_us):
    """Run host ops until the armed power cut fires.

    Returns ``(acked, completed, cut)``: the last acknowledged op per
    LPA, the count of ops acked before the cut, and whether a cut fired.
    An op interrupted by the cut was never acknowledged.
    """
    acked = {}
    completed = 0
    for op, lpa, payload in workload:
        try:
            if op == "write":
                ssd.write(lpa, payload)
            else:
                ssd.trim(lpa)
        except PowerCutError:
            return acked, completed, True
        acked[lpa] = (op, payload)
        completed += 1
        ssd.clock.advance(gap_us)
    return acked, completed, False


def _clean_run(config, workload):
    """Replay with no fault armed; returns ``(plan, ssd)`` afterwards."""
    plan = FaultPlan(seed=config.seed)
    ssd = _build_ssd(config, plan)
    _replay(ssd, workload, config.gap_us)
    return plan, ssd


def count_flash_ops(config, workload=None):
    """Flash ops the workload performs with no fault armed (clean run)."""
    if workload is None:
        workload = build_workload(config)
    plan, _ssd = _clean_run(config, workload)
    return plan.ops_seen


def run_crash_point(config, cut_at, workload=None):
    """Cut power at flash op ``cut_at``; returns a :class:`CrashOutcome`."""
    if workload is None:
        workload = build_workload(config)
    plan = FaultPlan(seed=config.seed)
    plan.add_power_cut(at_op=cut_at, torn=config.torn)
    ssd = _build_ssd(config, plan)
    acked, completed, cut = _replay(ssd, workload, config.gap_us)
    outcome = CrashOutcome(cut_at, acked_ops=completed)
    if not cut:
        outcome.problems.append(
            "armed power cut at flash op %d never fired" % cut_at
        )
        return outcome

    simulate_power_loss(ssd)
    stats = rebuild_from_flash(ssd)
    outcome.torn_pages = stats["torn_pages"]

    report = DeviceAuditor(ssd).audit()
    outcome.problems.extend("fsck: %s" % v for v in report.violations)

    # Durability: every acked write must read back byte-identical.
    for lpa, (op, payload) in sorted(acked.items()):
        if op != "write":
            continue  # trim tombstones are volatile (documented above)
        try:
            data = ssd.read(lpa)[0]
        except ReproError as exc:
            outcome.problems.append(
                "acked write lpa %d unreadable after recovery: %r" % (lpa, exc)
            )
            continue
        if data != payload:
            outcome.problems.append(
                "acked write lpa %d lost: got %r" % (lpa, (data or b"")[:24])
            )

    # Liveness: the recovered device keeps serving writes.
    try:
        for i in range(config.post_recovery_writes):
            lpa = i % config.working_set
            payload = (b"post%04d cut%06d" % (i, cut_at)).ljust(
                PAGE_SIZE, b"\xCD"
            )
            ssd.write(lpa, payload)
            ssd.clock.advance(config.gap_us)
            if ssd.read(lpa)[0] != payload:
                outcome.problems.append(
                    "post-recovery write to lpa %d did not stick" % lpa
                )
    except ReproError as exc:
        outcome.problems.append("post-recovery write failed: %r" % exc)
    if config.post_recovery_writes:
        second = DeviceAuditor(ssd).audit()
        outcome.problems.extend(
            "post-recovery fsck: %s" % v for v in second.violations
        )
    return outcome


def run_torture(config=None):
    """Sweep every ``crash_every``-th crash point of the workload."""
    if config is None:
        config = TortureConfig()
    workload = build_workload(config)
    plan, clean_ssd = _clean_run(config, workload)
    total = plan.ops_seen
    metrics = clean_ssd.obs.metrics
    report = TortureReport(
        total_flash_ops=total,
        crash_every=config.crash_every,
        scrub_patrol_reads=metrics.counter("scrub.patrol_reads").value,
        scrub_refreshes=(
            metrics.counter("scrub.refreshed_valid").value
            + metrics.counter("scrub.refreshed_retained").value
        ),
    )
    for cut_at in range(1, total + 1, config.crash_every):
        report.outcomes.append(run_crash_point(config, cut_at, workload))
    return report
