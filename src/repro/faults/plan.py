"""Deterministic fault plans: what goes wrong, and exactly when.

A :class:`FaultPlan` is a seeded schedule of media faults armed against
the stream of flash operations (reads, programs, erases) a device
executes.  Each armed :class:`FaultSpec` fires on a trigger —

* ``at_op``       — the N-th flash operation of the run (1-based, global);
* ``every``       — every k-th operation the spec matches;
* ``probability`` — an independent seeded coin flip per matching op;

— optionally restricted by an address predicate (a callable, a container
of addresses, or ``None`` for all).  Because the plan draws only from its
own ``random.Random(seed)`` and counts only the ops it observes, a given
(workload, plan) pair replays bit-identically, which is what lets the
torture harness enumerate every crash point of a run.

The plan is pure policy: it decides *whether* a fault fires.  The
mechanics of tearing pages and marking blocks bad live in
:mod:`repro.faults.hooks`.
"""

import enum
import random
from dataclasses import dataclass, field


class OpType(enum.Enum):
    """The three flash operations a fault can interrupt."""

    READ = "read"
    PROGRAM = "program"
    ERASE = "erase"


class FaultKind(enum.Enum):
    """Media fault taxonomy (matches the errors in repro.common.errors)."""

    #: Program fails; the page is burned but the block stays healthy.
    PROGRAM_FAIL = "program-fail"
    #: Program fails and the block goes bad (grown defect).
    PROGRAM_FAIL_PERMANENT = "program-fail-permanent"
    #: Erase fails; the block goes bad.
    ERASE_FAIL = "erase-fail"
    #: Read returns more bit errors than the ECC budget corrects.
    READ_UNCORRECTABLE = "read-uncorrectable"
    #: Power cut mid-program: partial data + invalid OOB seq tag persist.
    TORN_PROGRAM = "torn-program"
    #: Power cut before the op commits (clean crash point).
    POWER_CUT = "power-cut"


#: Which op types each fault kind can interrupt.
KIND_OPS = {
    FaultKind.PROGRAM_FAIL: (OpType.PROGRAM,),
    FaultKind.PROGRAM_FAIL_PERMANENT: (OpType.PROGRAM,),
    FaultKind.ERASE_FAIL: (OpType.ERASE,),
    FaultKind.READ_UNCORRECTABLE: (OpType.READ,),
    FaultKind.TORN_PROGRAM: (OpType.PROGRAM,),
    FaultKind.POWER_CUT: (OpType.READ, OpType.PROGRAM, OpType.ERASE),
}


@dataclass
class FaultSpec:
    """One armed fault: a kind, a trigger, and an optional address scope.

    Exactly one of ``at_op`` / ``every`` / ``probability`` must be set.
    ``max_fires=None`` means unlimited.  ``torn=True`` on a POWER_CUT spec
    tears the program the cut lands on instead of cutting cleanly (cuts
    landing on reads/erases are always clean — those ops are atomic at
    the media level in this model).
    """

    kind: FaultKind
    at_op: int = None
    every: int = None
    probability: float = 0.0
    address: object = None
    max_fires: int = 1
    torn: bool = False
    #: How many times this spec has fired (runtime).
    fires: int = 0
    _matched: int = field(default=0, repr=False)

    def __post_init__(self):
        triggers = sum(
            1 for t in (self.at_op, self.every) if t is not None
        ) + (1 if self.probability else 0)
        if triggers != 1:
            raise ValueError(
                "FaultSpec needs exactly one trigger (at_op / every / "
                "probability), got %d" % triggers
            )

    def matches_address(self, address):
        scope = self.address
        if scope is None:
            return True
        if callable(scope):
            return bool(scope(address))
        return address in scope


@dataclass(frozen=True)
class FiredFault:
    """Journal entry: which fault fired at which global flash op."""

    op_index: int
    kind: FaultKind
    op: OpType
    address: int


class FaultPlan:
    """A seeded, replayable schedule of media faults.

    The plan keeps its own flash-op counter, incremented once per hook
    consultation; with no armed spec it observes and never fires, so an
    empty plan is behaviorally a no-op.
    """

    def __init__(self, seed=0xFA17):
        self.seed = seed
        self._rng = random.Random(seed)
        self._specs = []
        #: Global 1-based index of the last flash op observed.
        self.ops_seen = 0
        #: Journal of every fault that fired, in op order.
        self.fired = []

    # --- Arming -------------------------------------------------------------

    def arm(self, spec):
        """Arm a :class:`FaultSpec`; returns it for later inspection."""
        self._specs.append(spec)
        return spec

    def add_power_cut(self, at_op, torn=False):
        """Cut power at global flash op ``at_op`` (tear it if a program)."""
        return self.arm(FaultSpec(FaultKind.POWER_CUT, at_op=at_op, torn=torn))

    def add_torn_program(self, at_op=None, every=None, probability=0.0, address=None):
        return self.arm(
            FaultSpec(
                FaultKind.TORN_PROGRAM,
                at_op=at_op,
                every=every,
                probability=probability,
                address=address,
            )
        )

    def add_program_failure(
        self,
        permanent=False,
        at_op=None,
        every=None,
        probability=0.0,
        address=None,
        max_fires=1,
    ):
        kind = (
            FaultKind.PROGRAM_FAIL_PERMANENT
            if permanent
            else FaultKind.PROGRAM_FAIL
        )
        return self.arm(
            FaultSpec(
                kind,
                at_op=at_op,
                every=every,
                probability=probability,
                address=address,
                max_fires=max_fires,
            )
        )

    def add_erase_failure(
        self, at_op=None, every=None, probability=0.0, address=None, max_fires=1
    ):
        return self.arm(
            FaultSpec(
                FaultKind.ERASE_FAIL,
                at_op=at_op,
                every=every,
                probability=probability,
                address=address,
                max_fires=max_fires,
            )
        )

    def add_read_error(
        self, at_op=None, every=None, probability=0.0, address=None, max_fires=1
    ):
        return self.arm(
            FaultSpec(
                FaultKind.READ_UNCORRECTABLE,
                at_op=at_op,
                every=every,
                probability=probability,
                address=address,
                max_fires=max_fires,
            )
        )

    # --- Consultation (called by the hooks, once per flash op) --------------

    def fire(self, op, address):
        """Advance the op counter; return the FaultKind to inject, or None.

        At most one spec fires per op (first armed wins); a POWER_CUT spec
        with ``torn=True`` landing on a program is reported as
        TORN_PROGRAM.
        """
        self.ops_seen += 1
        for spec in self._specs:
            if spec.max_fires is not None and spec.fires >= spec.max_fires:
                continue
            if op not in KIND_OPS[spec.kind]:
                continue
            if not spec.matches_address(address):
                continue
            if spec.at_op is not None:
                hit = self.ops_seen == spec.at_op
            elif spec.every is not None:
                spec._matched += 1
                hit = spec._matched % spec.every == 0
            else:
                hit = spec.probability > 0 and self._rng.random() < spec.probability
            if not hit:
                continue
            spec.fires += 1
            kind = spec.kind
            if kind is FaultKind.POWER_CUT and spec.torn and op is OpType.PROGRAM:
                kind = FaultKind.TORN_PROGRAM
            self.fired.append(FiredFault(self.ops_seen, kind, op, address))
            return kind
        return None

    def __repr__(self):
        return "FaultPlan(seed=%#x, specs=%d, ops_seen=%d, fired=%d)" % (
            self.seed,
            len(self._specs),
            self.ops_seen,
            len(self.fired),
        )
