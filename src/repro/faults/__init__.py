"""Fault injection: deterministic media faults and crash-point torture.

The substrate has three layers:

* :mod:`repro.faults.plan` — *policy*: a seeded :class:`FaultPlan` of
  armed :class:`FaultSpec` triggers (N-th op, every k-th, probability,
  address scope);
* :mod:`repro.faults.hooks` — *mechanics*: :class:`FaultHooks` turns a
  fired fault into media effects (torn pages, burned pages, grown bad
  blocks) and the matching exception, at the flash device's hook points;
* :mod:`repro.faults.torture` — *harness*: replay a workload, cut power
  at every enumerated flash op, rebuild, and audit that no acknowledged
  write is lost.

Install on any SSD with ``SSDConfig(faults=FaultHooks(plan))``; the
default (``faults=None``) is a strict no-op.
"""

from repro.faults.hooks import BURNED_PAGE, FaultHooks
from repro.faults.plan import (
    FaultKind,
    FaultPlan,
    FaultSpec,
    FiredFault,
    KIND_OPS,
    OpType,
)
from repro.faults.torture import (
    CrashOutcome,
    TortureConfig,
    TortureReport,
    run_torture,
)

__all__ = [
    "BURNED_PAGE",
    "CrashOutcome",
    "FaultHooks",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "FiredFault",
    "KIND_OPS",
    "OpType",
    "TortureConfig",
    "TortureReport",
    "run_torture",
]
