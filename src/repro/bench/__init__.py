"""Experiment runners behind the ``benchmarks/`` suite.

Each module reproduces one table or figure from the paper's §5; the
pytest-benchmark files under ``benchmarks/`` are thin wrappers that run
these, print the paper-style tables, and persist them under
``benchmarks/results/``.
"""

from repro.bench.config import (
    bench_geometry,
    make_bench_regular,
    make_bench_timessd,
    prefill,
)
from repro.bench.tables import format_table, save_result

__all__ = [
    "bench_geometry",
    "make_bench_regular",
    "make_bench_timessd",
    "prefill",
    "format_table",
    "save_result",
]
