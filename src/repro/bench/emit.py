"""Machine-readable metrics snapshots: BENCH_pr9.json and the CLI demo.

The bench smoke workload replays the same seeded churn on both devices
and serializes their :meth:`~repro.ftl.ssd.BaseSSD.metrics_snapshot`
output.  The simulation payload is derived from sim time and an
explicit seed, so two runs of the same seed produce an identical
``devices`` tree — the perf trajectory can diff files across commits,
not just eyeball numbers.  One deliberately non-deterministic section,
``harness``, records the wall-clock throughput of the run so CI can
catch large simulator slowdowns; :func:`check_bench_snapshot` compares
everything *except* that section byte-for-byte.
"""

import json

from repro.bench.config import make_bench_regular, make_bench_timessd
from repro.common.units import SECOND_US
from repro.flash.geometry import FlashGeometry
from repro.flash.timing import FlashTiming
from repro.ftl.ssd import RegularSSD, SSDConfig
from repro.timessd.config import TimeSSDConfig
from repro.timessd.ssd import TimeSSD

#: Schema tag: bump only when the JSON layout changes incompatibly.
SCHEMA = "almanac-metrics/1"

BENCH_FILE = "BENCH_pr9.json"

#: A fresh run slower than this fraction of the committed ops/sec fails
#: ``check_bench_snapshot`` (>20% regression, per-run jitter allowed).
MIN_OPS_RATIO = 0.8


def churn(ssd, writes, seed, working_fraction=0.5, gap_us=1500):
    """Seeded update/trim/read churn over a bounded working set."""
    import random

    rng = random.Random(seed)
    working = max(1, int(ssd.logical_pages * working_fraction))
    for lpa in range(working):
        ssd.write(lpa)
        ssd.clock.advance(gap_us)
    for _ in range(writes):
        lpa = rng.randrange(working)
        roll = rng.random()
        if roll < 0.70:
            ssd.write(lpa)
        elif roll < 0.85:
            ssd.read(lpa)
        else:
            ssd.trim(lpa)
        ssd.clock.advance(rng.choice((gap_us, 3 * gap_us, 40_000)))
    return ssd


def demo_device(kind="timessd", seed=7, tracing=False):
    """A small fully-deterministic device for ``repro metrics --demo``."""
    geometry = FlashGeometry(
        channels=4, blocks_per_plane=16, pages_per_block=16, page_size=512
    )
    if kind == "regular":
        return RegularSSD(
            SSDConfig(geometry=geometry, timing=FlashTiming(), tracing=tracing)
        )
    if kind == "timessd":
        return TimeSSD(
            TimeSSDConfig(
                geometry=geometry,
                timing=FlashTiming(),
                retention_floor_us=2 * SECOND_US,
                bloom_capacity=128,
                bloom_segment_max_age_us=SECOND_US // 2,
                gc_overhead_period_writes=64,
                tracing=tracing,
                seed=seed,
            )
        )
    raise ValueError("unknown device kind %r" % (kind,))


def demo_snapshot(kind="timessd", seed=7, writes=600, tracing=False):
    """Run the demo churn; returns the schema-stable result dict."""
    ssd = demo_device(kind, seed=seed, tracing=tracing)
    churn(ssd, writes, seed)
    result = {
        "schema": SCHEMA,
        "workload": {"name": "demo-churn", "writes": writes, "seed": seed},
        "device": kind,
        "metrics": ssd.metrics_snapshot(),
    }
    if tracing:
        result["trace"] = {
            "dropped": ssd.obs.trace.dropped,
            "events": ssd.obs.trace.drain(),
        }
    return result


def bench_smoke_snapshots(seed=1, writes=1500):
    """The bench smoke workload on both devices; returns the result dict."""
    devices = {}
    for kind, factory in (
        ("regular", make_bench_regular),
        ("timessd", make_bench_timessd),
    ):
        ssd = factory()
        # churn() prefills its working set before updating it; 35% of
        # logical capacity keeps the TimeSSD run clear of the retention
        # alarm (the floor is 3 days and the smoke run spans seconds, so
        # every invalidated version stays retained until compressed).
        churn(ssd, writes, seed, working_fraction=0.35)
        devices[kind] = {
            "metrics": ssd.metrics_snapshot(),
            "summary": {
                "host_pages_written": ssd.host_pages_written,
                "host_pages_read": ssd.host_pages_read,
                "write_amplification": round(ssd.write_amplification, 6),
                "gc_runs": ssd.gc_runs,
                "background_gc_runs": ssd.background_gc_runs,
                "mean_write_us": round(ssd.write_latency.mean_us, 6),
                "p99_write_us": ssd.write_latency.percentile(99),
            },
        }
    return {
        "schema": SCHEMA,
        "workload": {"name": "bench-smoke", "writes": writes, "seed": seed},
        "devices": devices,
        "reliability": reliability_smoke_snapshot(seed=seed),
        "queue_scaling": queue_scaling_snapshot(seed=seed),
    }


def queue_scaling_snapshot(seed=1, depths=(1, 4, 8), reads=200):
    """Random-read IOPS per queue depth on the async engine.

    The committed trajectory of the event-driven core: per-depth IOPS
    are pure simulated-time figures (deterministic for a seed), so any
    change to the scheduler, the engine, or flash timing shows up as a
    payload diff here.
    """
    from repro.bench.ablations import ablate_queue_depth

    points = ablate_queue_depth(depths=depths, reads=reads, seed=seed)
    iops = {p.label: round(p.mean_response_us, 3) for p in points}
    return {
        "reads": reads,
        "iops": iops,
        "qd8_over_qd1": round(iops["QD=8"] / iops["QD=1"], 3),
    }


def make_bench_aging_timessd(seed=1):
    """Bench TimeSSD with the aging model and patrol scrub enabled."""
    from repro.bench.config import make_bench_timessd as _factory
    from repro.flash.reliability import FlashReliability

    return _factory(
        reliability=FlashReliability(
            raw_bit_error_rate=2e-5,
            wear_ber_multiplier=0.002,
            retention_ber_per_hour=1.0,
            read_disturb_ber_per_read=5e-4,
            ecc_correctable_bits=24,
            seed=seed,
        ),
        patrol_scrub=True,
    )


def reliability_smoke_snapshot(seed=1, writes=360):
    """A day of simulated aging under scrub + retry (docs/RELIABILITY.md).

    Read-heavy epochs separated by 10-hour retention jumps: pages drift
    toward the ECC budget, the ladder rescues the marginal reads, and
    the patrol scrubber refreshes the at-risk ones in the idle windows.
    Fully deterministic per seed, like the rest of the snapshot.
    """
    import random

    from repro.common.units import HOUR_US

    ssd = make_bench_aging_timessd(seed=seed)
    rng = random.Random(seed)
    working = 256
    for lpa in range(working):
        ssd.write(lpa)
        ssd.clock.advance(1500)
    for _epoch in range(4):
        ssd.clock.advance(10 * HOUR_US)
        for _ in range(writes // 4):
            lpa = rng.randrange(working)
            if rng.random() < 0.75:
                ssd.read(lpa)
            else:
                ssd.write(lpa)
            ssd.clock.advance(15_000)
    snapshot = ssd.metrics_snapshot()
    counters = snapshot["counters"]
    histograms = snapshot["histograms"]
    return {
        "workload": {
            "name": "aging-day",
            "seed": seed,
            "writes": writes,
            "epochs": 4,
            "epoch_hours": 10,
        },
        "retry": {
            "reads": counters.get("reliability.retry_reads", 0),
            "exhausted": counters.get("reliability.retry_exhausted", 0),
            "depth": histograms.get("reliability.retry_depth"),
        },
        "ecc": {
            "corrected_reads": counters.get("flash.ecc.corrected_reads", 0),
            "corrected_bits": counters.get("flash.ecc.corrected_bits", 0),
            "uncorrectable_reads": counters.get(
                "flash.ecc.uncorrectable_reads", 0
            ),
        },
        "scrub": {
            "runs": counters.get("scrub.runs", 0),
            "patrol_reads": counters.get("scrub.patrol_reads", 0),
            "refreshed_valid": counters.get("scrub.refreshed_valid", 0),
            "refreshed_retained": counters.get("scrub.refreshed_retained", 0),
            "skipped_expired": counters.get("scrub.skipped_expired", 0),
            "at_risk_queued": counters.get("scrub.at_risk_queued", 0),
            "blocks_retired": counters.get("scrub.blocks_retired", 0),
        },
    }


def _timed_smoke(seed, writes):
    """Run the smoke workload under a wall clock; returns (result, harness).

    The harness section is the one place the bench layer reads real
    time: it measures how fast the *simulator* runs, which sim time by
    construction cannot see.  It never feeds back into the simulation.
    """
    import time

    t0 = time.perf_counter()  # almanac: ignore[determinism-wallclock]
    result = bench_smoke_snapshots(seed=seed, writes=writes)
    elapsed = time.perf_counter() - t0  # almanac: ignore[determinism-wallclock]
    ops = 2 * writes  # churn phase ops, both devices
    harness = {
        "elapsed_s": round(elapsed, 3),
        "ops_per_sec": round(ops / elapsed, 1) if elapsed > 0 else 0.0,
    }
    return result, harness


def deterministic_payload(result):
    """The snapshot minus its wall-clock section (the comparable part)."""
    return {k: v for k, v in result.items() if k != "harness"}


def to_canonical_json(result, indent=2):
    """Stable rendering: sorted keys, fixed separators, trailing newline."""
    return json.dumps(result, sort_keys=True, indent=indent) + "\n"


def write_bench_json(path=None, seed=1, writes=1500):
    """Emit ``BENCH_pr9.json``; returns the path written."""
    path = path or BENCH_FILE
    result, harness = _timed_smoke(seed, writes)
    result["harness"] = harness
    with open(path, "w") as fh:
        fh.write(to_canonical_json(result))
    return path


def check_bench_snapshot(path=None, seed=1, writes=1500, min_ratio=MIN_OPS_RATIO):
    """Regenerate the snapshot and diff it against the committed file.

    Returns a list of problem strings; empty means the committed file is
    current.  Three checks: the schema tag matches, the deterministic
    payload is identical (any simulator behaviour change must re-commit
    the snapshot), and the fresh run's ops/sec has not regressed below
    ``min_ratio`` of the committed figure.
    """
    path = path or BENCH_FILE
    try:
        with open(path, "r", encoding="utf-8") as fh:
            committed = json.load(fh)
    except (OSError, ValueError) as exc:
        return ["cannot read committed snapshot %s: %s" % (path, exc)]
    problems = []
    if committed.get("schema") != SCHEMA:
        problems.append(
            "schema mismatch: committed %r, analyzer expects %r"
            % (committed.get("schema"), SCHEMA)
        )
        return problems
    fresh, harness = _timed_smoke(seed, writes)
    # Round-trip the fresh result through JSON so tuples compare equal
    # to the lists json.load hands back for the committed file.
    fresh = json.loads(to_canonical_json(fresh))
    if deterministic_payload(committed) != deterministic_payload(fresh):
        problems.append(
            "deterministic payload drifted from %s: simulator behaviour "
            "changed; regenerate with `repro metrics --bench`" % path
        )
    committed_ops = (committed.get("harness") or {}).get("ops_per_sec")
    if committed_ops and harness["ops_per_sec"] < min_ratio * committed_ops:
        problems.append(
            "throughput regression: fresh %.1f ops/s < %.0f%% of "
            "committed %.1f ops/s"
            % (harness["ops_per_sec"], 100 * min_ratio, committed_ops)
        )
    return problems
