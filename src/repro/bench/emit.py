"""Machine-readable metrics snapshots: BENCH_pr4.json and the CLI demo.

The bench smoke workload replays the same seeded churn on both devices
and serializes their :meth:`~repro.ftl.ssd.BaseSSD.metrics_snapshot`
output.  Everything is derived from sim time and an explicit seed, so
two runs of the same seed produce byte-identical JSON — the perf
trajectory can diff files across commits, not just eyeball numbers.
"""

import json

from repro.bench.config import make_bench_regular, make_bench_timessd
from repro.common.units import SECOND_US
from repro.flash.geometry import FlashGeometry
from repro.flash.timing import FlashTiming
from repro.ftl.ssd import RegularSSD, SSDConfig
from repro.timessd.config import TimeSSDConfig
from repro.timessd.ssd import TimeSSD

#: Schema tag: bump only when the JSON layout changes incompatibly.
SCHEMA = "almanac-metrics/1"

BENCH_FILE = "BENCH_pr4.json"


def churn(ssd, writes, seed, working_fraction=0.5, gap_us=1500):
    """Seeded update/trim/read churn over a bounded working set."""
    import random

    rng = random.Random(seed)
    working = max(1, int(ssd.logical_pages * working_fraction))
    for lpa in range(working):
        ssd.write(lpa)
        ssd.clock.advance(gap_us)
    for _ in range(writes):
        lpa = rng.randrange(working)
        roll = rng.random()
        if roll < 0.70:
            ssd.write(lpa)
        elif roll < 0.85:
            ssd.read(lpa)
        else:
            ssd.trim(lpa)
        ssd.clock.advance(rng.choice((gap_us, 3 * gap_us, 40_000)))
    return ssd


def demo_device(kind="timessd", seed=7, tracing=False):
    """A small fully-deterministic device for ``repro metrics --demo``."""
    geometry = FlashGeometry(
        channels=4, blocks_per_plane=16, pages_per_block=16, page_size=512
    )
    if kind == "regular":
        return RegularSSD(
            SSDConfig(geometry=geometry, timing=FlashTiming(), tracing=tracing)
        )
    if kind == "timessd":
        return TimeSSD(
            TimeSSDConfig(
                geometry=geometry,
                timing=FlashTiming(),
                retention_floor_us=2 * SECOND_US,
                bloom_capacity=128,
                bloom_segment_max_age_us=SECOND_US // 2,
                gc_overhead_period_writes=64,
                tracing=tracing,
                seed=seed,
            )
        )
    raise ValueError("unknown device kind %r" % (kind,))


def demo_snapshot(kind="timessd", seed=7, writes=600, tracing=False):
    """Run the demo churn; returns the schema-stable result dict."""
    ssd = demo_device(kind, seed=seed, tracing=tracing)
    churn(ssd, writes, seed)
    result = {
        "schema": SCHEMA,
        "workload": {"name": "demo-churn", "writes": writes, "seed": seed},
        "device": kind,
        "metrics": ssd.metrics_snapshot(),
    }
    if tracing:
        result["trace"] = {
            "dropped": ssd.obs.trace.dropped,
            "events": ssd.obs.trace.drain(),
        }
    return result


def bench_smoke_snapshots(seed=1, writes=1500):
    """The bench smoke workload on both devices; returns the result dict."""
    devices = {}
    for kind, factory in (
        ("regular", make_bench_regular),
        ("timessd", make_bench_timessd),
    ):
        ssd = factory()
        # churn() prefills its working set before updating it; 35% of
        # logical capacity keeps the TimeSSD run clear of the retention
        # alarm (the floor is 3 days and the smoke run spans seconds, so
        # every invalidated version stays retained until compressed).
        churn(ssd, writes, seed, working_fraction=0.35)
        devices[kind] = {
            "metrics": ssd.metrics_snapshot(),
            "summary": {
                "host_pages_written": ssd.host_pages_written,
                "host_pages_read": ssd.host_pages_read,
                "write_amplification": round(ssd.write_amplification, 6),
                "gc_runs": ssd.gc_runs,
                "background_gc_runs": ssd.background_gc_runs,
                "mean_write_us": round(ssd.write_latency.mean_us, 6),
                "p99_write_us": ssd.write_latency.percentile(99),
            },
        }
    return {
        "schema": SCHEMA,
        "workload": {"name": "bench-smoke", "writes": writes, "seed": seed},
        "devices": devices,
    }


def to_canonical_json(result, indent=2):
    """Stable rendering: sorted keys, fixed separators, trailing newline."""
    return json.dumps(result, sort_keys=True, indent=indent) + "\n"


def write_bench_json(path=None, seed=1, writes=1500):
    """Emit ``BENCH_pr4.json``; returns the path written."""
    path = path or BENCH_FILE
    result = bench_smoke_snapshots(seed=seed, writes=writes)
    with open(path, "w") as fh:
        fh.write(to_canonical_json(result))
    return path
