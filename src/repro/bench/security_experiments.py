"""Ransomware recovery — the paper's Figure 10.

For each of the 13 families: populate a file system, run the attack,
then recover every encrypted file — once on TimeSSD (via TimeKits) and
once on FlashGuard — reporting simulated recovery time and verifying the
restored bytes against the pre-attack content.
"""

from dataclasses import dataclass

from repro.common.units import DAY_US, SECOND_US
from repro.bench.config import bench_geometry
from repro.flash.timing import FlashTiming
from repro.fs import PlainFS
from repro.ftl.ssd import SSDConfig
from repro.security import (
    RANSOMWARE_FAMILIES,
    FlashGuardSSD,
    RansomwareAttack,
    RansomwareDefense,
)
from repro.timessd.config import ContentMode, TimeSSDConfig
from repro.timessd.ssd import TimeSSD


@dataclass
class RecoveryTiming:
    family: str
    timessd_recovery_s: float
    flashguard_recovery_s: float
    timessd_verified: bool
    flashguard_verified: bool
    files_encrypted: int


def _geometry():
    return bench_geometry(page_size=2048, blocks_per_plane=32)


def _populate(fs, nfiles=32, pages_per_file=4, gap_us=4000):
    originals = {}
    for i in range(nfiles):
        name = "user%03d.doc" % i
        fs.create(name)
        payload = ("document-%03d-" % i).encode() * 40
        fs.write(name, 0, payload.ljust(pages_per_file * fs.page_size, b"\x07"))
        originals[name] = fs.read(name, 0, fs.file_size(name))
        fs.ssd.clock.advance(gap_us)
    fs.ssd.clock.advance(SECOND_US)
    return originals


def _verify(fs, report, originals):
    for name in report.encrypted_files:
        want = originals[name]
        if fs.read(name, 0, len(want)) != want:
            return False
    return True


def _timessd_stack(timing=None):
    ssd = TimeSSD(
        TimeSSDConfig(
            geometry=_geometry(),
            timing=timing or FlashTiming(),
            content_mode=ContentMode.REAL,
            retention_floor_us=3 * DAY_US,
            bloom_capacity=512,
        )
    )
    return PlainFS(ssd)


def _flashguard_stack():
    ssd = FlashGuardSSD(SSDConfig(geometry=_geometry(), timing=FlashTiming()))
    return PlainFS(ssd)


def _settle(fs, churn_pages=8000, junk_lpa_base=2000):
    """Post-attack activity before recovery starts.

    The paper recovers once the ransom note appears — after the
    ~75-minute attack window plus whatever else the machine was doing.
    Ordinary foreground churn plus idle time lets GC recycle the blocks
    holding the victims\' pre-attack versions, so recovery reads them
    back through the (compressed) delta chain — the state that costs
    TimeSSD its decompression overhead vs FlashGuard (Figure 10).
    """
    import random as _random

    ssd = fs.ssd
    rng = _random.Random(1234)
    junk = bytes(rng.randrange(256) for _ in range(ssd.device.geometry.page_size))
    span = max(1, min(2000, ssd.logical_pages - junk_lpa_base - 1))
    for i in range(churn_pages):
        ssd.write(junk_lpa_base + rng.randrange(span), junk)
        ssd.clock.advance(1000)
        if i % 500 == 499:
            # Idle pockets for background housekeeping, as on a desktop.
            ssd.clock.advance(30 * SECOND_US)
            ssd.read(junk_lpa_base)


def run_family(family, seed=7, threads=4, timing=None):
    """Attack + recover on both defenders; returns :class:`RecoveryTiming`."""
    profile = RANSOMWARE_FAMILIES[family]

    fs_t = _timessd_stack(timing=timing)
    originals_t = _populate(fs_t)
    report_t = RansomwareAttack(fs_t, profile, seed=seed).execute()
    _settle(fs_t)
    outcome_t = RansomwareDefense(fs_t).recover_with_timekits(
        report_t, threads=threads
    )

    fs_f = _flashguard_stack()
    originals_f = _populate(fs_f)
    report_f = RansomwareAttack(fs_f, profile, seed=seed).execute()
    _settle(fs_f)
    outcome_f = RansomwareDefense(fs_f).recover_with_flashguard(
        report_f, threads=threads
    )

    return RecoveryTiming(
        family=family,
        timessd_recovery_s=outcome_t.elapsed_us / SECOND_US,
        flashguard_recovery_s=outcome_f.elapsed_us / SECOND_US,
        timessd_verified=outcome_t.files_failed == 0
        and _verify(fs_t, report_t, originals_t),
        flashguard_verified=outcome_f.files_failed == 0
        and _verify(fs_f, report_f, originals_f),
        files_encrypted=len(report_t.encrypted_files),
    )


def run_fig10(seed=7):
    """All 13 families, in the paper's Figure 10 order."""
    return [run_family(family, seed=seed) for family in RANSOMWARE_FAMILIES]
