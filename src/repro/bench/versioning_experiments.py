"""Extension experiment: software versioning (CoW snapshots) vs TimeSSD.

Not a paper figure — it quantifies the §2.2/§6 argument the paper makes
qualitatively: snapshotting file systems can also retain history, but
(a) they pay full pages per version while TimeSSD delta-compresses,
(b) their history costs user-visible capacity, and (c) a privileged
attacker can destroy it with one call, while TimeSSD's survives.

Both stacks run the same versioned-overwrite workload; we report write
throughput, history footprint, recoverability before and after a
privileged wipe attempt.
"""

import random
from dataclasses import dataclass

from repro.common.units import DAY_US, SECOND_US
from repro.bench.config import bench_geometry
from repro.flash.timing import FlashTiming
from repro.fs import CowFS, PlainFS
from repro.ftl.ssd import RegularSSD, SSDConfig
from repro.timekits import FileRecovery, TimeKits
from repro.timessd.config import ContentMode, TimeSSDConfig
from repro.timessd.ssd import TimeSSD
from repro.workloads.content import ContentFactory


@dataclass
class VersioningResult:
    stack: str
    elapsed_us: int
    history_pages: int  # pages consumed purely by retained history
    #: How much of that comes out of *user-visible* capacity.  CoW
    #: versions live in the file system's own space; TimeSSD history
    #: hides in the device's spare area.
    user_capacity_cost: int
    recovered_ok: bool  # pre-wipe recovery of an old version
    survives_privileged_wipe: bool


def _geometry():
    return bench_geometry(page_size=2048, blocks_per_plane=32)


def _workload(fs, rounds=8, files=12, pages_per_file=4, seed=21, on_round_end=None):
    """Versioned updates: every round rewrites ~60% of each file."""
    rng = random.Random(seed)
    content = ContentFactory(fs.page_size, rng, mutation_fraction=0.10)
    goldens = {}
    for i in range(files):
        name = "doc%02d" % i
        fs.create(name)
        for p in range(pages_per_file):
            fs.write_pages(name, p, 1, [content.fresh((name, p))])
        fs.ssd.clock.advance(2000)
    marks = []
    for round_no in range(rounds):
        marks.append(fs.ssd.clock.now_us)
        if round_no == rounds // 2:
            # Remember one file's content mid-history for recovery checks.
            goldens["doc00"] = [
                bytes(content.current(("doc00", p)))
                for p in range(pages_per_file)
            ]
        for i in range(files):
            name = "doc%02d" % i
            for p in range(pages_per_file):
                if rng.random() < 0.6:
                    fs.write_pages(name, p, 1, [content.mutate((name, p))])
        fs.ssd.clock.advance(5 * SECOND_US)
        if on_round_end is not None:
            on_round_end(round_no)
    return marks, goldens


def run_cow_stack():
    """CoW snapshots on a regular SSD."""
    ssd = RegularSSD(SSDConfig(geometry=_geometry(), timing=FlashTiming()))
    fs = CowFS(ssd)
    snapshots = []
    start = ssd.clock.now_us

    def take_snapshot(_round):
        snapshots.append(fs.snapshot())

    marks, goldens = _workload(fs, on_round_end=take_snapshot)
    elapsed = ssd.clock.now_us - start
    history_pages = fs.retained_version_pages()

    mid_snap = snapshots[len(snapshots) // 2]
    recovered = fs.read_at("doc00", mid_snap, 0, len(goldens["doc00"][0]))
    recovered_ok = recovered == goldens["doc00"][0]

    # Privileged wipe: delete every snapshot.  Software retention dies.
    for snap in list(fs.snapshots()):
        fs.delete_snapshot(snap)
    survives = fs.retained_version_pages() > 0
    return VersioningResult(
        "CowFS+RegularSSD",
        elapsed,
        history_pages,
        user_capacity_cost=history_pages,
        recovered_ok=recovered_ok,
        survives_privileged_wipe=survives,
    )


def run_timessd_stack():
    """Plain FS on TimeSSD: history lives in firmware."""
    ssd = TimeSSD(
        TimeSSDConfig(
            geometry=_geometry(),
            timing=FlashTiming(),
            content_mode=ContentMode.REAL,
            retention_floor_us=3 * DAY_US,
            bloom_capacity=512,
        )
    )
    fs = PlainFS(ssd)
    start = ssd.clock.now_us
    marks, goldens = _workload(fs)
    elapsed = ssd.clock.now_us - start
    # Firmware history footprint: retained pages still uncompressed plus
    # flushed delta pages (page-equivalents).
    history_pages = ssd.retained_pages + ssd.deltas.flushed_pages

    kits = TimeKits(ssd)
    mid_mark = marks[len(marks) // 2]
    # The golden snapshot was taken at the *start* of round rounds//2;
    # the state as of just after that mark matches it.
    pages, _ = FileRecovery(kits).peek_file(
        "doc00", fs.file_lpas("doc00"), mid_mark
    )
    recovered_ok = pages[fs.file_lpas("doc00")[0]] == goldens["doc00"][0]

    # Privileged wipe attempt: the host has no interface to erase
    # firmware history; TRIMming files still leaves versions retained.
    for name in list(fs.list_files()):
        fs.delete(name)
    pages_after, _ = FileRecovery(kits).peek_file(
        "doc00", [lpa for lpa in pages], mid_mark
    )
    survives = bool(pages_after) and any(
        data == goldens["doc00"][0] for data in pages_after.values()
    )
    return VersioningResult(
        "PlainFS+TimeSSD",
        elapsed,
        history_pages,
        user_capacity_cost=0,
        recovered_ok=recovered_ok,
        survives_privileged_wipe=survives,
    )


def run_comparison():
    return run_cow_stack(), run_timessd_stack()
