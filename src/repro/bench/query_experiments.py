"""Storage-state query latency — the paper's Table 3.

After warming each volume's device with its trace, run the three
representative TimeKits calls the paper times:

* ``TimeQuery`` (state since one day ago) — a full device scan, seconds;
* ``AddrQueryAll`` on one random LPA — a few page reads, milliseconds;
* ``RollBack`` of that LPA to one day ago — reads plus one write.
"""

import random
from dataclasses import dataclass

from repro.common.units import DAY_US, MS_US, SECOND_US
from repro.bench.config import make_bench_timessd, prefill
from repro.bench.trace_experiments import FIU_NAMES, MSR_NAMES
from repro.timekits.api import TimeKits
from repro.workloads.fiu import fiu_trace
from repro.workloads.msr import msr_trace
from repro.workloads.trace import TraceReplayer


@dataclass
class QueryTimings:
    volume: str
    time_query_s: float
    addr_query_all_ms: float
    rollback_ms: float


def _warm_device(source, volume, usage=0.5, days=7, seed=1):
    ssd = make_bench_timessd()
    working = int(ssd.logical_pages * usage)
    prefill(ssd, working)
    fn = msr_trace if source == "msr" else fiu_trace
    trace = fn(volume, ssd.logical_pages, days=days, seed=seed, working_pages=working)
    TraceReplayer(ssd).replay(trace)
    return ssd, working


def run_volume_queries(source, volume, usage=0.5, days=7, seed=1, threads=8):
    """Time the three Table-3 operations on one warmed volume."""
    ssd, working = _warm_device(source, volume, usage, days, seed)
    kits = TimeKits(ssd)
    rng = random.Random(seed)
    day_ago = max(0, ssd.clock.now_us - DAY_US)

    tq = kits.time_query(day_ago, threads=threads)

    # Pick an LPA that actually has history (hot region).
    lpa = rng.randrange(max(1, working // 5))
    aq = kits.addr_query_all(lpa, cnt=1)
    rb = kits.rollback(lpa, cnt=1, t=day_ago)

    return QueryTimings(
        volume=volume,
        time_query_s=tq.elapsed_us / SECOND_US,
        addr_query_all_ms=aq.elapsed_us / MS_US,
        rollback_ms=rb.elapsed_us / MS_US,
    )


def run_table3(usage=0.5, days=7, seed=1):
    """All 12 volumes; returns :class:`QueryTimings` rows in paper order."""
    rows = []
    for volume in MSR_NAMES:
        rows.append(run_volume_queries("msr", volume, usage, days, seed))
    for volume in FIU_NAMES:
        rows.append(run_volume_queries("fiu", volume, usage, days, seed))
    return rows
