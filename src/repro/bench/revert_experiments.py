"""File reversal — the paper's Figure 11.

Replays a synthetic kernel-commit stream (the paper uses the 1,000 most
recent Linux commits at 100/minute), then reverts each of the ten source
files to one minute earlier with 1, 2 and 4 recovery threads.
"""

from dataclasses import dataclass

from repro.common.units import DAY_US, MINUTE_US, MS_US
from repro.bench.config import bench_geometry
from repro.casestudies import KERNEL_FILES, FileRevertStudy
from repro.flash.timing import FlashTiming
from repro.fs import PlainFS
from repro.timessd.config import ContentMode, TimeSSDConfig
from repro.timessd.ssd import TimeSSD


@dataclass
class RevertTiming:
    name: str
    per_thread_ms: dict  # threads -> simulated ms
    verified: bool


def _study(commits, seed=11):
    ssd = TimeSSD(
        TimeSSDConfig(
            geometry=bench_geometry(page_size=2048, blocks_per_plane=48),
            timing=FlashTiming(),
            content_mode=ContentMode.REAL,
            retention_floor_us=3 * DAY_US,
            bloom_capacity=1024,
        )
    )
    fs = PlainFS(ssd)
    study = FileRevertStudy(fs, files=KERNEL_FILES, pages_per_file=10, seed=seed)
    study.setup()
    study.replay_commits(commits=commits, commits_per_minute=100)
    return study


def run_fig11(commits=1000, threads=(1, 2, 4), seed=11):
    """Revert each kernel file at each thread count.

    Each (file, thread-count) revert runs on a fresh device replica so
    reverts do not contaminate each other's history — matching the
    paper's methodology of independent measurements.
    """
    timings = {name: RevertTiming(name, {}, True) for name in KERNEL_FILES}
    for nthreads in threads:
        study = _study(commits, seed=seed)
        t_past = study.fs.ssd.clock.now_us - MINUTE_US
        for name in KERNEL_FILES:
            outcome = study.revert_file(name, t_past, threads=nthreads, verify=True)
            timings[name].per_thread_ms[nthreads] = outcome.elapsed_us / MS_US
            timings[name].verified &= outcome.verified
    return [timings[name] for name in KERNEL_FILES]
