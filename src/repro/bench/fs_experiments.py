"""File-system benchmarks — Figure 9 (IOZone, PostMark, OLTP).

Three stacks, as in the paper's §5.3:

* **Ext4**   — :class:`JournalingFS` (data journaling) on a regular SSD;
* **F2FS**   — :class:`LogStructuredFS` on a regular SSD;
* **TimeSSD** — :class:`PlainFS` (journaling disabled) on a TimeSSD.

Content is real bytes so TimeSSD's delta compression behaves honestly:
IOZone writes random (incompressible) pages; PostMark and the OLTP mixes
have content locality (the paper measures ratios of 0.12-0.23 there).
"""

from repro.common.units import DAY_US, SECOND_US
from repro.bench.config import bench_geometry
from repro.flash.timing import FlashTiming
from repro.fs import JournalingFS, LogStructuredFS, PlainFS
from repro.ftl.ssd import RegularSSD, SSDConfig
from repro.timessd.config import ContentMode, TimeSSDConfig
from repro.timessd.ssd import TimeSSD
from repro.workloads.iozone import IOZoneWorkload
from repro.workloads.postmark import PostMarkWorkload
from repro.workloads.oltp import TATP, TPCB, TPCC, MiniOLTPEngine

STACKS = ("Ext4", "F2FS", "TimeSSD")


def _fs_geometry():
    # Smaller pages keep the Python LZF cost of real-content deltas low.
    return bench_geometry(page_size=2048, blocks_per_plane=32)


def make_stack(stack):
    """Build (fs, ssd) for one of the three stacks."""
    geometry = _fs_geometry()
    if stack == "Ext4":
        ssd = RegularSSD(SSDConfig(geometry=geometry, timing=FlashTiming()))
        return JournalingFS(ssd), ssd
    if stack == "F2FS":
        ssd = RegularSSD(SSDConfig(geometry=geometry, timing=FlashTiming()))
        return LogStructuredFS(ssd), ssd
    if stack == "TimeSSD":
        ssd = TimeSSD(
            TimeSSDConfig(
                geometry=geometry,
                timing=FlashTiming(),
                content_mode=ContentMode.REAL,
                retention_floor_us=3 * DAY_US,
                bloom_capacity=512,
            )
        )
        return PlainFS(ssd), ssd
    raise ValueError("unknown stack %r" % stack)


def run_iozone(file_pages=384, seed=3):
    """Figure 9a: the four IOZone phases on each stack.

    Returns ``{stack: {phase: throughput}}`` (bytes per simulated
    second); the bench normalizes to Ext4 like the paper's plot.
    """
    out = {}
    for stack in STACKS:
        fs, _ssd = make_stack(stack)
        result = IOZoneWorkload(fs, file_pages=file_pages, seed=seed).run()
        out[stack] = result.as_dict()
    return out


def run_postmark(transactions=400, seed=3):
    """Figure 9b (left): PostMark transactions/second per stack."""
    out = {}
    for stack in STACKS:
        fs, _ssd = make_stack(stack)
        workload = PostMarkWorkload(
            fs, nfiles=48, file_pages_max=6, seed=seed, mutation_fraction=0.15
        )
        out[stack] = workload.run(transactions=transactions).tps
    return out


def run_oltp(transactions=300, seed=3):
    """Figure 9b (right): TPCC/TPCB/TATP transactions/second per stack."""
    out = {}
    for stack in STACKS:
        per_bench = {}
        for profile in (TPCC, TPCB, TATP):
            fs, _ssd = make_stack(stack)
            engine = MiniOLTPEngine(
                fs, table_pages=384, seed=seed, mutation_fraction=0.08
            )
            per_bench[profile.name] = engine.run(profile, transactions).tps
        out[stack] = per_bench
    return out


def normalized(rows, baseline="Ext4"):
    """Normalize a ``{stack: value}`` mapping to the baseline stack."""
    base = rows[baseline]
    return {stack: (value / base if base else 0.0) for stack, value in rows.items()}
