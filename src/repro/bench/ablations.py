"""Ablations over TimeSSD's design choices (DESIGN.md table).

Each ablation replays the same MSR volume and reports how the design
knob moves the retention/overhead trade-off:

* delta compression on/off (§3.6) — space saved lengthens retention;
* bloom group size N (§3.5) — memory vs false-positive retention;
* GC-overhead threshold TH (§3.8) — retention vs lifetime;
* background (idle) work on/off (§3.6) — foreground response time.
"""

from dataclasses import dataclass

from repro.common.units import DAY_US
from repro.bench.config import make_bench_timessd, prefill
from repro.workloads.msr import msr_trace
from repro.workloads.trace import TraceReplayer


@dataclass
class AblationPoint:
    label: str
    retention_days: float
    write_amplification: float
    mean_response_us: float
    bloom_memory_bytes: int
    aborted: bool


def _run(label, volume="hm", usage=0.5, days=14, seed=1, **overrides):
    ssd = make_bench_timessd(**overrides)
    working = int(ssd.logical_pages * usage)
    prefill(ssd, working)
    trace = msr_trace(
        volume, ssd.logical_pages, days=days, seed=seed, working_pages=working
    )
    stats = TraceReplayer(ssd).replay(trace)
    return AblationPoint(
        label=label,
        retention_days=min(ssd.retention_window_us(), ssd.clock.now_us) / DAY_US,
        write_amplification=ssd.write_amplification,
        mean_response_us=stats.response.mean_us,
        bloom_memory_bytes=ssd.blooms.memory_bytes(),
        aborted=stats.aborted_at is not None,
    )


def ablate_delta_compression(volume="src", usage=0.8, days=14):
    """§3.6: retained versions compressed vs stored whole.

    Run under real GC pressure (heavy volume, 80% usage) — with a
    near-empty device retained pages cost nothing until GC must move
    them, and the knob would show nothing.
    """
    return [
        _run("delta-compression=on", volume, usage, days, delta_compression=True),
        _run("delta-compression=off", volume, usage, days, delta_compression=False),
    ]


def ablate_bloom_group_size(volume="src", usage=0.8, days=14, sizes=(1, 16, 64)):
    """§3.5: invalidation-tracking group granularity N.

    Segment sealing must be count-driven for the knob to show, so the
    age-based seal is pushed out of the way (2 days per segment max).
    """
    from repro.common.units import DAY_US as _DAY_US

    return [
        _run(
            "group-size=%d" % n,
            volume,
            usage,
            days,
            bloom_group_size=n,
            bloom_segment_max_age_us=2 * _DAY_US,
        )
        for n in sizes
    ]


def ablate_gc_threshold(volume="hm", usage=0.5, days=21, thresholds=(0.5, 1.0, 2.0)):
    """§3.8: Equation-1 threshold TH."""
    return [
        _run("TH=%.2f" % th, volume, usage, days, gc_overhead_threshold=th)
        for th in thresholds
    ]


def ablate_background_work(volume="hm", usage=0.8, days=14):
    """§3.6: idle-time background GC + compression on/off.

    With background work disabled everything runs on the foreground
    path, which is where the response-time overhead shows up.
    """
    return [
        _run("background=on", volume, usage, days),
        _run(
            "background=off",
            volume,
            usage,
            days,
            background_gc=False,
            background_compression=False,
        ),
    ]


def ablate_mapping_cache(volume="hm", usage=0.5, days=10, sizes=(None, 2048, 256)):
    """DFTL demand cache: fully-cached vs finite mapping caches.

    Translation-page misses ride the critical path, so smaller caches
    raise mean response time (the classic DFTL trade-off).
    """
    points = []
    for size in sizes:
        label = "mapping-cache=%s" % ("full" if size is None else size)
        points.append(
            _run(label, volume, usage, days, mapping_cache_entries=size)
        )
    return points


def ablate_compression_acceleration(family="Petya", seed=7):
    """§5.5.1 future work: hardware-accelerated (de)compression.

    The paper attributes TimeSSD's ~14% recovery-time gap vs FlashGuard
    to delta decompression and proposes hardware acceleration.  Model it
    by shrinking the compression costs an order of magnitude and compare
    recovery times.
    """
    from repro.bench.security_experiments import run_family
    from repro.flash.timing import FlashTiming

    software = run_family(family, seed=seed)
    accelerated_timing = FlashTiming(delta_compress_us=12, delta_decompress_us=6)
    accelerated = run_family(family, seed=seed, timing=accelerated_timing)
    return software, accelerated


def ablate_device_parallelism(channel_counts=(2, 4, 8), seed=31):
    """Device parallelism: TimeQuery latency vs channel count.

    The paper accelerates state queries with the SSD\'s internal
    parallelism (§3.9, Figure 11); this sweep holds capacity constant
    and varies channel count — the full-scan TimeQuery should speed up
    close to linearly.
    """
    import random as _random

    from repro.common.units import SECOND_US
    from repro.bench.config import make_bench_timessd, bench_geometry, prefill
    from repro.timekits.api import TimeKits

    points = []
    for channels in channel_counts:
        geometry = bench_geometry(
            channels=channels, blocks_per_plane=384 // channels
        )
        ssd = make_bench_timessd(geometry=geometry)
        rng = _random.Random(seed)
        working = ssd.logical_pages // 3
        prefill(ssd, working)
        for _ in range(working):
            ssd.write(rng.randrange(working))
            ssd.clock.advance(2000)
        kits = TimeKits(ssd)
        result = kits.time_query(0, threads=16)
        points.append(
            AblationPoint(
                label="channels=%d" % channels,
                retention_days=0.0,
                write_amplification=ssd.write_amplification,
                mean_response_us=result.elapsed_us,  # TimeQuery latency here
                bloom_memory_bytes=ssd.blooms.memory_bytes(),
                aborted=False,
            )
        )
    return points


def ablate_gc_policy(usage=0.5, writes_factor=4, seed=13):
    """Greedy vs cost-benefit GC under hot/cold skew.

    Cost-benefit cleans old, mostly-dead cold blocks instead of chasing
    the hottest garbage, which lowers write amplification when updates
    are skewed (the workload shape every trace in Table 2 has).
    """
    import random as _random

    from repro.bench.config import make_bench_timessd, prefill

    points = []
    for policy in ("greedy", "cost_benefit"):
        ssd = make_bench_timessd(gc_policy=policy)
        rng = _random.Random(seed)
        working = int(ssd.logical_pages * usage)
        hot = max(1, working // 10)
        prefill(ssd, working)
        for _ in range(working * writes_factor):
            if rng.random() < 0.9:
                ssd.write(rng.randrange(hot))
            else:
                ssd.write(hot + rng.randrange(working - hot))
            ssd.clock.advance(1500)
        points.append(
            AblationPoint(
                label="gc-policy=%s" % policy,
                retention_days=min(ssd.retention_window_us(), ssd.clock.now_us)
                / DAY_US,
                write_amplification=ssd.write_amplification,
                mean_response_us=ssd.write_latency.mean_us,
                bloom_memory_bytes=ssd.blooms.memory_bytes(),
                aborted=False,
            )
        )
    return points


def ablate_queue_depth(depths=(1, 2, 4, 8, 16), reads=400, seed=41):
    """Random-read IOPS vs NVMe queue depth, on the event-driven engine.

    The QD=1 host leaves the device's parallelism idle; deeper queues
    keep more slot workers in flight, overlapping reads across
    channels/chips until the lane count saturates the scaling.  Each
    depth runs the identical seeded read stream through
    :meth:`~repro.nvme.driver.HostNVMeDriver.submit_async` with the
    device's background daemons live on the same event loop.
    """
    import random as _random

    from repro.common.units import SECOND_US
    from repro.bench.config import make_bench_timessd, prefill
    from repro.nvme import HostNVMeDriver, NVMeCommand, Opcode

    rng = _random.Random(seed)
    stream = [rng.randrange(10**9) for _ in range(reads)]
    points = []
    for depth in depths:
        # A fresh, identically-prefilled device per depth: completed
        # background work must not leak from one depth into the next.
        ssd = make_bench_timessd()
        driver = HostNVMeDriver(ssd)
        working = ssd.logical_pages // 2
        prefill(ssd, working)
        commands = [
            NVMeCommand(Opcode.READ, slba=lpa % working, nlb=1)
            for lpa in stream
        ]
        _completions, elapsed = driver.submit_async(
            commands, queue_depth=depth, daemons=True
        )
        iops = reads * SECOND_US / max(1, elapsed)
        points.append(
            AblationPoint(
                label="QD=%d" % depth,
                retention_days=0.0,
                write_amplification=0.0,
                mean_response_us=iops,  # column reused: higher is better
                bloom_memory_bytes=0,
                aborted=False,
            )
        )
    return points
