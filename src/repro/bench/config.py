"""Standard device configurations for the benchmark suite.

The paper's board is a 1 TB SSD; the bench device scales everything down
(~48 MiB of raw flash) so every figure regenerates in minutes on a
laptop while keeping the ratios that matter: over-provisioning fraction,
capacity usage (50%/80%), and write volume relative to spare capacity.
"""

from repro.common.units import DAY_US, SECOND_US
from repro.flash.geometry import FlashGeometry
from repro.flash.timing import FlashTiming
from repro.ftl.ssd import RegularSSD, SSDConfig
from repro.timessd.config import ContentMode, TimeSSDConfig
from repro.timessd.ssd import TimeSSD


def bench_geometry(**overrides):
    params = dict(
        channels=8,
        blocks_per_plane=48,
        pages_per_block=32,
        page_size=4096,
    )
    params.update(overrides)
    return FlashGeometry(**params)


def make_bench_regular(**overrides):
    params = dict(geometry=bench_geometry(), timing=FlashTiming())
    params.update(overrides)
    return RegularSSD(SSDConfig(**params))


def make_bench_timessd(**overrides):
    params = dict(
        geometry=bench_geometry(),
        timing=FlashTiming(),
        # Paper default: 3-day retention floor.
        retention_floor_us=3 * DAY_US,
        # Finer segments than the firmware default so the adaptive window
        # moves in sub-day steps at bench scale.
        bloom_capacity=512,
        # Finer Equation-1 periods than the firmware default: at bench
        # write rates 1024-write periods would span days of trace time.
        gc_overhead_period_writes=128,
        # Calibrated threshold: the scaled-down device has a much higher
        # baseline GC + delta-compression cost per write than the paper's
        # 1 TB board, so the paper's TH=0.2 would pin every volume at the
        # floor.  1.0 reproduces the published retention bands.
        gc_overhead_threshold=1.0,
        content_mode=ContentMode.MODELED,
        modeled_ratio_mean=0.20,
    )
    params.update(overrides)
    return TimeSSD(TimeSSDConfig(**params))


def prefill(ssd, working_pages, gap_us=200):
    """Warm up: write the working set once so GC has real state.

    The paper warms the device "to ensure GC operations are triggered"
    before each experiment; the prefill finishes within simulated
    seconds, negligible against multi-day traces.
    """
    for lpa in range(working_pages):
        ssd.write(lpa)
        if gap_us:
            ssd.clock.advance(gap_us)
    return ssd
