"""Trace-driven experiments: Figures 6 (response time), 7 (write
amplification) and 8 (retention duration).

One replay produces every per-volume metric, so results are memoized by
parameter tuple and shared between the figure benches.
"""

from dataclasses import dataclass

from repro.common.units import DAY_US
from repro.bench.config import make_bench_regular, make_bench_timessd, prefill
from repro.workloads.fiu import FIU_VOLUMES, fiu_trace
from repro.workloads.msr import MSR_VOLUMES, msr_trace
from repro.workloads.trace import TraceReplayer

MSR_NAMES = ("hm", "rsrch", "src", "stg", "ts", "usr", "wdev")
FIU_NAMES = ("research", "webmail", "online", "web-online", "webusers")
ALL_VOLUMES = tuple(("msr", v) for v in MSR_NAMES) + tuple(
    ("fiu", v) for v in FIU_NAMES
)


@dataclass
class TraceRunResult:
    source: str
    volume: str
    device: str  # "regular" | "timessd"
    usage: float
    days: int
    requests: int
    mean_response_us: float
    p99_response_us: float
    write_amplification: float
    retention_days: float
    aborted: bool


_CACHE = {}


def _trace_for(source, volume, logical_pages, working_pages, days, seed):
    fn = msr_trace if source == "msr" else fiu_trace
    return fn(
        volume,
        logical_pages,
        days=days,
        seed=seed,
        working_pages=working_pages,
    )


def run_volume(source, volume, device, usage, days, seed=1):
    """Replay one volume on one device; memoized."""
    key = (source, volume, device, usage, days, seed)
    if key in _CACHE:
        return _CACHE[key]
    ssd = make_bench_timessd() if device == "timessd" else make_bench_regular()
    working = int(ssd.logical_pages * usage)
    prefill(ssd, working)
    trace = _trace_for(source, volume, ssd.logical_pages, working, days, seed)
    stats = TraceReplayer(ssd).replay(trace)
    retention_days = 0.0
    if device == "timessd":
        retention_days = min(
            ssd.retention_window_us(), ssd.clock.now_us
        ) / DAY_US
    result = TraceRunResult(
        source=source,
        volume=volume,
        device=device,
        usage=usage,
        days=days,
        requests=stats.requests,
        mean_response_us=stats.response.mean_us,
        p99_response_us=stats.response.percentile(99),
        write_amplification=ssd.write_amplification,
        retention_days=retention_days,
        aborted=stats.aborted_at is not None,
    )
    _CACHE[key] = result
    return result


def run_comparison(usage, days=14, seed=1, volumes=ALL_VOLUMES):
    """Figures 6 & 7: every volume on regular SSD vs TimeSSD."""
    rows = []
    for source, volume in volumes:
        regular = run_volume(source, volume, "regular", usage, days, seed)
        timessd = run_volume(source, volume, "timessd", usage, days, seed)
        rows.append((regular, timessd))
    return rows


def response_time_rows(usage, days=14, seed=1):
    """Figure 6 table rows: volume, regular ms, TimeSSD ms, overhead %."""
    rows = []
    for regular, timessd in run_comparison(usage, days, seed):
        overhead = 0.0
        if regular.mean_response_us:
            overhead = (
                timessd.mean_response_us / regular.mean_response_us - 1.0
            ) * 100.0
        rows.append(
            (
                regular.volume,
                regular.mean_response_us / 1000.0,
                timessd.mean_response_us / 1000.0,
                overhead,
            )
        )
    return rows


def write_amplification_rows(usage, days=14, seed=1):
    """Figure 7 table rows: volume, regular WA, TimeSSD WA, increase %."""
    rows = []
    for regular, timessd in run_comparison(usage, days, seed):
        increase = 0.0
        if regular.write_amplification:
            increase = (
                timessd.write_amplification / regular.write_amplification - 1.0
            ) * 100.0
        rows.append(
            (
                regular.volume,
                regular.write_amplification,
                timessd.write_amplification,
                increase,
            )
        )
    return rows


def retention_rows(source, usage, lengths, seed=1):
    """Figure 8: retention duration per volume per trace length."""
    names = MSR_NAMES if source == "msr" else FIU_NAMES
    out = {}
    for volume in names:
        series = []
        for days in lengths:
            result = run_volume(source, volume, "timessd", usage, days, seed)
            series.append((days, result.retention_days, result.aborted))
        out[volume] = series
    return out
