"""ASCII tables and result persistence for the benchmark suite."""

import os


def format_table(headers, rows, title=None):
    """Render an aligned ASCII table."""
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append([_fmt(v) for v in row])
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value):
    if isinstance(value, float):
        return "%.3f" % value
    return str(value)


def results_dir():
    """Directory for persisted bench tables (created on demand)."""
    base = os.environ.get("REPRO_BENCH_RESULTS")
    if base is None:
        base = os.path.join(os.getcwd(), "benchmarks", "results")
    os.makedirs(base, exist_ok=True)
    return base


def save_result(name, text):
    """Write a rendered table to ``benchmarks/results/<name>.txt``."""
    path = os.path.join(results_dir(), name + ".txt")
    with open(path, "w") as handle:
        handle.write(text)
        if not text.endswith("\n"):
            handle.write("\n")
    return path
