"""Cross-PR bench trajectory: diff every committed ``BENCH_pr*.json``.

Each PR commits one metrics snapshot (:mod:`repro.bench.emit`).  Because
the deterministic payload is byte-stable per seed, the sequence of
committed files *is* the project's performance history: any simulator
behaviour change shows up as a payload diff between consecutive PRs, and
the ``harness`` section records the (non-deterministic) wall-clock
throughput of the run that produced each file.

``repro metrics --history`` renders the trajectory table and the
payload diffs; CI uploads the table as an artifact so a reviewer can see
at a glance which PR moved which counter.
"""

import json
import os
import re

from repro.bench.emit import deterministic_payload

#: Matches committed snapshot files; group 1 is the PR number.
BENCH_PATTERN = re.compile(r"^BENCH_pr(\d+)\.json$")


def find_bench_files(root="."):
    """All ``BENCH_pr*.json`` under ``root``, ordered by PR number.

    Returns a list of ``(pr_number, path)`` tuples.
    """
    found = []
    for name in os.listdir(root):
        match = BENCH_PATTERN.match(name)
        if match:
            found.append((int(match.group(1)), os.path.join(root, name)))
    found.sort()
    return found


def load_history(root="."):
    """Parse every committed snapshot; returns ``[(pr, path, data)]``.

    Unreadable or non-JSON files are reported as a ``(pr, path, None)``
    entry rather than raised, so one corrupt snapshot does not hide the
    rest of the trajectory.
    """
    out = []
    for pr, path in find_bench_files(root):
        try:
            with open(path, "r", encoding="utf-8") as fh:
                out.append((pr, path, json.load(fh)))
        except (OSError, ValueError):
            out.append((pr, path, None))
    return out


def _summary_row(pr, data):
    """One table row: throughput plus the headline per-device figures."""
    if data is None:
        return {"pr": pr, "error": "unreadable"}
    harness = data.get("harness") or {}
    row = {
        "pr": pr,
        "schema": data.get("schema"),
        "ops_per_sec": harness.get("ops_per_sec"),
        "elapsed_s": harness.get("elapsed_s"),
    }
    for kind, payload in sorted((data.get("devices") or {}).items()):
        summary = payload.get("summary") or {}
        row["%s_wa" % kind] = summary.get("write_amplification")
        row["%s_p99_write_us" % kind] = summary.get("p99_write_us")
        row["%s_gc_runs" % kind] = summary.get("gc_runs")
    return row


def _flatten(value, prefix=""):
    """Flatten a JSON tree into sorted ``path -> leaf`` pairs."""
    if isinstance(value, dict):
        out = {}
        for key in sorted(value):
            out.update(_flatten(value[key], "%s%s." % (prefix, key)))
        return out
    if isinstance(value, list):
        out = {}
        for index, item in enumerate(value):
            out.update(_flatten(item, "%s%d." % (prefix, index)))
        return out
    return {prefix[:-1]: value}


def diff_payloads(older, newer, limit=12):
    """Leaf-level differences between two deterministic payloads.

    Returns a list of ``(path, old_value, new_value)`` tuples, at most
    ``limit`` of them (the count of suppressed entries is appended as a
    final ``("... N more", None, None)`` marker).  Missing leaves show
    as ``None`` on the absent side.
    """
    flat_old = _flatten(deterministic_payload(older))
    flat_new = _flatten(deterministic_payload(newer))
    changed = []
    for path in sorted(set(flat_old) | set(flat_new)):
        old_value = flat_old.get(path)
        new_value = flat_new.get(path)
        if old_value != new_value:
            changed.append((path, old_value, new_value))
    if len(changed) > limit:
        suppressed = len(changed) - limit
        changed = changed[:limit]
        changed.append(("... %d more leaves differ" % suppressed, None, None))
    return changed


def trajectory(root="."):
    """The full history report as a plain dict (JSON-serializable).

    ``rows`` holds one summary row per PR; ``diffs`` holds, for each
    consecutive pair of readable snapshots, the deterministic-payload
    leaf diff (empty list == behaviour-identical PRs).
    """
    history = load_history(root)
    rows = [_summary_row(pr, data) for pr, _path, data in history]
    diffs = []
    readable = [(pr, data) for pr, _path, data in history if data is not None]
    for (old_pr, old_data), (new_pr, new_data) in zip(readable, readable[1:]):
        diffs.append(
            {
                "from_pr": old_pr,
                "to_pr": new_pr,
                "changes": [
                    {"path": path, "old": old_value, "new": new_value}
                    for path, old_value, new_value in diff_payloads(
                        old_data, new_data
                    )
                ],
            }
        )
    return {"rows": rows, "diffs": diffs}


def _format_cell(value):
    if value is None:
        return "-"
    if isinstance(value, float):
        return "%g" % value
    return str(value)


def render_table(report):
    """Render :func:`trajectory` output as an aligned text table."""
    rows = report["rows"]
    if not rows:
        return "no BENCH_pr*.json snapshots found\n"
    columns = ["pr", "ops_per_sec", "elapsed_s"]
    extra = sorted(
        {key for row in rows for key in row}
        - {"pr", "ops_per_sec", "elapsed_s", "schema", "error"}
    )
    columns += extra
    table = [columns]
    for row in rows:
        if "error" in row:
            table.append([str(row["pr"]), row["error"]] + [""] * (len(columns) - 2))
            continue
        table.append([_format_cell(row.get(col)) for col in columns])
    widths = [
        max(len(line[i]) if i < len(line) else 0 for line in table)
        for i in range(len(columns))
    ]
    lines = [
        "  ".join(cell.ljust(width) for cell, width in zip(line, widths)).rstrip()
        for line in table
    ]
    out = ["bench trajectory (%d snapshots):" % len(rows), ""]
    out += lines
    for diff in report["diffs"]:
        out.append("")
        changes = diff["changes"]
        header = "pr%d -> pr%d: " % (diff["from_pr"], diff["to_pr"])
        if not changes:
            out.append(header + "deterministic payload identical")
            continue
        out.append(header + "%d payload leaves changed" % len(changes))
        for change in changes:
            if change["old"] is None and change["new"] is None:
                out.append("  %s" % change["path"])
            else:
                out.append(
                    "  %s: %s -> %s"
                    % (
                        change["path"],
                        _format_cell(change["old"]),
                        _format_cell(change["new"]),
                    )
                )
    return "\n".join(out) + "\n"
