"""Retention duration management (paper §3.4) and Equation 1 (§3.8).

The garbage collector reports its operation counts; once per period of
``N_fixed`` user page writes the estimator evaluates

    (N_read*C_read + N_write*C_write + N_erase*C_erase + N_delta*C_delta)
    ------------------------------------------------------------------- > TH * C_write
                               N_fixed

and, when the average GC overhead per user write exceeds the threshold
(20% of a page-write cost by default), asks the retention manager to
shrink the window by recycling the oldest bloom segment — never past the
guaranteed floor (three days by default).
"""

from repro.common.atomic import atomic_section


class GCOverheadEstimator:
    """Periodic Equation-1 evaluation."""

    def __init__(self, timing, threshold=0.20, period_writes=1024):
        if period_writes <= 0:
            raise ValueError("period_writes must be positive")
        self._timing = timing
        self.threshold = threshold
        self.period_writes = period_writes
        self._user_writes_in_period = 0
        self._gc_reads = 0
        self._gc_writes = 0
        self._gc_erases = 0
        self._gc_deltas = 0
        self.last_overhead_per_write_us = 0.0
        self.periods_evaluated = 0
        self.periods_exceeded = 0

    def note_gc_ops(self, reads=0, writes=0, erases=0, deltas=0):
        self._gc_reads += reads
        self._gc_writes += writes
        self._gc_erases += erases
        self._gc_deltas += deltas

    def note_user_write(self):
        """Count one user page write; True when the period closed with
        overhead above threshold (caller should shrink retention)."""
        self._user_writes_in_period += 1
        if self._user_writes_in_period < self.period_writes:
            return False
        return self._close_period()

    def _close_period(self):
        timing = self._timing
        cost_us = (
            self._gc_reads * timing.read_us
            + self._gc_writes * timing.program_us
            + self._gc_erases * timing.erase_us
            + self._gc_deltas * timing.delta_compress_us
        )
        self.last_overhead_per_write_us = cost_us / self.period_writes
        self._user_writes_in_period = 0
        self._gc_reads = self._gc_writes = self._gc_erases = self._gc_deltas = 0
        self.periods_evaluated += 1
        exceeded = self.last_overhead_per_write_us > self.threshold * timing.program_us
        if exceeded:
            self.periods_exceeded += 1
        return exceeded

    def overshoot_ratio(self):
        """How far the last period's overhead exceeded the threshold.

        1.0 means exactly at threshold; the retention manager shrinks
        more aggressively the further GC overshoots.
        """
        limit = self.threshold * self._timing.program_us
        if limit <= 0:
            return 0.0
        return self.last_overhead_per_write_us / limit


class RetentionManager:
    """Couples the bloom segment chain to the floor guarantee.

    ``shrink`` recycles the oldest segment if (and only if) every page it
    retains has already been held for at least the floor; otherwise the
    window cannot move and the caller must either wait or — when free
    space is truly exhausted — stop serving writes (the paper's alarm
    behaviour, surfaced here as :class:`RetentionViolationError` by the
    device).
    """

    def __init__(self, blooms, floor_us):
        self.blooms = blooms
        self.floor_us = floor_us
        self.shrinks = 0
        self.shrink_denied = 0

    def can_shrink(self):
        return self.blooms.can_drop_oldest(self.floor_us)

    @atomic_section(
        "the floor check and the bloom-window drop are one decision: a "
        "suspension in between could admit a second shrink that takes "
        "the window below the configured floor"
    )
    def shrink(self):
        """Drop the oldest segment if the floor allows; returns it or None."""
        if not self.can_shrink():
            self.shrink_denied += 1
            return None
        segment = self.blooms.drop_oldest()
        if segment is not None:
            self.shrinks += 1
        return segment

    def retention_us(self):
        return self.blooms.retention_us()

    def window_start_us(self):
        return self.blooms.window_start_us()
