"""Bloom filters recording page-invalidation times (paper §3.5).

A naive per-page invalidation-timestamp table for a 1 TB SSD would need
1 GB of RAM, so TimeSSD instead keeps a chain of bloom filters, each
recording the (group-granular) physical page addresses invalidated during
one time segment.  The segments are recycled oldest-first, which is how
the retention window shrinks.

Guarantees (mirrored by tests):

* no false negatives — a recorded group is always found while its filter
  lives, so a non-expired page is never reclaimed by mistake;
* false positives only delay expiration (a page may be retained longer
  than strictly needed), which is safe.
"""

import math

from repro.common.errors import ReproError


def _splitmix64(x):
    """Deterministic 64-bit mixer (SplitMix64 finalizer)."""
    x = (x + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return x ^ (x >> 31)


class BloomFilter:
    """A classic bloom filter over non-negative integers.

    Sized from ``capacity`` and ``fp_rate`` using the standard optimal
    formulas; hashing uses double hashing over two SplitMix64 streams.
    """

    def __init__(self, capacity, fp_rate=0.01, seed=0):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 < fp_rate < 1:
            raise ValueError("fp_rate must be in (0, 1)")
        self.capacity = capacity
        self.fp_rate = fp_rate
        self._seed = seed
        bits = max(8, int(math.ceil(-capacity * math.log(fp_rate) / (math.log(2) ** 2))))
        self._nbits = bits
        self._hashes = max(1, int(round(bits / capacity * math.log(2))))
        self._bits = bytearray((bits + 7) // 8)
        self.count = 0

    @property
    def nbits(self):
        return self._nbits

    @property
    def nhashes(self):
        return self._hashes

    def _positions(self, item):
        h1 = _splitmix64(item ^ self._seed)
        h2 = _splitmix64(h1) | 1
        for i in range(self._hashes):
            yield (h1 + i * h2) % self._nbits

    def add(self, item):
        if item < 0:
            raise ReproError("bloom filter items must be non-negative")
        for pos in self._positions(item):
            self._bits[pos >> 3] |= 1 << (pos & 7)
        self.count += 1

    def __contains__(self, item):
        return all(
            self._bits[pos >> 3] & (1 << (pos & 7)) for pos in self._positions(item)
        )

    @property
    def is_full(self):
        return self.count >= self.capacity

    def memory_bytes(self):
        return len(self._bits)


class BloomSegment:
    """One time segment: a bloom filter plus its lifetime bookkeeping.

    ``delta_records`` and delta blocks are attached by the delta manager;
    they die together with the segment.
    """

    __slots__ = (
        "segment_id",
        "bloom",
        "created_us",
        "sealed_us",
        "dropped",
    )

    def __init__(self, segment_id, bloom, created_us):
        self.segment_id = segment_id
        self.bloom = bloom
        self.created_us = created_us
        self.sealed_us = None
        self.dropped = False

    @property
    def active(self):
        return self.sealed_us is None and not self.dropped

    def __repr__(self):
        state = "active" if self.active else ("dropped" if self.dropped else "sealed")
        return "BloomSegment(#%d, %s, n=%d)" % (
            self.segment_id,
            state,
            self.bloom.count,
        )


class TimeSegmentedBlooms:
    """The chain of time-ordered bloom segments (Figure 4).

    Invalidations are recorded at *group* granularity: ``group_size``
    consecutive pages of a flash block share one entry, exploiting the
    sequential-programming / sequential-invalidation locality the paper
    observes (N = 16 by default).
    """

    def __init__(
        self,
        clock,
        capacity_per_filter=4096,
        fp_rate=0.01,
        group_size=16,
        seed=0,
        max_segment_age_us=None,
    ):
        if group_size <= 0:
            raise ValueError("group_size must be positive")
        self._clock = clock
        self._capacity = capacity_per_filter
        self._fp_rate = fp_rate
        self.group_size = group_size
        self._seed = seed
        self._max_age_us = max_segment_age_us
        self._segments = []
        self._next_id = 0
        self._new_segment()

    def _new_segment(self):
        bloom = BloomFilter(
            self._capacity, self._fp_rate, seed=_splitmix64(self._seed + self._next_id)
        )
        segment = BloomSegment(self._next_id, bloom, self._clock.now_us)
        self._next_id += 1
        self._segments.append(segment)
        return segment

    def reset(self):
        """Forget every segment (power loss) and open a fresh active one.

        Segment ids stay monotonic across the reset so records rebuilt
        after a crash can never collide with pre-crash segment ids.
        """
        self._segments = []
        return self._new_segment()

    def group_of(self, ppa):
        return ppa // self.group_size

    # --- Recording -----------------------------------------------------------

    def record_invalidation(self, ppa):
        """Register an invalidated PPA in the active segment; returns it.

        Group granularity is what makes this cheap (§3.5): sequential
        writes invalidate sequential pages, so a whole group of ``N``
        neighbours shares one filter entry — if the group is already in
        the active filter the invalidation costs nothing, each filter
        covers more pages, and fewer filters are needed.
        """
        active = self._segments[-1]
        group = self.group_of(ppa)
        # Segments also seal by age: a filter represents one time slice,
        # and the adaptive window needs slices fine enough to drop.
        if (
            self._max_age_us is not None
            and active.bloom.count > 0
            and self._clock.now_us - active.created_us >= self._max_age_us
        ):
            active.sealed_us = self._clock.now_us
            active = self._new_segment()
        if group in active.bloom:
            return active
        if active.bloom.is_full:
            active.sealed_us = self._clock.now_us
            active = self._new_segment()
        active.bloom.add(group)
        return active

    # --- Lookup --------------------------------------------------------------

    def find_segment(self, ppa):
        """Newest live segment whose filter contains the page's group.

        Checked in reverse time order as the paper prescribes: a false
        positive then at worst delays expiration, never causes premature
        reclamation.
        """
        group = self.group_of(ppa)
        for segment in reversed(self._segments):
            if segment.dropped:
                continue
            if group in segment.bloom:
                return segment
        return None

    def is_retained(self, ppa):
        return self.find_segment(ppa) is not None

    # --- Window management ----------------------------------------------------

    def live_segments(self):
        return [s for s in self._segments if not s.dropped]

    @property
    def oldest_live(self):
        for segment in self._segments:
            if not segment.dropped:
                return segment
        return None

    def window_start_us(self):
        """Start of the retrievable time window (oldest live BF creation)."""
        oldest = self.oldest_live
        return oldest.created_us if oldest else self._clock.now_us

    def retention_us(self):
        """Current achieved retention duration."""
        return self._clock.now_us - self.window_start_us()

    def drop_oldest(self):
        """Recycle the oldest live segment; returns it (or None).

        The active (newest) segment is never dropped — there must always
        be a segment to record into.
        """
        live = self.live_segments()
        if len(live) <= 1:
            return None
        oldest = live[0]
        oldest.dropped = True
        # Trim fully dropped prefix so scans stay short over long runs.
        while self._segments and self._segments[0].dropped:
            self._segments.pop(0)
        return oldest

    def can_drop_oldest(self, floor_us):
        """Would dropping the oldest segment keep the retention floor?

        After the drop the window starts at the *next* live segment's
        creation time; every page lost with the dropped segment has then
        been retained at least ``now - next.created_us``.
        """
        live = self.live_segments()
        if len(live) <= 1:
            return False
        next_start = live[1].created_us
        return self._clock.now_us - next_start >= floor_us

    def memory_bytes(self):
        return sum(s.bloom.memory_bytes() for s in self._segments if not s.dropped)

    def __len__(self):
        return len(self.live_segments())
