"""Configuration for TimeSSD."""

import enum
from dataclasses import dataclass, field

from repro.common.units import DAY_US, HOUR_US, MS_US
from repro.ftl.ssd import SSDConfig


class ContentMode(enum.Enum):
    """How page content (and thus delta compressibility) is represented.

    ``REAL``: hosts write actual ``bytes``; deltas are XOR-then-LZF over
    real content (file-system benchmarks use this).

    ``MODELED``: hosts write identity tokens; delta sizes are drawn from a
    Gaussian compression-ratio model.  This is the paper's own method for
    the MSR/FIU traces, which carry no data content (§5.2: "we use 0.2 as
    the default compression ratio").
    """

    REAL = "real"
    MODELED = "modeled"


@dataclass
class TimeSSDConfig(SSDConfig):
    """TimeSSD knobs, defaulting to the paper's published choices."""

    # §3.4: guaranteed lower bound on retention duration (3 days).
    retention_floor_us: int = 3 * DAY_US
    # §3.5: invalidation-tracking group size N (16) and BF sizing.
    bloom_group_size: int = 16
    bloom_capacity: int = 4096
    bloom_fp_rate: float = 0.01
    # Segments also seal after this long, keeping the adaptive window's
    # shrink granularity bounded even when grouping dedupes most adds.
    bloom_segment_max_age_us: int = 6 * HOUR_US
    # §3.8 / Equation 1: GC-overhead threshold TH (20% of a page-write
    # cost) estimated over periods of N_fixed user page writes.
    gc_overhead_threshold: float = 0.20
    gc_overhead_period_writes: int = 1024
    # §3.6: idle-time prediction (exponential smoothing, alpha = 0.5;
    # compress in background when predicted idle exceeds 10 ms).
    idle_alpha: float = 0.5
    idle_threshold_us: int = 10 * MS_US
    background_compression: bool = True
    # §3.6: delta compression of retained versions.
    delta_compression: bool = True
    content_mode: ContentMode = ContentMode.MODELED
    # Modeled compressibility: Gaussian ratio, as characterized in the
    # I-CASH study the paper cites (mean 0.05-0.25 across applications).
    modeled_ratio_mean: float = 0.20
    modeled_ratio_sd: float = 0.05
    # Delta page layout: per-page header plus per-delta metadata bytes.
    delta_page_header_bytes: int = 16
    delta_metadata_bytes: int = 24
    # Background compression victim scan: blocks examined per idle window.
    idle_scan_blocks: int = 4
    # §3.10: optional user key; when set, retained versions are stored
    # encrypted and queries require unlocking with the key.
    retention_key: bytes = None
    seed: int = 0x5EED

    def __post_init__(self):
        super().__post_init__()
        # TimeSSD needs more GC headroom than a regular SSD: one reclaim
        # can open several append blocks (striped GC stream plus
        # per-segment delta streams) before it erases the victim.
        self.gc_low_watermark = max(
            self.gc_low_watermark,
            self.geometry.channels + 4,
            self.geometry.total_blocks // 64,
        )
        if self.retention_floor_us < 0:
            raise ValueError("retention_floor_us must be non-negative")
        if not 0 < self.gc_overhead_threshold:
            raise ValueError("gc_overhead_threshold must be positive")
        if not 0 < self.idle_alpha <= 1:
            raise ValueError("idle_alpha must be in (0, 1]")
        if not 0 < self.modeled_ratio_mean < 1:
            raise ValueError("modeled_ratio_mean must be in (0, 1)")
