"""The time-travel reverse index (paper §3.7).

Each LPA's version history is split into two chains:

* the **data-page chain** — uncompressed versions still sitting on flash
  data pages, linked newest-to-oldest by the back-pointers in each page's
  OOB metadata; its head is the AMT entry;
* the **delta-page chain** — older versions compressed into deltas,
  linked by delta back-pointers; its head lives in the index mapping
  table (IMT).

Invariant (established by GC, checked by tests): every delta-chain
version is older than every surviving data-page version of the same LPA.

The page reclamation table (PRT) marks invalid pages whose content has
been compressed (or has expired) so GC can discard them without reading.
"""

from dataclasses import dataclass

from repro.common.atomic import atomic_section
from repro.common.units import BlockId, Lba, Ppa, TimeUs
from repro.flash.page import NULL_PPA, PageState


@dataclass(frozen=True)
class Version:
    """One retrievable version of a logical page."""

    lpa: int
    timestamp_us: int
    data: object
    source: str  # "current", "data-page", "delta", "delta-ram"

    def __repr__(self):
        return "Version(lpa=%d, ts=%d, %s)" % (self.lpa, self.timestamp_us, self.source)


@dataclass
class ChainWalk:
    """Result of walking a version chain: entries plus the finish time."""

    entries: list
    complete_us: int


class TimeTravelIndex:
    """IMT + PRT + chain-walking over a flash device."""

    def __init__(self, device, reader=None):
        self._device = device
        self._geo = device.geometry
        #: Page-read entry point for chain walks.  The owning SSD passes
        #: its read-retry ladder so time-travel queries get the same
        #: media defenses as host reads; standalone/recovery use of the
        #: index reads the device directly.
        self._read = reader if reader is not None else device.read_page
        self._imt = {}
        self._reclaimable = set()

    # --- PRT ----------------------------------------------------------------

    def mark_reclaimable(self, ppa: Ppa):
        """Mark an invalid page reclaimable; True if newly marked."""
        if ppa in self._reclaimable:
            return False
        self._reclaimable.add(ppa)
        return True

    def is_reclaimable(self, ppa: Ppa):
        return ppa in self._reclaimable

    @atomic_section(
        "the PRT bits of an erased block vanish as one unit: a GC pass "
        "interleaved over a half-cleared block would treat its surviving "
        "reclaimable bits as live compression state"
    )
    def clear_block(self, pba: BlockId):
        """Forget PRT bits of an erased block."""
        # Resolve the page range (which validates pba) before touching
        # the PRT, so a bad block id leaves the set untouched.
        ppas = list(self._geo.pages_of_block(pba))
        for ppa in ppas:
            self._reclaimable.discard(ppa)

    def reclaimable_count(self):
        return len(self._reclaimable)

    # --- IMT ----------------------------------------------------------------

    def delta_head(self, lpa: Lba):
        return self._imt.get(lpa)

    def set_delta_head(self, lpa: Lba, record):
        if record is None:
            self._imt.pop(lpa, None)
        else:
            self._imt[lpa] = record

    def imt_size(self):
        return len(self._imt)

    # --- Data-page chain ------------------------------------------------------

    def _page_holds_version(self, ppa, lpa, newer_ts):
        """Verify a chain hop: the page must still hold ``lpa`` data older
        than ``newer_ts`` (paper: "correct LPA and a decreasing timestamp").
        """
        if ppa in self._reclaimable:
            # Compressed or expired: the version lives on (if at all) in
            # the delta chain, and the physical page may be a stale copy
            # at a reused address — not a trustworthy chain hop.
            return False
        page = self._device.peek_page(ppa)
        if page.state is not PageState.PROGRAMMED or page.oob is None:
            return False
        if not page.oob.intact:
            return False  # torn/burned residue: never part of a chain
        return page.oob.lpa == lpa and page.oob.timestamp_us < newer_ts

    def walk_data_chain(self, lpa: Lba, head_ppa: Ppa, now_us: TimeUs, include_head=True, until_ts=None):
        """Follow back-pointers from ``head_ppa``; returns a ChainWalk.

        Entries are ``(ppa, oob, data)`` newest first.  Each hop costs a
        flash page read, sequenced on the page's channel (dependent reads
        cannot overlap).  The walk stops at a NULL pointer, an erased or
        recycled page, or a timestamp-order violation — exactly the
        "chain broken by GC" condition of the paper's Figure 5.

        ``until_ts`` implements the paper's AddrQuery early stop:
        "retrieval stops when a version's writing time reaches the target
        time" — the first entry written at or before ``until_ts`` ends
        the walk.
        """
        entries = []
        t = now_us
        if head_ppa == NULL_PPA:
            return ChainWalk(entries, t)
        if self._device.peek_page(head_ppa).state is not PageState.PROGRAMMED:
            return ChainWalk(entries, t)
        result = self._read(head_ppa, t)
        t = result.complete_us
        if result.oob.lpa != lpa or not result.oob.intact:
            return ChainWalk(entries, t)
        if include_head:
            entries.append((head_ppa, result.oob, result.data))
        if until_ts is not None and result.oob.timestamp_us <= until_ts:
            return ChainWalk(entries, t)
        prev_ts = result.oob.timestamp_us
        ppa = result.oob.back_pointer
        while ppa != NULL_PPA and self._page_holds_version(ppa, lpa, prev_ts):
            result = self._read(ppa, t)
            t = result.complete_us
            entries.append((ppa, result.oob, result.data))
            prev_ts = result.oob.timestamp_us
            if until_ts is not None and prev_ts <= until_ts:
                break
            ppa = result.oob.back_pointer
        return ChainWalk(entries, t)

    # --- Delta chain ------------------------------------------------------------

    def walk_delta_chain(self, lpa: Lba, now_us: TimeUs, until_ts=None):
        """Follow the delta chain from the IMT head; returns a ChainWalk.

        Entries are live :class:`DeltaRecord` objects, newest first.
        Hopping into a flushed delta page costs one flash read (cached
        within the walk — several deltas of one LPA often share a page);
        RAM-buffered records cost nothing.  ``until_ts`` stops the walk
        at the first record written at or before it.
        """
        entries = []
        t = now_us
        pages_read = set()
        record = self._imt.get(lpa)
        while record is not None:
            if record.dropped:
                break
            if record.flash_ppa is not None and record.flash_ppa not in pages_read:
                result = self._read(record.flash_ppa, t)
                t = result.complete_us
                pages_read.add(record.flash_ppa)
            entries.append(record)
            if until_ts is not None and record.version_ts <= until_ts:
                break
            record = record.back
        return ChainWalk(entries, t)

    def prune_dropped_head(self, lpa: Lba):
        """Drop IMT heads whose records died with their bloom segment."""
        record = self._imt.get(lpa)
        while record is not None and record.dropped:
            record = record.back
        self.set_delta_head(lpa, record)
        return record
