"""TimeSSD: the time-traveling SSD (the paper's core contribution).

TimeSSD retains invalidated flash pages instead of reclaiming them, for a
workload-adaptive retention window with a guaranteed lower bound.  The
pieces map one-to-one onto the paper's §3:

* :mod:`repro.timessd.bloom` — time-segmented bloom filters that record
  when pages were invalidated (§3.5);
* :mod:`repro.timessd.retention` — the retention duration manager and the
  Equation-1 GC-overhead estimator (§3.4, §3.8);
* :mod:`repro.timessd.lzf` / :mod:`repro.timessd.delta` — LZF and delta
  compression of obsolete versions (§3.6);
* :mod:`repro.timessd.index` — the reverse time-travel index: data-page
  chains via OOB back-pointers plus delta-page chains via the IMT (§3.7);
* :mod:`repro.timessd.gc` — Algorithm 1 garbage collection (§3.8);
* :mod:`repro.timessd.idle` — idle-time prediction and background delta
  compression (§3.6);
* :mod:`repro.timessd.ssd` — the device itself.
"""

from repro.timessd.bloom import BloomFilter, TimeSegmentedBlooms
from repro.timessd.config import ContentMode, TimeSSDConfig
from repro.timessd.delta import DeltaCodec, ModeledDeltaCodec, RealDeltaCodec
from repro.timessd.ssd import TimeSSD

__all__ = [
    "TimeSSD",
    "TimeSSDConfig",
    "ContentMode",
    "BloomFilter",
    "TimeSegmentedBlooms",
    "DeltaCodec",
    "RealDeltaCodec",
    "ModeledDeltaCodec",
]
