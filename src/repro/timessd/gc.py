"""TimeSSD garbage collection — the paper's Algorithm 1 (§3.8).

Differences from regular GC:

* expired delta blocks are reclaimed first (erase only, no migration) —
  in this model that happens eagerly when a bloom segment is dropped;
* invalid pages are *not* reclaimed blindly: a page marked reclaimable in
  the PRT (already compressed, or known expired) is discarded; a page
  missing every bloom filter is expired and discarded; anything else is
  retained — it is delta-compressed together with the not-yet-compressed
  older versions reachable through its back-pointer chain, the deltas are
  appended to the head of the LPA's delta chain, and the source pages are
  marked reclaimable.

The same reclamation routine serves wear-leveling relocations, as §3.8
prescribes.
"""

from dataclasses import dataclass

from repro.common.atomic import atomic_section
from repro.common.errors import EraseFailureError, UncorrectableReadError
from repro.flash.page import NULL_PPA, PageState
from repro.ftl.block_manager import BlockKind, StreamId
from repro.timessd.delta import NO_REF_TS, DeltaRecord


@dataclass
class ReclaimOutcome:
    """What one block reclamation did (for tests and ablation benches)."""

    victim_pba: int
    migrated_valid: int = 0
    discarded_reclaimable: int = 0
    discarded_expired: int = 0
    #: Torn/burned pages (mismatched OOB seq tag): no committed version.
    discarded_garbage: int = 0
    compressed: int = 0
    complete_us: int = 0


class TimeSSDGarbageCollector:
    """Block reclamation with version retention."""

    def __init__(self, ssd):
        self._ssd = ssd
        self.blocks_reclaimed = 0
        self.versions_compressed = 0

    # --- Block reclamation (Algorithm 1, lines 5-26) --------------------------

    @atomic_section(
        "Algorithm 1 reclaims a block as one step: migrate/compress/"
        "discard every page, then erase and release — a foreground write "
        "interleaved mid-reclaim could allocate into the half-emptied "
        "victim or read a version whose delta head is being relinked",
        # Each per-page iteration commits a self-consistent unit (a
        # migrated page is remapped before the next page is touched; a
        # compressed chain is linked before its sources are marked
        # reclaimable), so a mid-loop failure loses no version.
        restores_state=True,
    )
    def reclaim_block(self, victim_pba, now_us):
        """Reclaim one data block; returns a :class:`ReclaimOutcome`."""
        ssd = self._ssd
        geo = ssd.device.geometry
        bm = ssd.block_manager
        index = ssd.index
        outcome = ReclaimOutcome(victim_pba)
        t = now_us
        for ppa in geo.pages_of_block(victim_pba):
            page = ssd.device.peek_page(ppa)
            if page.state is not PageState.PROGRAMMED:
                continue
            if page.oob is None or not page.oob.intact:
                # Torn or burned program: nothing committed lives here,
                # so there is no version to retain or compress.
                outcome.discarded_garbage += 1
                continue
            if bm.is_valid(ppa):
                try:
                    t = self._migrate_valid_page(ppa, t)
                    outcome.migrated_valid += 1
                except UncorrectableReadError:
                    ssd.note_lost_valid_page(ppa)
            elif index.is_reclaimable(ppa):
                outcome.discarded_reclaimable += 1
            elif ssd.blooms.find_segment(ppa) is None:
                # Expired: invalidated before the retention window opened.
                outcome.discarded_expired += 1
                ssd._m_expired.inc()
                ssd.note_page_no_longer_retained(ppa)
            else:
                try:
                    t, compressed = self.compress_version_chain(ppa, t)
                    outcome.compressed += compressed
                except UncorrectableReadError:
                    # Some page of the chain is gone despite the full
                    # ladder.  The block must still be reclaimed, so
                    # the version is lost: account it and let the erase
                    # proceed.
                    index.mark_reclaimable(ppa)
                    ssd.note_page_no_longer_retained(ppa)
                    ssd._m_compress_lost.inc()
        erased = True
        try:
            t = ssd.device.erase_block(victim_pba, t)
        except EraseFailureError:
            # Grown bad block: release_block retires it below.
            ssd.erase_failures += 1
            erased = False
        index.clear_block(victim_pba)
        ssd.forget_block_retention(victim_pba)
        bm.release_block(victim_pba)
        if erased:
            ssd.wear_leveler.on_erase(t)
        self.blocks_reclaimed += 1
        outcome.complete_us = t
        ssd._m_gc_migrated.inc(outcome.migrated_valid)
        tr = ssd.obs.trace
        if tr.enabled:
            tr.emit(
                "gc",
                "reclaim",
                t,
                pba=victim_pba,
                migrated=outcome.migrated_valid,
                expired=outcome.discarded_expired,
                compressed=outcome.compressed,
            )
        return outcome

    def _migrate_valid_page(self, ppa, now_us):
        ssd = self._ssd
        result = ssd.read_page_with_retry(ppa, now_us)
        new_ppa, t = ssd.program_with_retry(
            lambda: ssd.block_manager.allocate_page(StreamId.GC),
            result.data,
            result.oob,
            result.complete_us,
        )
        ssd.block_manager.mark_valid(new_ppa)
        ssd.block_manager.invalidate_page(ppa)
        ssd.remap_migrated_page(result.oob, ppa, new_ppa)
        return t

    # --- Retained-version compression (Algorithm 1, lines 19-25) --------------

    @atomic_section(
        "chain walk + delta append + newest-first relink + reclaimable "
        "marking are one compression step: a request served mid-step "
        "could retrieve a version whose delta record exists but is not "
        "yet linked into the chain",
        # Sources are marked reclaimable only after their deltas are
        # linked and buffered, so a mid-step failure leaves every
        # version still retrievable from its original flash page.
        restores_state=True,
    )
    def compress_version_chain(self, ppa, now_us):
        """Compress the retained page at ``ppa`` plus its older chain.

        Returns ``(complete_us, versions_compressed)``.  Also used by the
        background (idle-time) compressor, which is why it never erases
        anything — it only converts data-page versions into deltas and
        marks the sources reclaimable in the PRT.
        """
        ssd = self._ssd
        device = ssd.device
        index = ssd.index
        t = now_us

        head = ssd.read_page_with_retry(ppa, t)
        t = head.complete_us
        lpa = head.oob.lpa

        chain = [(ppa, head.oob, head.data)]
        t = self._collect_older_versions(lpa, head.oob, chain, t)

        compressing = ssd.config.delta_compression
        if compressing:
            ref_data, ref_ts, t = self._read_reference(lpa, t)
        else:
            ref_data, ref_ts = None, NO_REF_TS

        previous_head = index.prune_dropped_head(lpa)
        records = []
        for src_ppa, oob, data in chain:
            if oob.timestamp_us == ref_ts:
                # A refresh-migration duplicate of the reference head:
                # the same version, already retrievable as the current
                # data page.  A delta record for it would reference
                # itself (version_ts == ref_ts) and become unresolvable
                # once the data pages are reclaimed — drop the page,
                # keep no record.
                continue
            if compressing:
                payload, size = ssd.deltas.codec.compress(data, ref_data)
                device.counters.delta_compressions += 1
                ssd._m_delta_compressions.inc()
                t = device.timelines.schedule(
                    device.geometry.channel_of_page(src_ppa),
                    t,
                    device.timing.delta_compress_us,
                )
            else:
                # Ablation mode: retained versions move uncompressed.
                payload, size = data, device.geometry.page_size
            payload = ssd.seal_retained_payload(payload, lpa, oob.timestamp_us)
            segment = ssd.blooms.find_segment(src_ppa)
            if segment is None:
                # BF false negative cannot happen; this is the rare case of
                # a chain page racing expiration mid-walk.  Retain it with
                # the newest segment so no version silently disappears.
                segment = ssd.blooms.live_segments()[-1]
            records.append(
                DeltaRecord(
                    lpa=lpa,
                    version_ts=oob.timestamp_us,
                    ref_ts=ref_ts,
                    payload=payload,
                    size_bytes=size,
                    segment_id=segment.segment_id,
                    compressed=compressing,
                )
            )
        # Newest-first linking, merged with the pre-existing delta chain.
        # A plain prepend would assume every new record is newer than the
        # old head, but orphaned chain fragments (back-pointers broken by
        # GC page reuse) can be compressed after younger versions were —
        # the merge keeps the chain strictly newest-first regardless.
        previous = []
        tail = previous_head
        while tail is not None and not tail.dropped:
            previous.append(tail)
            tail = tail.back
        merged = []
        i = j = 0
        while i < len(records) and j < len(previous):
            if records[i].version_ts > previous[j].version_ts:
                merged.append(records[i])
                i += 1
            else:
                merged.append(previous[j])
                j += 1
        merged.extend(records[i:])
        merged.extend(previous[j:])
        if merged:  # empty when the whole chain was head duplicates
            for newer, older in zip(merged, merged[1:]):
                newer.back = older
            merged[-1].back = tail
            index.set_delta_head(lpa, merged[0])
        for record in records:
            t = ssd.deltas.add_record(record, t)
        for src_ppa, _oob, _data in chain:
            if index.mark_reclaimable(src_ppa):
                ssd.note_page_no_longer_retained(src_ppa)
        self.versions_compressed += len(records)
        ssd._h_compressed_chain.record(len(records))
        return t, len(records)

    def _collect_older_versions(self, lpa, head_oob, chain, now_us):
        """Walk the back-pointer chain below the page being compressed.

        Unexpired, not-yet-compressed versions join ``chain``; expired
        ones are marked reclaimable and end the walk (invalidation times
        decrease down the chain, so everything older is expired too).
        """
        ssd = self._ssd
        index = ssd.index
        t = now_us
        prev_ts = head_oob.timestamp_us
        back = head_oob.back_pointer
        while back != NULL_PPA and index._page_holds_version(back, lpa, prev_ts):
            if index.is_reclaimable(back):
                break  # older suffix already lives in the delta chain
            result = ssd.read_page_with_retry(back, t)
            t = result.complete_us
            if ssd.blooms.find_segment(back) is None:
                if index.mark_reclaimable(back):
                    ssd._m_expired.inc()
                    ssd.note_page_no_longer_retained(back)
                break
            chain.append((back, result.oob, result.data))
            prev_ts = result.oob.timestamp_us
            back = result.oob.back_pointer
        return t

    def _read_reference(self, lpa, now_us):
        """Read the latest (valid) version as the compression reference."""
        ssd = self._ssd
        head_ppa = ssd.mapping.lookup(lpa)
        if head_ppa == NULL_PPA:
            return None, NO_REF_TS, now_us
        result = ssd.read_page_with_retry(head_ppa, now_us)
        return result.data, result.oob.timestamp_us, result.complete_us
