"""TimeSSD: the time-traveling solid-state drive (paper §3).

Externally a TimeSSD behaves exactly like a regular SSD — same
read/write/TRIM interface, same mapping — but every overwritten or
deleted page version is retained for a workload-adaptive window of time
(never below the configured floor) and remains retrievable through the
time-travel index.  :mod:`repro.timekits` provides the query surface.
"""

import random
from collections import defaultdict

from repro.common.atomic import atomic_section
from repro.common.errors import (
    DeviceFullError,
    EraseFailureError,
    QueryError,
    ReproError,
    RetentionViolationError,
    UncorrectableReadError,
)
from repro.common.units import Lba, Ppa, TimeUs, format_duration
from repro.flash.page import NULL_PPA, PageState
from repro.ftl.block_manager import BlockKind
from repro.ftl.ssd import BaseSSD
from repro.timessd.bloom import TimeSegmentedBlooms
from repro.timessd.config import ContentMode, TimeSSDConfig
from repro.timessd.delta import DeltaManager, ModeledDeltaCodec, RealDeltaCodec
from repro.timessd.gc import TimeSSDGarbageCollector
from repro.common.idle import IdlePredictor
from repro.timessd.index import TimeTravelIndex, Version
from repro.timessd.retention import GCOverheadEstimator, RetentionManager
from repro.timessd.secure import RetentionCipher, RetentionLock


class TimeSSD(BaseSSD):
    """An SSD that retains past storage states in firmware."""

    def __init__(self, config=None, clock=None):
        config = config or TimeSSDConfig()
        if not isinstance(config, TimeSSDConfig):
            raise TypeError("TimeSSD requires a TimeSSDConfig")
        super().__init__(config, clock)
        self._rng = random.Random(config.seed)
        self.blooms = TimeSegmentedBlooms(
            self.clock,
            capacity_per_filter=config.bloom_capacity,
            fp_rate=config.bloom_fp_rate,
            group_size=config.bloom_group_size,
            seed=config.seed,
            max_segment_age_us=config.bloom_segment_max_age_us,
        )
        self.index = TimeTravelIndex(self.device, reader=self.read_page_with_retry)
        page_size = config.geometry.page_size
        if config.content_mode is ContentMode.REAL:
            codec = RealDeltaCodec(page_size)
        else:
            codec = ModeledDeltaCodec(
                page_size,
                config.modeled_ratio_mean,
                config.modeled_ratio_sd,
                self._rng,
            )
        self.deltas = DeltaManager(
            self,
            codec,
            page_size,
            config.delta_page_header_bytes,
            config.delta_metadata_bytes,
        )
        self.estimator = GCOverheadEstimator(
            config.timing,
            config.gc_overhead_threshold,
            config.gc_overhead_period_writes,
        )
        self.retention = RetentionManager(self.blooms, config.retention_floor_us)
        self.collector = TimeSSDGarbageCollector(self)
        # Replace the base predictor with one on the paper's §3.6 knobs;
        # keep the public alias the tooling and tests use.
        self._idle = IdlePredictor(config.idle_alpha, config.idle_threshold_us)
        self.idle_predictor = self._idle
        self._retained_per_block = defaultdict(int)
        self._trim_tombstones = {}
        if config.retention_key is not None:
            self.retention_lock = RetentionLock(RetentionCipher(config.retention_key))
        else:
            self.retention_lock = None
        self.retained_pages = 0
        self.background_compressed = 0
        self.background_windows = 0
        metrics = self.obs.metrics
        self._m_shrinks = metrics.counter("timessd.retention.shrinks")
        self._m_expired = metrics.counter("timessd.expire.pages")
        self._m_compress_lost = metrics.counter("timessd.compress.lost_versions")
        self._m_delta_compressions = metrics.counter("timessd.delta.compressions")
        self._m_delta_flushed = metrics.counter("timessd.delta.flushed_pages")
        self._h_query_chain = metrics.histogram("timessd.chain.length")
        self._h_compressed_chain = metrics.histogram("timessd.gc.compressed_chain")

    # --- Retention bookkeeping -------------------------------------------------

    @atomic_section(
        "the retention census (blooms, per-block retained counts, TRIM "
        "tombstones) must move with the validity flip it describes: a "
        "suspension in between would let GC see a stale page the census "
        "does not yet count as retained",
        # The PVT flip, bloom insert and census increment are each
        # independently consistent sub-updates; recovery rebuilds the
        # census from flash, so a geometry/bloom failure mid-way (which
        # means corrupted configuration, not a data race) loses nothing.
        restores_state=True,
    )
    def _on_invalidate(self, lpa, old_ppa, now_us):
        super()._on_invalidate(lpa, old_ppa, now_us)
        self.blooms.record_invalidation(old_ppa)
        pba = self.device.geometry.block_of_page(old_ppa)
        self._retained_per_block[pba] += 1
        self.retained_pages += 1
        if not self.mapping.is_mapped(lpa):
            # TRIM: keep a tombstone so the next write of this LPA links
            # its back-pointer to the deleted version — deleted files
            # stay on the reverse chain (real firmware keeps the stale
            # mapping entry until GC the same way).
            self._trim_tombstones[lpa] = old_ppa

    def _back_pointer_for(self, lpa, old_ppa):
        if old_ppa != NULL_PPA:
            return old_ppa
        return self._trim_tombstones.pop(lpa, old_ppa)

    def _program_user_page(self, lpa, data, now_us):
        # Fail fast: in REAL content mode every write must carry one full
        # page of bytes, or delta compression would blow up much later,
        # deep inside a GC pass.
        if self.config.content_mode is ContentMode.REAL and not isinstance(
            data, (bytes, bytearray)
        ):
            raise ReproError(
                "REAL content mode requires bytes page data for LPA %d "
                "(got %s)" % (lpa, type(data).__name__)
            )
        return super()._program_user_page(lpa, data, now_us)

    def note_page_no_longer_retained(self, ppa: Ppa):
        """A retained page expired or was compressed into the delta chain."""
        pba = self.device.geometry.block_of_page(ppa)
        if self._retained_per_block[pba] > 0:
            self._retained_per_block[pba] -= 1
            self.retained_pages -= 1

    def forget_block_retention(self, pba):
        """Erasing a block forgets its retained-page census."""
        count = self._retained_per_block.pop(pba, 0)
        self.retained_pages -= count

    # --- Write path ---------------------------------------------------------

    def _after_host_request(self, complete_us, wrote):
        super()._after_host_request(complete_us, wrote)
        if wrote and self.estimator.note_user_write():
            # Shrink proportionally to how badly GC overshot the Equation-1
            # threshold (at least one segment, at most four per period).
            drops = max(1, min(4, int(self.estimator.overshoot_ratio())))
            for _ in range(drops):
                if self._shrink_retention(complete_us) is None:
                    break

    def _use_idle_window(self, start_us, deadline_us):
        """Idle housekeeping: background GC, delta compression, scrub."""
        cursor = start_us
        if self.config.background_gc:
            cursor = self._background_collect(start_us, deadline_us)
        if self.config.background_compression and self.config.delta_compression:
            cursor = self._background_compress(cursor, deadline_us)
        if self.scrubber is not None:
            self.scrubber.run(cursor, deadline_us)

    # --- Garbage collection ----------------------------------------------------

    def _collect_garbage(self, now_us):
        victim = self.block_manager.select_victim(
            self.config.gc_policy, now_us, BlockKind.DATA
        )
        if victim is None:
            if self._shrink_retention(now_us) is None:
                self._raise_retention_violation()
            return
        before = self.device.counters.snapshot()
        self.collector.reclaim_block(victim, now_us)
        after = self.device.counters
        # Equation 1 counts every GC operation — background rounds never
        # delay a request, but they still consume lifetime (the paper's
        # estimator is a proxy for total GC burden, and write
        # amplification is what Figure 7 holds TimeSSD accountable for).
        self.estimator.note_gc_ops(
            reads=after.page_reads - before.page_reads,
            writes=after.page_programs - before.page_programs,
            erases=after.block_erases - before.block_erases,
            deltas=after.delta_compressions - before.delta_compressions,
        )

    def _ensure_free_space(self, now_us):
        stalled_rounds = 0
        guard = 0
        bm = self.block_manager
        while bm.free_block_count <= self.config.gc_low_watermark:
            pages_before = self.free_page_estimate()
            self._collect_garbage(now_us)
            self.gc_runs += 1
            # Progress is measured in free *pages*: a round that compresses
            # retained data gains pages even when opening fresh GC/delta
            # append blocks momentarily dips the free-block count.
            if self.free_page_estimate() <= pages_before:
                stalled_rounds += 1
                # GC is churning without freeing space: the device is
                # filling with valid + retained data.  Shrink the window
                # (floor permitting) so expired pages open up.  The alarm
                # (stop serving I/O, paper §3.4) fires only when the pool
                # is truly exhausted and the floor forbids recycling.
                if stalled_rounds >= 3:
                    if (
                        self._shrink_retention(now_us) is None
                        and bm.free_block_count <= 2
                    ):
                        self._raise_retention_violation()
                    stalled_rounds = 0
            else:
                stalled_rounds = 0
            guard += 1
            if guard > 4 * self.device.geometry.total_blocks:
                raise DeviceFullError("TimeSSD GC cannot make progress")

    def relocate_block(self, pba, now_us):
        """Wear-leveling relocation uses the retention-aware reclaimer."""
        self.collector.reclaim_block(pba, now_us)

    def _raise_retention_violation(self):
        oldest = self.blooms.window_start_us()
        raise RetentionViolationError(
            "free space exhausted but the retention floor (%s) forbids "
            "recycling history (oldest retained state: %s old); the device "
            "stops serving writes"
            % (
                format_duration(self.config.retention_floor_us),
                format_duration(self.clock.now_us - oldest),
            ),
            oldest_retained_us=oldest,
            floor_us=self.config.retention_floor_us,
        )

    # --- Retention window ------------------------------------------------------

    @atomic_section(
        "one expiry step: the bloom window advances and the expired "
        "segment's delta blocks are erased together — a suspension in "
        "between would leave queryable timestamps pointing at a segment "
        "the window no longer covers",
        # Grown-bad-block erase failures are absorbed inside
        # erase_delta_block (the block is retired); every earlier erase
        # is durable media truth, not state to roll back.
        restores_state=True,
    )
    def _shrink_retention(self, now_us):
        segment = self.retention.shrink()
        if segment is not None:
            self.deltas.drop_segment(segment.segment_id, now_us)
            self._m_shrinks.inc()
            tr = self.obs.trace
            if tr.enabled:
                tr.emit(
                    "expire",
                    "retention-shrink",
                    now_us,
                    segment_id=segment.segment_id,
                    window_us=self.blooms.retention_us(),
                )
        return segment

    @atomic_section(
        "erase + index clear + retention-census forget + pool release "
        "commit as one reclaim step: between them the block is erased "
        "flash that the index still claims holds versions",
        # The bad-block path retires the block instead of erasing it;
        # either way the index/census/pool teardown below runs to
        # completion, leaving per-block-consistent state.
        restores_state=True,
    )
    def erase_delta_block(self, pba, now_us: TimeUs):
        """Erase an expired delta block (no migration, Algorithm 1 line 3)."""
        try:
            self.device.erase_block(pba, now_us)
        except EraseFailureError:
            # Grown bad block: release_block retires it below.
            self.erase_failures += 1
            self.index.clear_block(pba)
            self.forget_block_retention(pba)
            self.block_manager.release_block(pba)
            return
        self.index.clear_block(pba)
        self.forget_block_retention(pba)
        self.block_manager.release_block(pba)
        self.wear_leveler.on_erase(now_us)

    def retention_window_us(self):
        """Current achieved retention duration (Figure 8 metric)."""
        return self.blooms.retention_us()

    # --- Volatile-state lifecycle (power loss) ---------------------------------

    def reset_volatile(self):
        """Drop every RAM-resident structure, as an abrupt power cut does.

        Extends :meth:`BaseSSD.reset_volatile` with TimeSSD's volatile
        state: the time-travel index, bloom-filter chain (segment ids
        stay monotonic), RAM delta buffers, retained-page census and TRIM
        tombstones.  A configured retention lock re-seals — after a
        reboot, history retrieval requires the key again.  Follow up with
        :func:`repro.timessd.recovery.rebuild_from_flash`.
        """
        super().reset_volatile()
        self.index = TimeTravelIndex(self.device, reader=self.read_page_with_retry)
        self.blooms.reset()
        self.deltas.reset()
        self.estimator = GCOverheadEstimator(
            self.config.timing,
            self.config.gc_overhead_threshold,
            self.config.gc_overhead_period_writes,
        )
        self._idle = IdlePredictor(
            self.config.idle_alpha, self.config.idle_threshold_us
        )
        self.idle_predictor = self._idle
        self._retained_per_block.clear()
        self._trim_tombstones.clear()
        self.retained_pages = 0
        self.lock_retention()

    # --- Encrypted retention (§3.10) ---------------------------------------------

    def unlock_retention(self, key):
        """Authorize retrieval of encrypted history with the user key."""
        if self.retention_lock is None:
            raise QueryError("this device has no retention key configured")
        self.retention_lock.unlock(key)

    def lock_retention(self):
        """Re-seal encrypted history (e.g. before handing the drive over)."""
        if self.retention_lock is not None:
            self.retention_lock.lock()

    def seal_retained_payload(self, payload, lpa, version_ts):
        """Encrypt a payload entering the retained store (GC calls this)."""
        if self.retention_lock is None:
            return payload
        return self.retention_lock.cipher.encrypt_payload(payload, lpa, version_ts)

    # --- Background (idle) compression -------------------------------------------

    def background_compress_step(self, now_us, budget_us):
        """One scheduler-driven delta-compression window of ``budget_us``
        (the async core's background-compression task body).

        Returns the simulated time consumed — 0 when compression is
        disabled or no retained page needed work, so the task can sleep
        instead of spinning.
        """
        if not (self.config.background_compression and self.config.delta_compression):
            return 0
        end = self._background_compress(now_us, now_us + budget_us)
        return end - now_us

    def expire_retention_step(self, now_us, target_window_us):
        """Shrink the retention window one segment toward a target (the
        async core's retention-expiry task body).

        Drops the oldest bloom segment only while the achieved window
        exceeds ``target_window_us`` and the floor guarantee permits.
        Returns True when a segment was dropped (the task calls again
        immediately), False when the window is at or under target or the
        floor refused the shrink.
        """
        if self.retention_window_us() <= target_window_us:
            return False
        return self._shrink_retention(now_us) is not None

    def _background_compress(self, start_us, deadline_us):
        """Compress retained pages during a predicted-idle window (§3.6).

        Work is scheduled inside ``[start_us, deadline_us)`` and suspends
        before any step that would overrun the arrival of the request that
        ended the window, so foreground I/O never waits on it.
        """
        self.background_windows += 1
        timing = self.device.timing
        # Conservative per-page cost bound used to decide whether the next
        # compression still fits in the window.
        step_bound = 3 * timing.read_us + timing.delta_compress_us + timing.program_us
        t = start_us
        for pba in self._background_victims():
            for ppa in self.device.geometry.pages_of_block(pba):
                if t + step_bound > deadline_us:
                    return t
                page = self.device.peek_page(ppa)
                if page.state is not PageState.PROGRAMMED:
                    continue
                if page.oob is None or not page.oob.intact:
                    # Torn or burned residue of a crash-interrupted
                    # program: no committed version lives here, and the
                    # conservative recovery bloom answers "retained" for
                    # it — compressing it would forge a version from a
                    # timestamp that never committed.
                    continue
                if self.block_manager.is_valid(ppa) or self.index.is_reclaimable(ppa):
                    continue
                if self.blooms.find_segment(ppa) is None:
                    if self.index.mark_reclaimable(ppa):
                        self._m_expired.inc()
                        self.note_page_no_longer_retained(ppa)
                    continue
                try:
                    t, compressed = self.collector.compress_version_chain(
                        ppa, t
                    )
                except UncorrectableReadError:
                    # A chain page is gone despite the full ladder: the
                    # version cannot be compressed, and retrying every
                    # idle window is pointless.  Drop it and account the
                    # loss, exactly as GC's reclaim would.
                    self.index.mark_reclaimable(ppa)
                    self.note_page_no_longer_retained(ppa)
                    self._m_compress_lost.inc()
                    continue
                self.background_compressed += compressed
        return t

    @atomic_section(
        "expiry marking or chain compression of a retained page must "
        "commit as one step with the census it updates — the same unit "
        "GC's per-page dispatch commits in reclaim_block",
        restores_state=True,  # compress_version_chain links deltas
        # before marking sources reclaimable; a mid-step failure leaves
        # every version retrievable from its original flash page
    )
    def _refresh_retained_page(self, ppa, now_us):
        """Scrub refresh of an invalid-but-retained page.

        A retained old version cannot simply be copied: its back-pointer
        chain would still reference the aging flash page.  Instead it is
        compressed into the LPA's delta chain — the same path GC uses —
        which preserves the version timestamp and chain linkage while
        moving the payload onto freshly-programmed delta pages.
        Retention-expired pages are not worth rescuing: they are marked
        reclaimable so GC discards them without another read.
        """
        if self.index.is_reclaimable(ppa):
            return now_us, False  # already lives in the delta chain
        if self.blooms.find_segment(ppa) is None:
            if self.index.mark_reclaimable(ppa):
                self._m_expired.inc()
                self.note_page_no_longer_retained(ppa)
            return now_us, False
        t, compressed = self.collector.compress_version_chain(ppa, now_us)
        return t, compressed > 0

    def _background_victims(self, limit=None):
        """Sealed data blocks richest in retained, uncompressed pages."""
        limit = limit or self.config.idle_scan_blocks
        candidates = [
            (count, pba)
            for pba, count in self._retained_per_block.items()
            if count > 0 and self.block_manager.kind(pba) is BlockKind.DATA
        ]
        active = self.block_manager.active_blocks()
        candidates = [(c, pba) for c, pba in candidates if pba not in active]
        candidates.sort(reverse=True)
        return [pba for _count, pba in candidates[:limit]]

    # --- Version retrieval (the substrate TimeKits queries ride on) -------------

    def version_chain(self, lpa: Lba, start_us: TimeUs = None, until_ts=None):
        """All retrievable versions of ``lpa``, newest first.

        Returns ``(versions, complete_us)`` where ``versions`` includes
        the current (valid) version first, then retained older versions
        from the data-page chain and the delta chain, deduplicated by
        write timestamp.  Costs are charged like real firmware: dependent
        page reads sequenced per channel plus decompression time.

        ``until_ts`` enables the paper's AddrQuery early stop: the walk
        ends at the first version written at or before ``until_ts``, and
        the delta chain is only consulted when the data-page chain did
        not reach that far back.
        """
        if self.retention_lock is not None and not self.retention_lock.unlocked:
            # §3.10: with a retention key configured, history retrieval
            # is firmware-gated — current data stays readable via read(),
            # but no past version leaves the device until unlock.
            raise QueryError(
                "retained history is locked; call unlock_retention(key)"
            )
        t = self.clock.now_us if start_us is None else start_us
        head_ppa = self.mapping.lookup(lpa)
        has_current = head_ppa != NULL_PPA
        if not has_current:
            # TRIMmed and never rewritten: the deleted version chain is
            # still reachable through the tombstone.
            head_ppa = self._trim_tombstones.get(lpa, NULL_PPA)
        versions = []
        seen_ts = set()
        by_ts = {}

        walk = self.index.walk_data_chain(lpa, head_ppa, t, until_ts=until_ts)
        t = walk.complete_us
        for i, (_ppa, oob, data) in enumerate(walk.entries):
            source = "current" if (i == 0 and has_current) else "data-page"
            versions.append(Version(lpa, oob.timestamp_us, data, source))
            seen_ts.add(oob.timestamp_us)
            by_ts[oob.timestamp_us] = data

        if (
            until_ts is not None
            and versions
            and versions[-1].timestamp_us <= until_ts
        ):
            # The data-page chain already reached the target time.
            return versions, t

        delta_walk = self.index.walk_delta_chain(lpa, t, until_ts=until_ts)
        t = delta_walk.complete_us
        timing = self.device.timing
        for record in delta_walk.entries:
            if record.version_ts in seen_ts:
                continue  # still on an un-erased data page; prefer that copy
            payload = record.payload
            if self.retention_lock is not None:
                payload = self.retention_lock.open_payload(payload)
            if record.compressed:
                ref_data = by_ts.get(record.ref_ts)
                data = self.deltas.codec.decompress(payload, ref_data)
                self.device.counters.delta_decompressions += 1
                channel = (
                    self.device.geometry.channel_of_page(record.flash_ppa)
                    if record.flash_ppa is not None
                    else 0
                )
                t = self.device.timelines.schedule(
                    channel, t, timing.delta_decompress_us
                )
            else:
                data = payload
            source = "delta" if record.flash_ppa is not None else "delta-ram"
            versions.append(Version(lpa, record.version_ts, data, source))
            seen_ts.add(record.version_ts)
            by_ts[record.version_ts] = data
            if until_ts is not None and record.version_ts <= until_ts:
                break
        self._h_query_chain.record(len(versions))
        return versions, t

    # --- Observability ----------------------------------------------------------

    def _refresh_gauges(self):
        super()._refresh_gauges()
        metrics = self.obs.metrics
        metrics.gauge("timessd.retention.window_us").set(self.retention_window_us())
        metrics.gauge("timessd.retained_pages").set(self.retained_pages)
        metrics.gauge("timessd.bloom.live_segments").set(
            len(self.blooms.live_segments())
        )
        metrics.gauge("timessd.delta.ram_bytes").set(self.deltas.ram_bytes())
        metrics.gauge("timessd.delta.records_created").set(
            self.deltas.records_created
        )
        metrics.gauge("timessd.background.compressed").set(self.background_compressed)

    def __repr__(self):
        return "TimeSSD(%d logical pages, retention=%s, retained=%d pages)" % (
            self.logical_pages,
            format_duration(self.retention_window_us()),
            self.retained_pages,
        )
