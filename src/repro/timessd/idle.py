"""Idle-time prediction (paper §3.6) — implementation lives in
:mod:`repro.common.idle` because the base FTL uses it too (background
GC), but the exponential-smoothing predictor is TimeSSD's §3.6 design:

    t_predict[i] = alpha * t_interval[i-1] + (1 - alpha) * t_predict[i-1]

with ``alpha = 0.5`` and a 10 ms compression threshold.
"""

from repro.common.idle import IdlePredictor

__all__ = ["IdlePredictor"]
