"""Power-loss recovery: rebuild firmware RAM state from flash.

Everything in Figure 3 lives in controller RAM — the AMT cache, BST,
PVT, IMT, PRT, bloom filters and delta buffers.  After power loss a real
FTL reconstructs its tables by scanning the out-of-band metadata, which
is exactly why TimeSSD stores (LPA, back-pointer, timestamp) in OOB.

:func:`simulate_power_loss` wipes the volatile state via
:meth:`TimeSSD.reset_volatile` (including the RAM delta buffers — real
firmware would flush those with capacitor-backed power; we model the
conservative worst case where they are lost);
:func:`rebuild_from_flash` reconstructs, on top of the shared OOB sweep
(:mod:`repro.ftl.recovery_scan`: torn-page discard, failed-block
retirement, partial/translation-block handling, checkpoint summaries):

* AMT + PVT — the newest *intact* OOB timestamp per LPA wins the
  mapping; pages whose OOB sequence tag mismatches (torn or failed
  programs the cut interrupted) are discarded, never mapped;
* block states and the free pool — from device write pointers; grown
  bad blocks (``Block.failed``, media truth) are retired on sight;
* the append points — partially-programmed data blocks are re-adopted
  as the user stream's active blocks (one per channel); orphans are
  force-sealed so GC can reclaim them;
* the PRT — invalid pages whose (LPA, timestamp) already exist as a
  delta record are reclaimable;
* the IMT — delta chains relinked from the records found in delta
  pages, newest-first;
* the bloom chain — one conservative recovery segment retaining every
  surviving invalid page (nothing expires before the floor re-elapses,
  which errs on the safe side); recovered delta blocks are re-homed
  under the recovery segment so their wholesale erase still happens
  when it expires.
"""

from collections import defaultdict

from repro.ftl.block_manager import BlockKind, StreamId
from repro.ftl.recovery_scan import sweep_oob
from repro.flash.page import NULL_PPA, OOBMetadata
from repro.timessd.delta import DeltaPage


def simulate_power_loss(ssd):
    """Drop every volatile structure, as an abrupt power cut would.

    The flash array (page contents, OOB, write pointers, erase counts,
    grown bad blocks) survives; every RAM table is reset through the
    device's own :meth:`reset_volatile`.  The device is unusable until
    :func:`rebuild_from_flash` runs.
    """
    ssd.reset_volatile()
    return ssd


def rebuild_from_flash(ssd):
    """Reconstruct the firmware tables by scanning OOB metadata.

    Returns a dict of recovery statistics.
    """
    device = ssd.device
    geo = device.geometry
    bm = ssd.block_manager

    sweep = sweep_oob(ssd, collect_housekeeping=True)
    heads = sweep.heads

    # Delta pages announce themselves with the DELTA_TAG housekeeping
    # OOB tag; their page data objects hold the records.
    delta_records = []
    delta_blocks = set()
    data = device.core.data
    for pba, ppa, lpa_tag, _ts in sweep.housekeeping:
        if lpa_tag != OOBMetadata.DELTA_TAG:
            continue
        payload = data[ppa]
        if not isinstance(payload, DeltaPage):
            continue
        delta_blocks.add(pba)
        delta_records.extend(r for r in payload.records if not r.dropped)

    # Delta chains: group, order newest-first, relink, and re-home every
    # record (and every recovered delta block) into one conservative
    # recovery segment.
    recovery_segment = ssd.blooms.live_segments()[-1]
    for pba in delta_blocks:
        bm.set_kind(pba, BlockKind.DELTA)
        ssd.deltas.adopt_block(recovery_segment.segment_id, pba)

    # Append points: partially-programmed data blocks become the user
    # stream's active blocks again (one per channel); leftovers are
    # sealed so GC treats them as reclaimable victims, not free space.
    for pba in sweep.partial_blocks:
        if pba in delta_blocks:
            continue  # delta appends reopen lazily via their stream key
        if not bm.adopt_active(StreamId.USER, pba):
            bm.seal_block(pba)

    by_lpa = defaultdict(list)
    for record in delta_records:
        record.segment_id = recovery_segment.segment_id
        by_lpa[record.lpa].append(record)

    # A head older than the LPA's delta history means the LPA was
    # trimmed before the crash and its whole live chain was compressed
    # and erased: the surviving data page is a stale pre-trim version.
    # Mapping it would resurrect old data *as current* and corrupt the
    # chain order; leave the LPA unmapped (trim durability across power
    # loss is advisory, as on real drives).
    for lpa, records in by_lpa.items():
        head = heads.get(lpa)
        if head is not None and head[0] <= max(r.version_ts for r in records):
            del heads[lpa]

    # AMT + PVT: the newest version of each LPA is the live mapping.
    for lpa, (_ts, ppa) in heads.items():
        ssd.mapping.update(lpa, ppa)
        bm.mark_valid(ppa)
    delta_identities = set()
    newest_delta_ts = {}
    unresolvable = 0
    for lpa, records in by_lpa.items():
        records.sort(key=lambda r: -r.version_ts)
        # A compressed delta decompresses against its reference version
        # (the head at compression time).  If that reference survives
        # only in a lost RAM delta buffer, the record is garbage — prune
        # it so queries cannot hit an unresolvable delta.  Walking
        # newest-first, a kept record's own version can serve as a later
        # record's reference, exactly as in version_chain.
        resolvable = _reachable_data_ts(ssd, lpa, heads.get(lpa))
        kept = []
        for record in records:
            if (
                record.compressed
                and record.ref_ts >= 0
                and record.ref_ts not in resolvable
            ):
                unresolvable += 1
                continue
            kept.append(record)
            resolvable.add(record.version_ts)
            delta_identities.add((record.lpa, record.version_ts))
        if not kept:
            continue
        for newer, older in zip(kept, kept[1:]):
            newer.back = older
        kept[-1].back = None
        ssd.index.set_delta_head(lpa, kept[0])
        newest_delta_ts[lpa] = kept[0].version_ts

    # Retained invalid pages: everything programmed but not a head.
    retained = 0
    reclaimable = 0
    for ppa, lpa, ts in sweep.user_pages:
        head = heads.get(lpa, (None, None))
        if head[1] == ppa:
            continue
        if ts == head[0]:
            # Byte-identical duplicate of the mapped head, left behind by
            # a scrub/GC refresh migration the cut interrupted between
            # the new copy's program and the (volatile) PRT mark.  It is
            # the *same* version, not an older one — retaining it would
            # later compress into a self-referential delta record.
            ssd.index.mark_reclaimable(ppa)
            reclaimable += 1
            continue
        if (lpa, ts) in delta_identities:
            # Already preserved as a delta: the data page is redundant.
            ssd.index.mark_reclaimable(ppa)
            reclaimable += 1
            continue
        if ts <= newest_delta_ts.get(lpa, -1):
            # Older than the LPA's recovered delta chain: retaining it
            # would make a later GC compression prepend an out-of-order
            # record (deltas link newest-first).  The chain invariant
            # wins; the stale version is given up.
            ssd.index.mark_reclaimable(ppa)
            reclaimable += 1
            continue
        ssd.blooms.record_invalidation(ppa)
        pba = geo.block_of_page(ppa)
        ssd._retained_per_block[pba] += 1
        ssd.retained_pages += 1
        retained += 1

    if ssd.checkpointer is not None:
        ssd.checkpointer.adopt(sweep.translation_blocks, sweep.checkpoint_seq)

    return {
        "mapped_lpas": len(heads),
        "retained_pages": retained,
        "reclaimable_pages": reclaimable,
        "delta_records": len(delta_records),
        "delta_blocks": len(delta_blocks),
        "free_blocks": bm.free_block_count,
        "torn_pages": sweep.torn_pages,
        "failed_blocks": sweep.failed_blocks,
        "unresolvable_deltas": unresolvable,
        "scanned_blocks": sweep.scanned_blocks,
        "summarized_blocks": sweep.summarized_blocks,
        "checkpoint_seq": sweep.checkpoint_seq,
    }


def _reachable_data_ts(ssd, lpa, head):
    """Timestamps of the data-page versions a chain walk can reach.

    Mirrors :meth:`TimeTravelIndex.walk_data_chain` (same hop checks,
    no timing): these are the versions available as delta references.
    """
    out = set()
    if head is None:
        return out
    device = ssd.device
    _ts, ppa = head
    page = device.peek_page(ppa)
    prev_ts = page.oob.timestamp_us
    out.add(prev_ts)
    back = page.oob.back_pointer
    while back != NULL_PPA and ssd.index._page_holds_version(back, lpa, prev_ts):
        oob = device.peek_page(back).oob
        out.add(oob.timestamp_us)
        prev_ts = oob.timestamp_us
        back = oob.back_pointer
    return out
