"""Power-loss recovery: rebuild firmware RAM state from flash.

Everything in Figure 3 lives in controller RAM — the AMT cache, BST,
PVT, IMT, PRT, bloom filters and delta buffers.  After power loss a real
FTL reconstructs its tables by scanning the out-of-band metadata, which
is exactly why TimeSSD stores (LPA, back-pointer, timestamp) in OOB.

:func:`simulate_power_loss` wipes the volatile state (including the RAM
delta buffers — real firmware would flush those with capacitor-backed
power; we model the conservative worst case where they are lost);
:func:`rebuild_from_flash` reconstructs:

* AMT + PVT — the newest OOB timestamp per LPA wins the mapping;
* block states and the free pool — from device write pointers;
* the PRT — invalid pages whose (LPA, timestamp) already exist as a
  delta record are reclaimable;
* the IMT — delta chains relinked from the records found in delta
  pages, newest-first;
* the bloom chain — one conservative recovery segment retaining every
  surviving invalid page (nothing expires before the floor re-elapses,
  which errs on the safe side).
"""

from collections import defaultdict

from repro.flash.page import NULL_PPA, OOBMetadata, PageState
from repro.ftl.block_manager import BlockKind, BlockManager
from repro.ftl.mapping import AddressMappingTable
from repro.timessd.delta import DeltaPage
from repro.timessd.index import TimeTravelIndex


def simulate_power_loss(ssd):
    """Drop every volatile structure, as an abrupt power cut would.

    The flash array (page contents, OOB, write pointers, erase counts)
    survives; every RAM table is replaced with an empty shell.  The
    device is unusable until :func:`rebuild_from_flash` runs.
    """
    config = ssd.config
    ssd.mapping = AddressMappingTable(
        config.logical_pages, config.mapping_cache_entries
    )
    ssd.block_manager = BlockManager(ssd.device, config.block_endurance_cycles)
    # The fresh BlockManager believes every block is free; rebuild fixes it.
    ssd.index = TimeTravelIndex(ssd.device)
    ssd.blooms._segments.clear()
    ssd.blooms._new_segment()
    ssd.deltas._segments.clear()
    ssd._retained_per_block.clear()
    ssd._trim_tombstones.clear()
    ssd.retained_pages = 0
    return ssd


def rebuild_from_flash(ssd):
    """Reconstruct the firmware tables by scanning OOB metadata.

    Returns a dict of recovery statistics.
    """
    device = ssd.device
    geo = device.geometry
    bm = ssd.block_manager

    heads = {}  # lpa -> (timestamp, ppa)
    user_pages = []  # (ppa, lpa, ts)
    delta_records = []
    delta_blocks = set()

    for pba in range(geo.total_blocks):
        block = device.blocks[pba]
        if block.is_erased:
            continue
        # Occupied blocks must leave the (fresh) free pool.
        _claim_block(bm, pba)
        for offset in range(block.write_pointer):
            page = block.pages[offset]
            if page.state is not PageState.PROGRAMMED or page.oob is None:
                continue
            ppa = geo.first_page_of_block(pba) + offset
            if isinstance(page.data, DeltaPage):
                delta_blocks.add(pba)
                delta_records.extend(
                    r for r in page.data.records if not r.dropped
                )
                continue
            lpa = page.oob.lpa
            if lpa < 0:
                continue  # housekeeping page
            ts = page.oob.timestamp_us
            user_pages.append((ppa, lpa, ts))
            best = heads.get(lpa)
            if best is None or ts > best[0]:
                heads[lpa] = (ts, ppa)

    for pba in delta_blocks:
        bm.set_kind(pba, BlockKind.DELTA)

    # AMT + PVT: the newest version of each LPA is the live mapping.
    for lpa, (_ts, ppa) in heads.items():
        ssd.mapping.update(lpa, ppa)
        bm.mark_valid(ppa)

    # Delta chains: group, order newest-first, relink, and re-home every
    # record into one conservative recovery segment.
    recovery_segment = ssd.blooms.live_segments()[-1]
    by_lpa = defaultdict(list)
    delta_identities = set()
    for record in delta_records:
        record.segment_id = recovery_segment.segment_id
        by_lpa[record.lpa].append(record)
        delta_identities.add((record.lpa, record.version_ts))
    for lpa, records in by_lpa.items():
        records.sort(key=lambda r: -r.version_ts)
        for newer, older in zip(records, records[1:]):
            newer.back = older
        records[-1].back = None
        ssd.index.set_delta_head(lpa, records[0])

    # Retained invalid pages: everything programmed but not a head.
    retained = 0
    reclaimable = 0
    for ppa, lpa, ts in user_pages:
        if heads.get(lpa, (None, None))[1] == ppa:
            continue
        if (lpa, ts) in delta_identities:
            # Already preserved as a delta: the data page is redundant.
            ssd.index.mark_reclaimable(ppa)
            reclaimable += 1
            continue
        ssd.blooms.record_invalidation(ppa)
        pba = geo.block_of_page(ppa)
        ssd._retained_per_block[pba] += 1
        ssd.retained_pages += 1
        retained += 1

    return {
        "mapped_lpas": len(heads),
        "retained_pages": retained,
        "reclaimable_pages": reclaimable,
        "delta_records": len(delta_records),
        "delta_blocks": len(delta_blocks),
        "free_blocks": bm.free_block_count,
    }


def _claim_block(bm, pba):
    """Remove ``pba`` from the fresh BlockManager's free pool."""
    channel = bm._geo.channel_of_block(pba)
    try:
        bm._free[channel].remove(pba)
    except ValueError:
        return  # already claimed
    bm._free_count -= 1
    bm.set_kind(pba, BlockKind.DATA)
