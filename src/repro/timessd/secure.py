"""Encrypted retention (paper §3.10).

Retaining history prevents secure deletion, so the paper proposes:
"use a user-specified encryption key to encrypt invalid data.  This data
can still be recovered by users, but can not be retrieved by others
without the encryption key."

This module implements that: when a retention key is configured, every
version delta is encrypted as it enters the retained store, and the
state-query engine refuses to materialize encrypted versions until the
session is unlocked with the key.  Reading the raw flash (chip-off
attack) yields only ciphertext.

The cipher is a from-scratch SplitMix64-keystream XOR stream cipher —
a stand-in for the AES-XTS engine real SSD controllers ship.  It is
deterministic per (key, LPA, version timestamp) nonce, length-
preserving, and self-inverse.
"""

import hashlib
from dataclasses import dataclass

from repro.common.errors import QueryError, ReproError
from repro.timessd.bloom import _splitmix64


@dataclass(frozen=True)
class EncryptedPayload:
    """An opaque retained version: ciphertext plus its nonce parts."""

    ciphertext: object
    lpa: int
    version_ts: int

    def __repr__(self):
        return "EncryptedPayload(lpa=%d, ts=%d)" % (self.lpa, self.version_ts)


class RetentionCipher:
    """Length-preserving stream cipher keyed by the user's secret."""

    def __init__(self, key):
        if not isinstance(key, (bytes, bytearray)) or len(key) < 8:
            raise ReproError("retention key must be at least 8 bytes")
        digest = hashlib.sha256(bytes(key)).digest()
        self._key64 = int.from_bytes(digest[:8], "little")
        self.key_fingerprint = digest[-4:].hex()

    def _keystream(self, nonce, length):
        out = bytearray()
        state = _splitmix64(self._key64 ^ nonce)
        while len(out) < length:
            state = _splitmix64(state)
            out.extend(state.to_bytes(8, "little"))
        return bytes(out[:length])

    def _nonce(self, lpa, version_ts):
        return _splitmix64((lpa << 32) ^ (version_ts & 0xFFFFFFFF))

    def _xor(self, blob, lpa, version_ts):
        stream = self._keystream(self._nonce(lpa, version_ts), len(blob))
        return bytes(a ^ b for a, b in zip(blob, stream))

    # --- Payload wrapping --------------------------------------------------------

    def encrypt_payload(self, payload, lpa, version_ts):
        """Encrypt a delta payload (bytes stay bytes; structured
        payloads have their byte parts encrypted)."""
        ciphertext = self._transform(payload, lpa, version_ts)
        return EncryptedPayload(ciphertext, lpa, version_ts)

    def decrypt_payload(self, encrypted):
        """Inverse of :meth:`encrypt_payload`."""
        if not isinstance(encrypted, EncryptedPayload):
            raise ReproError("not an encrypted payload")
        return self._transform(
            encrypted.ciphertext, encrypted.lpa, encrypted.version_ts
        )

    def _transform(self, payload, lpa, version_ts):
        # Real-content codec payloads are ("mode", blob) tuples; modeled
        # payloads can be arbitrary tokens — only byte content is
        # transformed, structure passes through.
        if isinstance(payload, (bytes, bytearray)):
            return self._xor(bytes(payload), lpa, version_ts)
        if isinstance(payload, tuple):
            return tuple(self._transform(part, lpa, version_ts) for part in payload)
        return payload


class RetentionLock:
    """Session lock guarding encrypted history.

    The current data is always readable (it is the live state any SSD
    serves); only *retained versions* are gated.  ``unlock`` verifies
    the key by fingerprint, so a wrong key fails loudly instead of
    yielding garbage plaintext.
    """

    def __init__(self, cipher):
        self.cipher = cipher
        self._unlocked = False

    @property
    def unlocked(self):
        return self._unlocked

    def unlock(self, key):
        candidate = RetentionCipher(key)
        if candidate.key_fingerprint != self.cipher.key_fingerprint:
            raise QueryError("wrong retention key")
        self._unlocked = True

    def lock(self):
        self._unlocked = False

    def open_payload(self, payload):
        """Decrypt a retained payload, enforcing the lock."""
        if not isinstance(payload, EncryptedPayload):
            return payload
        if not self._unlocked:
            raise QueryError(
                "retained history is encrypted; unlock with the retention key"
            )
        return self.cipher.decrypt_payload(payload)
