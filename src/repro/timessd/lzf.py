"""LZF compression, implemented from scratch (paper §4 uses LibLZF).

LZF trades ratio for speed, which is why the paper picked it for on-
controller delta compression.  The format is LibLZF's:

* control byte ``< 32``: a literal run of ``ctrl + 1`` bytes follows;
* control byte ``>= 32``: a back-reference.  ``length = (ctrl >> 5) + 2``;
  a length field of 7 is extended by the next byte.  The reference
  distance is ``(((ctrl & 0x1f) << 8) | last_byte) + 1``.

:func:`compress` and :func:`decompress` round-trip arbitrary bytes.
"""

from repro.common.errors import ReproError

_MAX_OFFSET = 1 << 13  # 8 KiB window, as in LibLZF
_MAX_LITERAL = 32
_MAX_MATCH = 264  # 2 + 7 + 255


def compress(data):
    """LZF-compress ``data``; returns the compressed bytes.

    The output can be longer than the input for incompressible data
    (worst case ~3% overhead); callers that care should compare lengths.
    """
    data = bytes(data)
    n = len(data)
    out = bytearray()
    literals = bytearray()
    table = {}
    i = 0

    def flush_literals():
        start = 0
        while start < len(literals):
            run = literals[start : start + _MAX_LITERAL]
            out.append(len(run) - 1)
            out.extend(run)
            start += len(run)
        del literals[:]

    while i < n - 2:
        key = data[i : i + 3]
        ref = table.get(key)
        table[key] = i
        if ref is not None and 0 < i - ref <= _MAX_OFFSET:
            match_limit = min(n - i, _MAX_MATCH)
            length = 3
            while length < match_limit and data[ref + length] == data[i + length]:
                length += 1
            flush_literals()
            offset = i - ref - 1
            encoded = length - 2
            if encoded < 7:
                out.append((encoded << 5) | (offset >> 8))
            else:
                out.append((7 << 5) | (offset >> 8))
                out.append(encoded - 7)
            out.append(offset & 0xFF)
            i += length
        else:
            literals.append(data[i])
            i += 1

    literals.extend(data[i:])
    flush_literals()
    return bytes(out)


def decompress(blob, expected_length=None):
    """Inverse of :func:`compress`.

    ``expected_length``, when given, is verified against the output.
    """
    blob = bytes(blob)
    out = bytearray()
    i = 0
    n = len(blob)
    while i < n:
        ctrl = blob[i]
        i += 1
        if ctrl < _MAX_LITERAL:
            run = ctrl + 1
            if i + run > n:
                raise ReproError("corrupt LZF stream: literal run past end")
            out.extend(blob[i : i + run])
            i += run
        else:
            length = ctrl >> 5
            if length == 7:
                if i >= n:
                    raise ReproError("corrupt LZF stream: missing length byte")
                length += blob[i]
                i += 1
            length += 2
            if i >= n:
                raise ReproError("corrupt LZF stream: missing offset byte")
            distance = (((ctrl & 0x1F) << 8) | blob[i]) + 1
            i += 1
            start = len(out) - distance
            if start < 0:
                raise ReproError("corrupt LZF stream: reference before start")
            for k in range(length):
                out.append(out[start + k])
    if expected_length is not None and len(out) != expected_length:
        raise ReproError(
            "LZF length mismatch: expected %d, got %d" % (expected_length, len(out))
        )
    return bytes(out)
