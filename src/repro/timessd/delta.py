"""Delta compression of obsolete data versions (paper §3.6).

When an invalid-but-retained page must move (its block is GC'd) TimeSSD
does not migrate it whole: it stores a compressed *delta* against the
latest version of the same LPA.  Deltas are grouped into page-sized delta
pages, which live in delta blocks dedicated to one bloom-filter time
segment, so an expired segment's delta blocks can be erased wholesale.

Two codecs:

* :class:`RealDeltaCodec` — XOR against the reference then LZF, for
  experiments that write real content;
* :class:`ModeledDeltaCodec` — Gaussian compression-ratio model, the
  paper's own method for content-less traces (§5.2).
"""

from dataclasses import dataclass, field

from repro.common.atomic import atomic_section
from repro.common.errors import DeviceFullError, ProgramFailureError, ReproError
from repro.common.units import TimeUs
from repro.flash.page import OOBMetadata
from repro.ftl.block_manager import BlockKind
from repro.timessd import lzf

#: "This record has no compression reference" sentinel for
#: :attr:`DeltaRecord.ref_ts`.  ``ref_ts`` is a *timestamp*, so its
#: sentinel must live in the time domain — recovery tests it with
#: ``ref_ts >= 0`` (uncompressed records carry it too); reusing the PPA
#: sentinel here was exactly the paper-§3 class of cross-domain
#: confusion almanac-deepcheck exists to catch.
NO_REF_TS = TimeUs(-1)


@dataclass
class DeltaRecord:
    """One compressed obsolete version plus its chain metadata (§3.7).

    The reverse delta chain is kept as object references (``back``): the
    paper stores a back-pointer PPA inside the delta page, and the model
    charges a flash-page read whenever a chain hop crosses into a flushed
    (``flash_ppa`` set) delta page.
    """

    lpa: int
    version_ts: int
    ref_ts: int
    payload: object
    size_bytes: int
    segment_id: int
    back: "DeltaRecord" = None
    flash_ppa: int = None
    dropped: bool = False
    #: False when stored uncompressed (delta-compression ablation mode).
    compressed: bool = True

    def __repr__(self):
        where = "ram" if self.flash_ppa is None else "ppa=%d" % self.flash_ppa
        return "DeltaRecord(lpa=%d, ts=%d, %dB, %s)" % (
            self.lpa,
            self.version_ts,
            self.size_bytes,
            where,
        )


class DeltaCodec:
    """Interface: compress an old version against a reference version."""

    def compress(self, old_data, ref_data):
        """Return ``(payload, size_bytes)``."""
        raise NotImplementedError

    def decompress(self, payload, ref_data):
        """Return the original old version's data."""
        raise NotImplementedError


def _xor_bytes(a, b):
    """Bytewise XOR of two equal-length byte strings.

    Wide-integer XOR is ~50x faster than a per-byte generator at page
    sizes, and the delta codec XORs every compressed version against
    its reference — this is the hottest pure-Python loop GC owns.
    """
    n = len(a)
    return (
        int.from_bytes(a, "little") ^ int.from_bytes(b, "little")
    ).to_bytes(n, "little")


class RealDeltaCodec(DeltaCodec):
    """XOR-with-reference then LZF over real page contents.

    Content locality makes the XOR mostly zeros, which LZF's back-
    references collapse.  When no reference exists (the LPA was trimmed)
    the old page is LZF'd directly; when compression does not pay, the
    raw page is stored (mode ``raw``), mirroring real firmware.

    The compression *cost model* is memoized: synthetic workloads and
    refresh migrations recompress identical ``(old, reference)`` pairs,
    and the result is a pure function of the two pages, so an LRU cache
    keyed on their bytes returns the previous ``(payload, size)``
    verbatim.  Payloads are immutable tuples of bytes, safe to share;
    the cache changes no observable result, only the wall-clock cost.
    """

    #: LRU entries kept (pairs of pages; bounded so a big device cannot
    #: grow the cache past a few MiB of references).
    MEMO_ENTRIES = 512

    def __init__(self, page_size):
        self.page_size = page_size
        self._memo = {}
        self.memo_hits = 0
        self.memo_misses = 0

    def _check(self, name, data):
        if not isinstance(data, (bytes, bytearray)):
            raise ReproError("%s must be bytes in REAL content mode" % name)
        if len(data) != self.page_size:
            raise ReproError(
                "%s must be exactly one page (%d bytes), got %d"
                % (name, self.page_size, len(data))
            )

    def compress(self, old_data, ref_data):
        self._check("old_data", old_data)
        if ref_data is not None:
            self._check("ref_data", ref_data)
        key = (bytes(old_data), None if ref_data is None else bytes(ref_data))
        cached = self._memo.get(key)
        if cached is not None:
            self.memo_hits += 1
            # Reinsert to keep true LRU eviction order.
            del self._memo[key]
            self._memo[key] = cached
            return cached
        self.memo_misses += 1
        if ref_data is not None:
            blob = lzf.compress(_xor_bytes(key[0], key[1]))
            mode = "xor"
        else:
            blob = lzf.compress(old_data)
            mode = "lzf"
        if len(blob) >= self.page_size:
            result = ("raw", bytes(old_data)), self.page_size
        else:
            result = (mode, blob), len(blob)
        if len(self._memo) >= self.MEMO_ENTRIES:
            self._memo.pop(next(iter(self._memo)))
        self._memo[key] = result
        return result

    def decompress(self, payload, ref_data):
        mode, blob = payload
        if mode == "raw":
            return blob
        if mode == "lzf":
            return lzf.decompress(blob, self.page_size)
        if mode == "xor":
            if ref_data is None:
                raise ReproError("xor delta needs its reference version")
            diff = lzf.decompress(blob, self.page_size)
            return _xor_bytes(diff, bytes(ref_data))
        raise ReproError("unknown delta payload mode %r" % (mode,))


class ModeledDeltaCodec(DeltaCodec):
    """Synthetic compressibility for content-less trace replays.

    Delta sizes follow a clipped Gaussian ratio of the page size; the
    payload is the old version's token, returned verbatim on decompress
    so version identity survives the round trip.
    """

    def __init__(self, page_size, ratio_mean=0.20, ratio_sd=0.05, rng=None):
        if rng is None:
            raise ReproError("ModeledDeltaCodec needs an explicit rng")
        self.page_size = page_size
        self.ratio_mean = ratio_mean
        self.ratio_sd = ratio_sd
        self._rng = rng

    def compress(self, old_data, ref_data):
        ratio = self._rng.gauss(self.ratio_mean, self.ratio_sd)
        ratio = min(0.95, max(0.02, ratio))
        return old_data, max(1, int(self.page_size * ratio))

    def decompress(self, payload, ref_data):
        return payload


class DeltaPage:
    """The object programmed into a delta-page flash write.

    Models the paper's delta page: a header (delta count and byte
    offsets) followed by the packed deltas with their metadata.
    """

    __slots__ = ("records",)

    def __init__(self, records):
        self.records = list(records)

    def __repr__(self):
        return "DeltaPage(%d deltas)" % len(self.records)


@dataclass
class _SegmentDeltas:
    """RAM-side delta state of one bloom segment."""

    buffer: list = field(default_factory=list)
    buffered_bytes: int = 0
    blocks: set = field(default_factory=set)
    records: int = 0


class DeltaManager:
    """Per-segment delta buffers, delta-page packing, and delta blocks."""

    def __init__(self, ssd, codec, page_size, header_bytes, metadata_bytes):
        self._ssd = ssd
        self.codec = codec
        self._page_size = page_size
        self._header_bytes = header_bytes
        self._metadata_bytes = metadata_bytes
        self._segments = {}
        self.flushed_pages = 0
        self.deferred_flushes = 0
        self.records_created = 0

    def _segment_state(self, segment_id):
        state = self._segments.get(segment_id)
        if state is None:
            state = _SegmentDeltas()
            self._segments[segment_id] = state
        return state

    def _record_footprint(self, record):
        return record.size_bytes + self._metadata_bytes

    def usable_page_bytes(self):
        return self._page_size - self._header_bytes

    def add_record(self, record, now_us):
        """Buffer a new delta; flush a delta page when the buffer fills.

        Returns the flash program completion time if a flush happened,
        else ``now_us``.
        """
        state = self._segment_state(record.segment_id)
        footprint = self._record_footprint(record)
        usable = self.usable_page_bytes()
        complete = now_us
        if state.buffer and state.buffered_bytes + footprint > usable:
            complete = self.flush_segment(record.segment_id, now_us)
        state.buffer.append(record)
        state.buffered_bytes += min(footprint, usable)
        state.records += 1
        self.records_created += 1
        return complete

    @atomic_section(
        "the RAM buffer empties, the records learn their flash PPA and "
        "the segment's block set grows in one step: a query suspended "
        "in between would find a record that is neither in RAM nor "
        "readable from flash yet (a deferred flush mutates nothing, so "
        "the failure path needs no rollback)",
        # Once the delta page is programmed, flash is the source of
        # truth: the RAM-side bookkeeping after the program is exactly
        # what recovery's segment scan reconstructs, so an exception in
        # it loses no record.
        restores_state=True,
    )
    def flush_segment(self, segment_id, now_us):
        """Write the segment's buffered deltas as one delta page.

        When the free pool is momentarily empty (GC mid-flight can touch
        many segments at once) the flush is deferred: the records stay in
        the RAM buffer — still retained and queryable — and the next
        ``add_record`` retries.  Real firmware holds them in the reserved
        controller RAM the same way.
        """
        state = self._segment_state(segment_id)
        if not state.buffer:
            return now_us
        bm = self._ssd.block_manager
        page = DeltaPage(state.buffer)
        oob = OOBMetadata(
            lpa=OOBMetadata.DELTA_TAG, back_pointer=-1, timestamp_us=now_us
        )
        try:
            ppa, complete = self._ssd.program_with_retry(
                lambda: bm.allocate_page_keyed(
                    ("delta", segment_id), BlockKind.DELTA
                ),
                page,
                oob,
                now_us,
            )
        except (DeviceFullError, ProgramFailureError):
            # Records stay in the RAM buffer — still retained and
            # queryable — and the next add_record retries the flush.
            self.deferred_flushes += 1
            return now_us
        packed = len(state.buffer)
        for record in state.buffer:
            record.flash_ppa = ppa
        state.blocks.add(self._ssd.device.geometry.block_of_page(ppa))
        state.buffer = []
        state.buffered_bytes = 0
        self.flushed_pages += 1
        self._ssd._m_delta_flushed.inc()
        tr = self._ssd.obs.trace
        if tr.enabled:
            tr.emit(
                "delta",
                "flush",
                complete,
                segment_id=segment_id,
                ppa=ppa,
                records=packed,
            )
        return complete

    def reset(self):
        """Drop all RAM-side delta state (power loss loses the buffers)."""
        self._segments = {}

    def adopt_block(self, segment_id, pba):
        """Re-register a delta block found by crash recovery.

        Recovered records are re-homed into one recovery segment; its
        state must own their blocks so ``drop_segment`` erases them when
        the recovery segment eventually expires.
        """
        self._segment_state(segment_id).blocks.add(pba)

    def ram_bytes(self):
        return sum(s.buffered_bytes for s in self._segments.values())

    def segment_blocks(self, segment_id):
        state = self._segments.get(segment_id)
        return set(state.blocks) if state else set()

    @atomic_section(
        "segment teardown: dropping the RAM records, closing the delta "
        "append stream and erasing the segment's blocks must look like "
        "one event — a reader interleaved mid-drop could resurrect a "
        "record whose backing block is already queued for erase",
        # Records are marked dropped before any erase, so a mid-loop
        # erase failure (bad block, retired inside erase_delta_block)
        # never resurrects history; completed erases are durable.
        restores_state=True,
    )
    def drop_segment(self, segment_id, now_us):
        """Destroy a segment's deltas: erase its delta blocks immediately.

        The paper erases an expired segment's delta blocks with no
        migration — they contain only expired versions by construction.
        Returns the number of blocks erased.
        """
        state = self._segments.pop(segment_id, None)
        if state is None:
            return 0
        for record in state.buffer:
            record.dropped = True
        bm = self._ssd.block_manager
        bm.close_stream(("delta", segment_id))
        erased = 0
        for pba in state.blocks:
            self._mark_block_records_dropped(pba)
            self._ssd.erase_delta_block(pba, now_us)
            erased += 1
        return erased

    def _mark_block_records_dropped(self, pba):
        device = self._ssd.device
        for ppa in device.geometry.pages_of_block(pba):
            page = device.peek_page(ppa)
            if page.data is not None and isinstance(page.data, DeltaPage):
                for record in page.data.records:
                    record.dropped = True

    def live_segment_ids(self):
        return set(self._segments)
