"""Device self-check: an fsck for TimeSSD.

Audits every cross-structure invariant the design relies on.  Used by
the stress tests after heavy churn, exposed on the CLI (``repro fsck``
style usage via the API), and handy when extending the firmware — run
it after any change to GC, the index, or the delta store.

Checked invariants:

* **mapping/PVT agreement** — every mapped LPA's head page is valid and
  holds that LPA; every valid page is some LPA's head;
* **chain soundness** — version chains are strictly newest-first and
  every hop passes the OOB verification rule;
* **delta-chain order** — every delta version is older than every
  surviving data-page version of its LPA (§3.7 invariant);
* **PRT consistency** — reclaimable pages are never valid;
* **free-pool hygiene** — FREE blocks are erased; counts agree;
* **retention accounting** — the retained-page census never goes
  negative and covers only data blocks;
* **segment/delta agreement** — live delta records reference live
  segments; dropped segments own no reachable records.
"""

from dataclasses import dataclass, field

from repro.flash.page import PageState
from repro.ftl.block_manager import BlockKind


@dataclass
class AuditReport:
    """Outcome of a device audit."""

    checks_run: int = 0
    violations: list = field(default_factory=list)

    @property
    def clean(self):
        return not self.violations

    def problem(self, message):
        self.violations.append(message)

    def __repr__(self):
        state = "clean" if self.clean else "%d violations" % len(self.violations)
        return "AuditReport(%d checks, %s)" % (self.checks_run, state)


class DeviceAuditor:
    """Runs the full invariant suite against a TimeSSD."""

    def __init__(self, ssd):
        self.ssd = ssd

    def audit(self, sample_lpa_stride=1):
        """Run every check; returns an :class:`AuditReport`.

        ``sample_lpa_stride`` audits every N-th mapped LPA's chain (1 =
        all of them) — chain walks on huge devices can be throttled.
        """
        report = AuditReport()
        self._check_mapping_pvt(report)
        self._check_chains(report, sample_lpa_stride)
        self._check_prt(report)
        self._check_free_pool(report)
        self._check_retention_census(report)
        self._check_segments(report)
        return report

    # --- Individual checks ------------------------------------------------------

    def _check_mapping_pvt(self, report):
        report.checks_run += 1
        ssd = self.ssd
        heads = set()
        for lpa in ssd.mapping.mapped_lpas():
            ppa = ssd.mapping.lookup(lpa)
            heads.add(ppa)
            if not ssd.block_manager.is_valid(ppa):
                report.problem("mapped LPA %d head PPA %d not valid" % (lpa, ppa))
                continue
            page = ssd.device.peek_page(ppa)
            if page.state is not PageState.PROGRAMMED:
                report.problem("mapped LPA %d head PPA %d not programmed" % (lpa, ppa))
            elif page.oob.lpa != lpa:
                report.problem(
                    "mapped LPA %d head holds LPA %d" % (lpa, page.oob.lpa)
                )
            elif not page.oob.intact:
                report.problem(
                    "mapped LPA %d head PPA %d has a torn OOB tag" % (lpa, ppa)
                )
        geo = ssd.device.geometry
        for pba in range(geo.total_blocks):
            for ppa in geo.pages_of_block(pba):
                if ssd.block_manager.is_valid(ppa) and ppa not in heads:
                    report.problem("valid page %d is not any LPA's head" % ppa)

    def _check_chains(self, report, stride):
        report.checks_run += 1
        ssd = self.ssd
        locked = (
            ssd.retention_lock is not None and not ssd.retention_lock.unlocked
        )
        if locked:
            return  # encrypted history cannot be walked while locked
        for lpa in list(ssd.mapping.mapped_lpas())[::stride]:
            versions, _ = ssd.version_chain(lpa)
            stamps = [v.timestamp_us for v in versions]
            if stamps != sorted(stamps, reverse=True):
                report.problem("LPA %d chain not newest-first: %s" % (lpa, stamps))
            if len(set(stamps)) != len(stamps):
                report.problem("LPA %d chain has duplicate timestamps" % lpa)
            data_ts = [
                v.timestamp_us
                for v in versions
                if v.source in ("current", "data-page")
            ]
            delta_ts = [
                v.timestamp_us for v in versions if v.source.startswith("delta")
            ]
            if data_ts and delta_ts and max(delta_ts) >= min(data_ts):
                report.problem(
                    "LPA %d delta chain overlaps data chain in time" % lpa
                )

    def _check_prt(self, report):
        report.checks_run += 1
        ssd = self.ssd
        for ppa in list(ssd.index._reclaimable):
            if ssd.block_manager.is_valid(ppa):
                report.problem("reclaimable page %d is marked valid" % ppa)

    def _check_free_pool(self, report):
        report.checks_run += 1
        ssd = self.ssd
        geo = ssd.device.geometry
        free_seen = 0
        for pba in range(geo.total_blocks):
            kind = ssd.block_manager.kind(pba)
            # A failed block may stay DATA until GC migrates it out, but it
            # must never re-enter the free pool.
            if ssd.device.blocks[pba].failed and kind is BlockKind.FREE:
                report.problem("failed block %d is in the free pool" % pba)
            if kind is BlockKind.FREE:
                free_seen += 1
                if not ssd.device.blocks[pba].is_erased:
                    report.problem("FREE block %d is not erased" % pba)
        if free_seen != ssd.block_manager.free_block_count:
            report.problem(
                "free-block count %d != %d FREE blocks on device"
                % (ssd.block_manager.free_block_count, free_seen)
            )

    def _check_retention_census(self, report):
        report.checks_run += 1
        ssd = self.ssd
        if ssd.retained_pages < 0:
            report.problem("negative retained-page total: %d" % ssd.retained_pages)
        for pba, count in ssd._retained_per_block.items():
            if count < 0:
                report.problem("block %d retained census negative: %d" % (pba, count))

    def _check_segments(self, report):
        report.checks_run += 1
        ssd = self.ssd
        live_ids = {s.segment_id for s in ssd.blooms.live_segments()}
        # Every reachable delta record must belong to a live segment.
        for lpa in ssd.mapping.mapped_lpas():
            record = ssd.index.delta_head(lpa)
            while record is not None and not record.dropped:
                if record.segment_id not in live_ids:
                    report.problem(
                        "LPA %d live delta (ts=%d) in dead segment %d"
                        % (lpa, record.version_ts, record.segment_id)
                    )
                    break
                record = record.back
