"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``demo``        — sixty-second tour of the time-travel property;
* ``experiment``  — regenerate one paper table/figure by id;
* ``list``        — list available experiment ids;
* ``info``        — system inventory and default configuration;
* ``lint``        — almanac-lint static checks (see docs/ANALYSIS.md);
* ``metrics``     — observability snapshots as schema-stable JSON
  (see docs/OBSERVABILITY.md);
* ``torture``     — crash-point sweep: cut power at every k-th flash op,
  rebuild, and audit (see docs/FAULTS.md).
"""

import argparse
import sys

from repro.common.units import SECOND_US, format_duration


def _cmd_demo(args):
    from repro.flash import FlashGeometry
    from repro.timekits import TimeKits
    from repro.timessd import ContentMode, TimeSSD, TimeSSDConfig

    ssd = TimeSSD(
        TimeSSDConfig(
            geometry=FlashGeometry(channels=4, blocks_per_plane=16, pages_per_block=16),
            content_mode=ContentMode.REAL,
        )
    )
    kits = TimeKits(ssd)
    size = ssd.device.geometry.page_size
    for text in ("first draft", "second draft", "final"):
        ssd.write(0, text.encode().ljust(size, b"\0"))
        ssd.clock.advance(5 * SECOND_US)
    print("current:", ssd.read(0)[0].rstrip(b"\0").decode())
    print("history (device-level, no backups were taken):")
    for version in kits.addr_query_all(0).value[0]:
        print(
            "  t=%-10s %s"
            % (
                format_duration(version.timestamp_us),
                version.data.rstrip(b"\0").decode(),
            )
        )
    kits.rollback(0, t=0)
    print("after rollback to t=0:", ssd.read(0)[0].rstrip(b"\0").decode())
    return 0


EXPERIMENTS = {
    "fig6a": ("avg I/O response time @ 50% usage", "response"),
    "fig6b": ("avg I/O response time @ 80% usage", "response"),
    "fig7a": ("write amplification @ 50% usage", "wa"),
    "fig7b": ("write amplification @ 80% usage", "wa"),
    "fig9a": ("IOZone file-system comparison", "iozone"),
    "fig9b": ("PostMark + OLTP comparison", "oltp"),
    "table3": ("storage-state query latency", "table3"),
    "fig10": ("ransomware recovery time", "fig10"),
    "fig11": ("file reversal with 1/2/4 threads", "fig11"),
}


def _cmd_list(args):
    print("experiment ids (see EXPERIMENTS.md for expectations):")
    for key, (title, _kind) in EXPERIMENTS.items():
        print("  %-8s %s" % (key, title))
    print("  fig8*    retention duration (run via pytest benchmarks/)")
    return 0


def _cmd_experiment(args):
    from repro.bench.tables import format_table

    key = args.id
    if key not in EXPERIMENTS:
        print("unknown experiment %r; try: python -m repro list" % key)
        return 2
    title, kind = EXPERIMENTS[key]
    days = args.days
    print("running %s (%s)..." % (key, title))
    if kind == "response":
        from repro.bench.trace_experiments import response_time_rows

        usage = 0.5 if key.endswith("a") else 0.8
        rows = response_time_rows(usage=usage, days=days)
        print(format_table(("volume", "regular (ms)", "TimeSSD (ms)", "overhead (%)"), rows))
    elif kind == "wa":
        from repro.bench.trace_experiments import write_amplification_rows

        usage = 0.5 if key.endswith("a") else 0.8
        rows = write_amplification_rows(usage=usage, days=days)
        print(format_table(("volume", "regular WA", "TimeSSD WA", "increase (%)"), rows))
    elif kind == "iozone":
        from repro.bench.fs_experiments import normalized, run_iozone

        results = run_iozone()
        rows = []
        for phase in ("SeqRead", "SeqWrite", "RandomRead", "RandomWrite"):
            norm = normalized({s: results[s][phase] for s in results})
            rows.append((phase, norm["Ext4"], norm["F2FS"], norm["TimeSSD"]))
        print(format_table(("phase", "Ext4", "F2FS", "TimeSSD"), rows))
    elif kind == "oltp":
        from repro.bench.fs_experiments import normalized, run_oltp, run_postmark

        postmark = normalized(run_postmark())
        rows = [("PostMark", postmark["Ext4"], postmark["F2FS"], postmark["TimeSSD"])]
        oltp = run_oltp()
        for bench in ("TPCC", "TPCB", "TATP"):
            norm = normalized({s: oltp[s][bench] for s in oltp})
            rows.append((bench, norm["Ext4"], norm["F2FS"], norm["TimeSSD"]))
        print(format_table(("workload", "Ext4", "F2FS", "TimeSSD"), rows))
    elif kind == "table3":
        from repro.bench.query_experiments import run_table3

        rows = [
            (r.volume, r.time_query_s, r.addr_query_all_ms, r.rollback_ms)
            for r in run_table3()
        ]
        print(
            format_table(
                ("volume", "TimeQuery (s)", "AddrQueryAll (ms)", "RollBack (ms)"), rows
            )
        )
    elif kind == "fig10":
        from repro.bench.security_experiments import run_fig10

        rows = [
            (r.family, r.flashguard_recovery_s, r.timessd_recovery_s)
            for r in run_fig10()
        ]
        print(format_table(("family", "FlashGuard (s)", "TimeSSD (s)"), rows))
    elif kind == "fig11":
        from repro.bench.revert_experiments import run_fig11

        rows = [
            (r.name, r.per_thread_ms[1], r.per_thread_ms[2], r.per_thread_ms[4])
            for r in run_fig11(commits=args.commits)
        ]
        print(format_table(("file", "1 thr (ms)", "2 thr (ms)", "4 thr (ms)"), rows))
    return 0


def _cmd_info(args):
    from repro.bench.config import bench_geometry
    from repro.timessd import TimeSSDConfig

    geometry = bench_geometry()
    config = TimeSSDConfig()
    print("Project Almanac reproduction (EuroSys '19)")
    print("bench device: %d channels x %d blocks x %d pages x %d B" % (
        geometry.channels,
        geometry.total_blocks // geometry.channels,
        geometry.pages_per_block,
        geometry.page_size,
    ))
    print("retention floor: %s" % format_duration(config.retention_floor_us))
    print("bloom: capacity %d, fp %.2f%%, group size %d" % (
        config.bloom_capacity,
        config.bloom_fp_rate * 100,
        config.bloom_group_size,
    ))
    print("Equation-1: TH=%.2f over %d-write periods" % (
        config.gc_overhead_threshold,
        config.gc_overhead_period_writes,
    ))
    return 0


def _cmd_selftest(args):
    import random

    from repro.flash import FlashGeometry
    from repro.timessd import TimeSSD, TimeSSDConfig
    from repro.timessd.verify import DeviceAuditor

    ssd = TimeSSD(
        TimeSSDConfig(
            geometry=FlashGeometry(channels=8, blocks_per_plane=32, pages_per_block=32),
            retention_floor_us=2 * SECOND_US,
        )
    )
    rng = random.Random(0xA1)
    working = ssd.logical_pages // 2
    print("stressing: %d writes/trims over %d pages..." % (working * 5, working))
    for lpa in range(working):
        ssd.write(lpa)
        ssd.clock.advance(300)
    for _ in range(working * 4):
        lpa = rng.randrange(working)
        if rng.random() < 0.9:
            ssd.write(lpa)
        else:
            ssd.trim(lpa)
        ssd.clock.advance(rng.choice([300, 900, 25_000]))
    print(
        "GC runs: %d foreground, %d background; retention window %s"
        % (ssd.gc_runs, ssd.background_gc_runs, format_duration(ssd.retention_window_us()))
    )
    report = DeviceAuditor(ssd).audit()
    print("audit: %d checks," % report.checks_run, end=" ")
    if report.clean:
        print("all invariants hold")
        return 0
    print("%d VIOLATIONS:" % len(report.violations))
    for violation in report.violations:
        print("  -", violation)
    return 1


def _cmd_torture(args):
    from repro.faults.torture import TortureConfig, run_torture, scrub_preset

    overrides = dict(
        crash_every=args.crash_every,
        torn=not args.no_torn,
        seed=args.seed,
        checkpoint_interval_blocks=args.checkpoint_every,
    )
    if args.ops is not None:
        overrides["ops"] = args.ops
    if args.scrub:
        config = scrub_preset(**overrides)
    else:
        config = TortureConfig(**overrides)
    print(
        "torture: replaying %d host ops, power cut at every %s flash op..."
        % (config.ops, "%dth" % config.crash_every)
    )
    report = run_torture(config)
    for line in report.summary_lines():
        print(line)
    return 0 if report.ok else 1


def _cmd_lint(args):
    from repro.analysis.runner import main as lint_main

    argv = list(args.paths)
    argv += ["--format", args.format]
    if args.select:
        argv += ["--select", args.select]
    if args.ignore:
        argv += ["--ignore", args.ignore]
    if args.deep:
        argv += ["--deep"]
    if args.list_rules:
        argv += ["--list-rules"]
    if args.show_unresolved:
        argv += ["--show-unresolved"]
    if args.cache_dir:
        argv += ["--cache-dir", args.cache_dir]
    if args.no_cache:
        argv += ["--no-cache"]
    if args.stats:
        argv += ["--stats"]
    if args.emit_interleaving:
        argv += ["--emit-interleaving", args.emit_interleaving]
    return lint_main(argv)


def _cmd_metrics(args):
    from repro.bench import emit

    if args.history:
        from repro.bench import history

        rendered = history.render_table(history.trajectory())
        if args.out:
            with open(args.out, "w") as fh:
                fh.write(rendered)
            print("wrote %s" % args.out)
        else:
            print(rendered, end="")
        return 0
    if args.bench and args.check:
        problems = emit.check_bench_snapshot(path=args.out)
        for problem in problems:
            print("bench check: %s" % problem)
        if not problems:
            print("bench check: %s is current" % (args.out or emit.BENCH_FILE))
        return 1 if problems else 0
    if args.bench:
        # The committed snapshot is always the canonical workload
        # (write_bench_json's defaults); --writes/--seed only shape the
        # demo, else a stray flag would make CI's regeneration drift.
        path = emit.write_bench_json(path=args.out)
        print("wrote %s" % path)
        return 0
    result = emit.demo_snapshot(
        kind=args.device,
        seed=args.seed,
        writes=args.writes,
        tracing=args.trace,
    )
    rendered = emit.to_canonical_json(result)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(rendered)
        print("wrote %s" % args.out)
    else:
        print(rendered, end="")
    return 0


def _cmd_trace_stats(args):
    from repro.workloads.analyze import analyze_trace

    source = args.source
    if source.startswith("msr:") or source.startswith("fiu:"):
        kind, volume = source.split(":", 1)
        from repro.workloads.fiu import fiu_trace
        from repro.workloads.msr import msr_trace

        fn = msr_trace if kind == "msr" else fiu_trace
        records = list(
            fn(volume, 16384, days=args.days, seed=1, intensity_scale=args.scale)
        )
        print("synthesized %s/%s, %d days:" % (kind, volume, args.days))
    else:
        from repro.workloads.io import load_msr_csv, load_trace_csv
        from repro.common.errors import ReproError

        try:
            records = load_trace_csv(source)
            print("native trace %s:" % source)
        except ReproError:
            records = load_msr_csv(source)
            print("MSR-format trace %s:" % source)
    print(analyze_trace(records).summary())
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro", description="Project Almanac (TimeSSD) reproduction"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("demo", help="sixty-second time-travel demo").set_defaults(
        fn=_cmd_demo
    )
    sub.add_parser("list", help="list experiment ids").set_defaults(fn=_cmd_list)
    sub.add_parser("info", help="inventory and defaults").set_defaults(fn=_cmd_info)
    sub.add_parser(
        "selftest", help="stress a device and audit every invariant"
    ).set_defaults(fn=_cmd_selftest)

    lint = sub.add_parser(
        "lint", help="almanac-lint: determinism/layering/hygiene checks"
    )
    lint.add_argument(
        "paths", nargs="*", default=["src/repro"], help="files or directories"
    )
    lint.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text"
    )
    lint.add_argument(
        "--select",
        "--rules",
        dest="select",
        help="comma-separated rule ids or pack names to run",
    )
    lint.add_argument(
        "--ignore",
        help="comma-separated rule ids or pack names to drop",
    )
    lint.add_argument(
        "--deep",
        action="store_true",
        help="include the whole-program passes",
    )
    lint.add_argument("--list-rules", action="store_true")
    lint.add_argument("--show-unresolved", action="store_true")
    lint.add_argument("--cache-dir", default=None)
    lint.add_argument("--no-cache", action="store_true")
    lint.add_argument(
        "--stats",
        action="store_true",
        help="print per-rule finding counts and cache hit/miss rates",
    )
    lint.add_argument(
        "--emit-interleaving",
        nargs="?",
        const="docs/interleaving-contract.md",
        default=None,
        metavar="PATH",
        help="write the interleaving contract report",
    )
    lint.set_defaults(fn=_cmd_lint)

    torture = sub.add_parser(
        "torture", help="crash-point sweep: cut, rebuild, audit"
    )
    torture.add_argument(
        "--ops",
        type=int,
        default=None,
        help="host ops to replay (default 400; 160 with --scrub)",
    )
    torture.add_argument(
        "--scrub",
        action="store_true",
        help="enable media aging + patrol scrub: crash points also land "
        "inside patrol reads and refresh migrations",
    )
    torture.add_argument(
        "--crash-every",
        type=int,
        default=1,
        metavar="K",
        help="cut at every K-th flash op (default 1 = exhaustive)",
    )
    torture.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="BLOCKS",
        help="write recovery checkpoints every BLOCKS blocks of programs: "
        "crash points then also land mid-checkpoint (default off)",
    )
    torture.add_argument("--seed", type=lambda s: int(s, 0), default=0x70B7)
    torture.add_argument(
        "--no-torn",
        action="store_true",
        help="cut cleanly before the op instead of tearing programs",
    )
    torture.set_defaults(fn=_cmd_torture)

    metrics = sub.add_parser(
        "metrics", help="observability snapshot as schema-stable JSON"
    )
    metrics.add_argument(
        "--demo",
        action="store_true",
        help="run the built-in demo churn workload (the default action)",
    )
    metrics.add_argument(
        "--bench",
        action="store_true",
        help="run the bench smoke workload on both devices and write %s"
        % "BENCH_pr8.json",
    )
    metrics.add_argument(
        "--history",
        action="store_true",
        help="diff every committed BENCH_pr*.json and print the cross-PR "
        "perf trajectory table",
    )
    metrics.add_argument(
        "--check",
        action="store_true",
        help="with --bench: verify the committed snapshot instead of "
        "rewriting it (schema, deterministic payload, ops/sec floor)",
    )
    metrics.add_argument(
        "--device", choices=("regular", "timessd"), default="timessd"
    )
    metrics.add_argument("--writes", type=int, default=600)
    metrics.add_argument("--seed", type=lambda s: int(s, 0), default=7)
    metrics.add_argument(
        "--trace",
        action="store_true",
        help="enable event tracing and include the drained ring in the output",
    )
    metrics.add_argument("--out", help="write JSON to a file instead of stdout")
    metrics.set_defaults(fn=_cmd_metrics)

    stats = sub.add_parser("trace-stats", help="characterize a trace")
    stats.add_argument(
        "source",
        help="volume name (e.g. msr:hm, fiu:webmail) or a trace CSV path",
    )
    stats.add_argument("--days", type=int, default=7)
    stats.add_argument("--scale", type=float, default=20.0, help="intensity scale")
    stats.set_defaults(fn=_cmd_trace_stats)

    exp = sub.add_parser("experiment", help="regenerate a paper table/figure")
    exp.add_argument("id", help="experiment id (see `repro list`)")
    exp.add_argument("--days", type=int, default=7, help="trace length (default 7)")
    exp.add_argument(
        "--commits", type=int, default=300, help="fig11 commit count (default 300)"
    )
    exp.set_defaults(fn=_cmd_experiment)
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
