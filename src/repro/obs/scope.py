"""Per-device observability scope: one registry + one tracer.

A :class:`Scope` is the unit the SSD layers share.  ``BaseSSD`` builds
one and hands it to its ``FlashDevice`` and ``NVMeController``, so every
metric and trace event for one simulated drive lands in one place — and
two drives in one process (every differential test) stay fully
independent.  There is intentionally no module-level default scope.
"""

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import EventTracer

__all__ = ["Scope"]


class Scope:
    """Bundle of a :class:`MetricsRegistry` and an :class:`EventTracer`."""

    __slots__ = ("metrics", "trace")

    def __init__(self, tracing=False, trace_capacity=4096):
        self.metrics = MetricsRegistry()
        self.trace = EventTracer(capacity=trace_capacity, enabled=tracing)

    def snapshot(self):
        """JSON-stable metrics snapshot (trace events are not included —
        drain the ring explicitly with ``scope.trace.drain()``)."""
        return self.metrics.snapshot()

    def to_json(self, indent=None):
        return self.metrics.to_json(indent=indent)

    def __repr__(self):
        return "Scope(%r, %r)" % (self.metrics, self.trace)
