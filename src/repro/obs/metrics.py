"""Metric primitives: counters, gauges, and HDR-style latency histograms.

A :class:`MetricsRegistry` owns named metrics for one device instance —
there is deliberately no module-level registry, so two SSDs in one
process (every differential experiment) never share state.  Snapshots
are JSON-stable: building the same device twice and running the same
seeded workload produces byte-identical :meth:`MetricsRegistry.to_json`
output, which is what the golden determinism tests pin.

The histogram is HDR-style: log2 major buckets split into 16 linear
sub-buckets, so relative quantile error is bounded (~6%) at any scale
from one microsecond to days, with O(1) integer-only recording — cheap
enough to sit on the flash-op hot path, deterministic by construction
(no sampling, no RNG, unlike the reservoir in
:class:`repro.common.stats.LatencyStats` it replaces on the device).
"""

from repro.common.errors import ReproError

__all__ = ["Counter", "Gauge", "LatencyHistogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing named count."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0

    def inc(self, n=1):
        if n < 0:
            raise ReproError("counter %s cannot decrease" % self.name)
        self.value += n
        return self.value

    def __repr__(self):
        return "Counter(%s=%d)" % (self.name, self.value)


class Gauge:
    """A named point-in-time value (set, not accumulated)."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0

    def set(self, value):
        self.value = value
        return value

    def __repr__(self):
        return "Gauge(%s=%r)" % (self.name, self.value)


#: Linear sub-buckets per power of two (HDR "significant digits" knob).
_SUB_BUCKETS = 16
_SUB_BITS = 4  # log2(_SUB_BUCKETS)


class LatencyHistogram:
    """Fixed-precision histogram over non-negative integer microseconds.

    Values below ``_SUB_BUCKETS`` are recorded exactly; larger values
    land in one of 16 linear sub-buckets of their power-of-two range, so
    any recorded value is reported within 1/16 of its magnitude.  Exact
    ``count`` / ``total_us`` / ``min_us`` / ``max_us`` are tracked on
    the side; ``percentile(0)`` and ``percentile(100)`` return the exact
    extremes.

    The API is a superset of what the device models used from
    ``LatencyStats`` (``record`` / ``count`` / ``mean_us`` /
    ``percentile`` / ``max_us`` / ``total_us``), so it drops into the
    FTL response-time accounting unchanged.
    """

    __slots__ = ("name", "count", "total_us", "min_us", "max_us", "_buckets")

    def __init__(self, name):
        self.name = name
        self.count = 0
        self.total_us = 0
        self.min_us = None
        self.max_us = 0
        self._buckets = {}  # bucket index -> count (sparse)

    @staticmethod
    def _bucket_index(value):
        if value < _SUB_BUCKETS:
            return value
        shift = value.bit_length() - _SUB_BITS - 1
        # top is in [16, 32): 4 magnitude bits below the leading one.
        top = value >> shift
        return (shift + 1) * _SUB_BUCKETS + (top - _SUB_BUCKETS)

    @staticmethod
    def _bucket_bounds(index):
        """Inclusive ``(low, high)`` value range of bucket ``index``."""
        if index < _SUB_BUCKETS:
            return index, index
        shift = index // _SUB_BUCKETS - 1
        top = _SUB_BUCKETS + index % _SUB_BUCKETS
        low = top << shift
        high = ((top + 1) << shift) - 1
        return low, high

    def record(self, latency_us):
        latency_us = int(latency_us)
        if latency_us < 0:
            raise ReproError("latency cannot be negative")
        self.count += 1
        self.total_us += latency_us
        if self.min_us is None or latency_us < self.min_us:
            self.min_us = latency_us
        if latency_us > self.max_us:
            self.max_us = latency_us
        index = self._bucket_index(latency_us)
        self._buckets[index] = self._buckets.get(index, 0) + 1

    @property
    def mean_us(self):
        return self.total_us / self.count if self.count else 0.0

    def percentile(self, p):
        """p-th percentile (0..100); exact at both extremes, ~6% inside."""
        if not 0 <= p <= 100:
            raise ReproError("percentile must be in [0, 100]")
        if self.count == 0:
            return 0.0
        if p == 0:
            return float(self.min_us)
        if p == 100:
            return float(self.max_us)
        # Nearest-rank over buckets; report the bucket's upper bound
        # (every recorded value in the bucket is <= it), clamped to the
        # exact extremes.
        rank = max(1, -(-p * self.count // 100))  # ceil(p/100 * count)
        seen = 0
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if seen >= rank:
                _low, high = self._bucket_bounds(index)
                return float(min(max(high, self.min_us), self.max_us))
        return float(self.max_us)

    def bucket_counts(self):
        """Sorted ``[(bucket_low_us, count), ...]`` (invariant: counts sum to count)."""
        return [
            (self._bucket_bounds(index)[0], self._buckets[index])
            for index in sorted(self._buckets)
        ]

    def snapshot(self):
        return {
            "count": self.count,
            "total_us": self.total_us,
            "min_us": self.min_us if self.min_us is not None else 0,
            "max_us": self.max_us,
            "mean_us": round(self.mean_us, 6),
            "p50_us": self.percentile(50),
            "p90_us": self.percentile(90),
            "p99_us": self.percentile(99),
            "buckets": [[low, n] for low, n in self.bucket_counts()],
        }

    def __repr__(self):
        return "LatencyHistogram(%s: n=%d, mean=%.1fus, p99=%.1fus)" % (
            self.name,
            self.count,
            self.mean_us,
            self.percentile(99),
        )


class MetricsRegistry:
    """Named metrics for one device instance.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create (the same
    name always returns the same object; a name can hold only one metric
    type).  Metric names are dotted, lowercase, and catalogued in
    docs/OBSERVABILITY.md.
    """

    def __init__(self):
        self._metrics = {}

    def _get(self, name, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise ReproError(
                "metric %r is a %s, not a %s"
                % (name, type(metric).__name__, cls.__name__)
            )
        return metric

    def counter(self, name):
        return self._get(name, Counter)

    def gauge(self, name):
        return self._get(name, Gauge)

    def histogram(self, name):
        return self._get(name, LatencyHistogram)

    def names(self):
        return sorted(self._metrics)

    def get(self, name):
        """The metric registered under ``name``, or None."""
        return self._metrics.get(name)

    def snapshot(self):
        """JSON-stable dict of every metric, grouped by type, sorted by name."""
        counters = {}
        gauges = {}
        histograms = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                counters[name] = metric.value
            elif isinstance(metric, Gauge):
                gauges[name] = metric.value
            else:
                histograms[name] = metric.snapshot()
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def to_json(self, indent=None):
        """Canonical JSON rendering (sorted keys, stable separators)."""
        import json

        return json.dumps(
            self.snapshot(), sort_keys=True, indent=indent,
            separators=(",", ": ") if indent else (",", ":"),
        )

    def __repr__(self):
        return "MetricsRegistry(%d metrics)" % len(self._metrics)
