"""Ring-buffer structured event tracer.

Events are plain dicts with a fixed envelope — ``seq`` (monotonic),
``t_us`` (sim-clock timestamp supplied by the emitter; the tracer has no
clock of its own), ``cat`` (one of :data:`CATEGORIES`), ``name``, and
arbitrary integer/string detail fields.  The buffer is a bounded ring:
old events fall off the back and ``dropped`` counts them, so tracing a
long run costs O(capacity) memory.

Tracing is off by default and the hot paths guard every emit with
``if tracer.enabled:`` so a disabled tracer costs one attribute check
per candidate event — the "near-zero when disabled" budget in ISSUE 4.
"""

from collections import deque

from repro.common.errors import ReproError
from repro.common.units import TimeUs

__all__ = ["CATEGORIES", "EventTracer"]

#: The closed set of event categories (ISSUE 4 tentpole; "scrub" added
#: with the patrol scrubber in ISSUE 7, "sched" with the event-driven
#: core in ISSUE 9).
CATEGORIES = ("flash-op", "gc", "delta", "expire", "fault", "nvme", "scrub", "sched")

_CATEGORY_SET = frozenset(CATEGORIES)


class EventTracer:
    """Bounded ring of structured simulation events."""

    def __init__(self, capacity=4096, enabled=False):
        if capacity < 1:
            raise ReproError("tracer capacity must be >= 1")
        self.capacity = capacity
        self.enabled = enabled
        self.seq = 0
        self.dropped = 0
        self._ring = deque(maxlen=capacity)

    def emit(self, category, name, t_us: TimeUs, **fields):
        """Record one event; no-op (and near-free) when disabled."""
        if not self.enabled:
            return
        if category not in _CATEGORY_SET:
            raise ReproError("unknown trace category %r" % (category,))
        if len(self._ring) == self.capacity:
            self.dropped += 1
        event = {"seq": self.seq, "t_us": int(t_us), "cat": category, "name": name}
        if fields:
            event.update(fields)
        self._ring.append(event)
        self.seq += 1

    def events(self, category=None):
        """Events currently in the ring, oldest first."""
        if category is None:
            return list(self._ring)
        return [e for e in self._ring if e["cat"] == category]

    def drain(self):
        """Return and clear the ring (seq/dropped keep counting)."""
        events = list(self._ring)
        self._ring.clear()
        return events

    def clear(self):
        self._ring.clear()

    def __len__(self):
        return len(self._ring)

    def __repr__(self):
        return "EventTracer(%d/%d events, %d dropped, %s)" % (
            len(self._ring),
            self.capacity,
            self.dropped,
            "on" if self.enabled else "off",
        )
