"""Deterministic, zero-dependency observability substrate.

Layer 0 (with ``repro.common``): everything above may import ``repro.obs``;
``repro.obs`` imports nothing above ``repro.common`` — enforced by the
``layering-obs-isolated`` almanac-lint rule.
"""

from repro.obs.metrics import Counter, Gauge, LatencyHistogram, MetricsRegistry
from repro.obs.scope import Scope
from repro.obs.tracer import CATEGORIES, EventTracer

__all__ = [
    "CATEGORIES",
    "Counter",
    "EventTracer",
    "Gauge",
    "LatencyHistogram",
    "MetricsRegistry",
    "Scope",
]
