"""Deterministic discrete-event scheduler and the async device tasks.

``repro.sched`` is the concurrency substrate of the event-driven device
core (ISSUE 9): a generator-based cooperative event loop on
:class:`~repro.common.clock.SimClock` (:mod:`repro.sched.core`) plus the
catalog of device tasks that run on it (:mod:`repro.sched.tasks`) —
NVMe slot workers and the background firmware work (GC, delta
compression, retention expiry, patrol scrub) re-expressed as daemon
tasks.  See docs/SCHEDULER.md for the event model and the determinism
argument.
"""

from repro.sched.core import (
    Acquire,
    At,
    Delay,
    EventLoop,
    FifoTieBreak,
    Join,
    Lane,
    Release,
    SchedulerError,
    SeededTieBreak,
    Task,
)

__all__ = [
    "Acquire",
    "At",
    "Delay",
    "EventLoop",
    "FifoTieBreak",
    "Join",
    "Lane",
    "Release",
    "SchedulerError",
    "SeededTieBreak",
    "Task",
]
