"""Deterministic discrete-event scheduler on :class:`SimClock`.

The event loop is the concurrency substrate the async device core runs
on (ROADMAP item 1): an event heap keyed by ``(t_us, tie, seq)`` and
cooperative tasks written as plain generators.  A task yields *wait
instructions* — :class:`Delay`, :class:`At`, :class:`Acquire`,
:class:`Release`, :class:`Join` — and the loop resumes it when the wait
is satisfied, advancing the shared clock to each event's timestamp.

Determinism is the design center, not an afterthought:

* Every event carries a monotonically increasing sequence number, so
  two events at the same microsecond have a total order (FIFO by
  default).  There is no wall clock, no global RNG, no id()-ordering.
* The tie component of the heap key comes from a pluggable
  :class:`TieBreak`.  The default (:class:`FifoTieBreak`) preserves
  submission order; :class:`SeededTieBreak` permutes same-timestamp
  events with a pure integer hash so the schedule fuzzer
  (``tests/sched``) can explore alternative legal interleavings while
  staying bit-reproducible per seed.
* Tasks may only suspend *between* atomic sections (enforced statically
  by the ``concurrency-yield-in-atomic`` analyzer rule), so every
  interleaving the loop can produce is one the interleaving contract
  (docs/interleaving-contract.md) already declares safe.
"""

import heapq

from repro.common.errors import ReproError


class SchedulerError(ReproError):
    """A task misused the scheduler (bad yield, lane protocol breach)."""


# --- Wait instructions ---------------------------------------------------------
#
# Instances of these classes are what tasks yield.  They are deliberately
# tiny value objects: the loop interprets them, tasks never call back
# into the loop directly.  Their constructors are registered as
# scheduler-yield primitives in the concurrency model
# (``SCHEDULER_YIELD_QUALNAMES``) so constructing one inside an
# ``@atomic_section`` fails the deep lint.


class Delay:
    """Resume this task ``delta_us`` microseconds from now."""

    __slots__ = ("delta_us",)

    def __init__(self, delta_us):
        if not isinstance(delta_us, int) or isinstance(delta_us, bool):
            raise SchedulerError(
                "Delay takes integer microseconds, got %r" % (delta_us,)
            )
        if delta_us < 0:
            raise SchedulerError("cannot delay by a negative duration")
        self.delta_us = delta_us


class At:
    """Resume this task at ``t_us`` (immediately if already past)."""

    __slots__ = ("t_us",)

    def __init__(self, t_us):
        if not isinstance(t_us, int) or isinstance(t_us, bool):
            raise SchedulerError(
                "At takes an integer microsecond timestamp, got %r" % (t_us,)
            )
        self.t_us = t_us


class Acquire:
    """Suspend until the lane is free, then hold it."""

    __slots__ = ("lane",)

    def __init__(self, lane):
        self.lane = lane


class Release:
    """Hand the lane to its earliest waiter (FIFO) and keep running."""

    __slots__ = ("lane",)

    def __init__(self, lane):
        self.lane = lane


class Join:
    """Suspend until ``task`` completes; resumes with its result."""

    __slots__ = ("task",)

    def __init__(self, task):
        self.task = task


# --- Tie-breaking --------------------------------------------------------------


class FifoTieBreak:
    """Same-timestamp events run in submission order (the default)."""

    def key(self, t_us, seq):
        return 0


class SeededTieBreak:
    """Permute same-timestamp event order with a pure integer hash.

    The schedule fuzzer's knob: each seed induces one deterministic
    alternative ordering of events that share a timestamp.  The mix is
    a splitmix64-style avalanche over ``(seed, t_us, seq)`` — no
    ``random`` module, no process-dependent hashing — so the same seed
    explores the same interleaving on every run and platform.
    """

    _MASK = (1 << 64) - 1

    def __init__(self, seed):
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise SchedulerError("tie-break seed must be an int")
        self.seed = seed

    def key(self, t_us, seq):
        z = (self.seed * 0x9E3779B97F4A7C15 + t_us * 0xBF58476D1CE4E5B9
             + seq * 0x94D049BB133111EB) & self._MASK
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & self._MASK
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & self._MASK
        return z ^ (z >> 31)


# --- Tasks ---------------------------------------------------------------------


class Task:
    """One cooperative task: a generator plus its scheduling state."""

    __slots__ = (
        "name",
        "root",
        "gen",
        "daemon",
        "done",
        "result",
        "joiners",
        "held_lanes",
    )

    def __init__(self, gen, name, root, daemon):
        self.gen = gen
        self.name = name
        #: Task-root name from the interleaving contract (trace label).
        self.root = root
        #: Daemon tasks never keep the loop alive: once every non-daemon
        #: task has finished, pending daemon events are discarded.
        self.daemon = daemon
        self.done = False
        self.result = None
        self.joiners = []
        self.held_lanes = []

    def __repr__(self):
        state = "done" if self.done else "pending"
        return "Task(%s, %s)" % (self.name, state)


class Lane:
    """An exclusive resource with FIFO handoff (queue slot, append point).

    Channel/chip *occupancy* stays in the flash timelines — a lane is
    for host-side mutual exclusion, e.g. serializing submission-queue
    consumption among the slot workers of one queue pair.
    """

    __slots__ = ("name", "holder", "waiters")

    def __init__(self, name):
        self.name = name
        self.holder = None
        self.waiters = []

    @property
    def free(self):
        return self.holder is None

    def __repr__(self):
        holder = self.holder.name if self.holder is not None else "free"
        return "Lane(%s, %s, %d waiting)" % (self.name, holder, len(self.waiters))


# --- The loop ------------------------------------------------------------------


class EventLoop:
    """Runs tasks against a shared :class:`SimClock` until quiescence."""

    def __init__(self, clock, tie_break=None, obs=None):
        self.clock = clock
        self._heap = []
        self._seq = 0
        self._tie = tie_break if tie_break is not None else FifoTieBreak()
        #: Observability scope (metrics + trace) or None; sched events
        #: land in the ``sched`` trace category.
        self.obs = obs
        #: Non-daemon tasks not yet finished: the loop's liveness count.
        self._live = 0
        self.events_dispatched = 0
        self.tasks_spawned = 0

    @property
    def now_us(self):
        return self.clock.now_us

    # --- Spawning and scheduling ------------------------------------------

    def spawn(self, gen, name, root="task", daemon=False, at_us=None):
        """Register a generator as a task; it first runs at ``at_us``.

        Returns the :class:`Task`.  ``at_us`` defaults to now; a time in
        the past is clamped to now (the loop never travels backwards).
        """
        task = Task(gen, name, root, daemon)
        self.tasks_spawned += 1
        if not daemon:
            self._live += 1
        start = self.now_us if at_us is None else max(self.now_us, at_us)
        self._push(task, start, None)
        self._trace("task-spawn", start, task=name, root=root)
        return task

    def _push(self, task, t_us, send_value):
        self._seq += 1
        heapq.heappush(
            self._heap,
            (t_us, self._tie.key(t_us, self._seq), self._seq, task, send_value),
        )

    # --- Running ----------------------------------------------------------

    def run(self, until_us=None):
        """Dispatch events until no non-daemon work remains.

        With ``until_us`` the loop additionally stops before dispatching
        any event past that time (the event stays queued).  Returns the
        number of events dispatched by this call.
        """
        dispatched = 0
        while self._heap and self._live > 0:
            entry = self._heap[0]
            if until_us is not None and entry[0] > until_us:
                break
            heapq.heappop(self._heap)
            t_us, _tie, _seq, task, value = entry
            if task.done:
                continue
            self.clock.advance_to(t_us)
            self.events_dispatched += 1
            dispatched += 1
            self._step(task, value)
        return dispatched

    def _step(self, task, value):
        """Resume one task and interpret the instruction it yields."""
        try:
            instruction = task.gen.send(value)
        except StopIteration as stop:
            self._finish(task, stop.value)
            return
        if isinstance(instruction, Delay):
            self._push(task, self.now_us + instruction.delta_us, None)
        elif isinstance(instruction, At):
            self._push(task, max(self.now_us, instruction.t_us), None)
        elif isinstance(instruction, Acquire):
            self._acquire(task, instruction.lane)
        elif isinstance(instruction, Release):
            self._release(task, instruction.lane)
        elif isinstance(instruction, Join):
            self._join(task, instruction.task)
        else:
            raise SchedulerError(
                "task %s yielded %r; tasks must yield a wait instruction"
                % (task.name, instruction)
            )

    def _finish(self, task, result):
        if task.held_lanes:
            raise SchedulerError(
                "task %s finished still holding %s"
                % (task.name, ", ".join(l.name for l in task.held_lanes))
            )
        task.done = True
        task.result = result
        if not task.daemon:
            self._live -= 1
        self._trace("task-done", self.now_us, task=task.name, root=task.root)
        for joiner in task.joiners:
            self._push(joiner, self.now_us, result)
        task.joiners = []

    def _acquire(self, task, lane):
        if lane.holder is None:
            lane.holder = task
            task.held_lanes.append(lane)
            self._push(task, self.now_us, lane)
        else:
            lane.waiters.append(task)

    def _release(self, task, lane):
        if lane.holder is not task:
            raise SchedulerError(
                "task %s released lane %s held by %s"
                % (
                    task.name,
                    lane.name,
                    lane.holder.name if lane.holder else "nobody",
                )
            )
        task.held_lanes.remove(lane)
        if lane.waiters:
            next_task = lane.waiters.pop(0)
            lane.holder = next_task
            next_task.held_lanes.append(lane)
            self._push(next_task, self.now_us, lane)
        else:
            lane.holder = None
        # The releasing task keeps running in the same dispatch slot.
        self._push(task, self.now_us, None)

    def _join(self, task, target):
        if target.done:
            self._push(task, self.now_us, target.result)
        else:
            target.joiners.append(task)

    # --- Introspection ----------------------------------------------------

    @property
    def idle(self):
        """True when no non-daemon task has a pending event."""
        return self._live == 0

    def pending_events(self):
        """Number of queued (undispatched) events, daemons included."""
        return len(self._heap)

    def _trace(self, name, t_us, **detail):
        if self.obs is None:
            return
        tr = self.obs.trace
        if tr.enabled:
            tr.emit("sched", name, t_us, **detail)

    def __repr__(self):
        return "EventLoop(t=%d us, %d live, %d queued)" % (
            self.now_us,
            self._live,
            len(self._heap),
        )
