"""Background firmware work expressed as scheduler tasks.

Each of the device's background activities — garbage collection, delta
compression, retention expiry, patrol scrub — already exists as a
synchronous step method on the SSD that does one bounded unit of work
and reports its cost.  The generators here wrap those steps into daemon
tasks for the :class:`~repro.sched.core.EventLoop`: do one step, sleep
for the step's duration (the firmware core is busy that long), or for
an idle poll interval when there was nothing to do.

The task-root names used by :func:`spawn_device_daemons` are the ones
declared in the interleaving contract
(``repro.analysis.concurrency.model.TASK_ROOTS``), so the schedules the
loop produces are exactly the interleavings the deep lint proves safe.
"""

from repro.sched.core import Delay
from repro.timessd.ssd import TimeSSD

#: Poll intervals, in microseconds, when a background task finds no
#: work.  Chosen to stagger the daemons so their idle wakeups don't all
#: collide on the same timestamp.
GC_IDLE_US = 2_000
COMPRESS_IDLE_US = 3_000
SCRUB_IDLE_US = 10_000
EXPIRY_IDLE_US = 5_000


def background_gc_task(loop, ssd, idle_us=GC_IDLE_US):
    """Run opportunistic GC rounds whenever the free pool sags."""
    while True:
        cost_us = ssd.background_gc_step(loop.now_us)
        yield Delay(cost_us if cost_us > 0 else idle_us)


def background_compress_task(loop, ssd, idle_us=COMPRESS_IDLE_US, budget_us=500):
    """Delta-compress retained page versions in bounded budgets."""
    while True:
        spent_us = ssd.background_compress_step(loop.now_us, budget_us)
        yield Delay(spent_us if spent_us > 0 else idle_us)


def retention_expiry_task(loop, ssd, target_window_us, idle_us=EXPIRY_IDLE_US):
    """Shrink the retention window toward ``target_window_us``.

    One segment per wakeup; the SSD's own floor guard keeps the window
    from ever dropping below ``config.retention_floor_us``.
    """
    while True:
        ssd.expire_retention_step(loop.now_us, target_window_us)
        yield Delay(idle_us)


def background_scrub_task(loop, ssd, idle_us=SCRUB_IDLE_US, budget_us=1_000):
    """Patrol-scrub a bounded slice of blocks per wakeup."""
    while True:
        spent_us = ssd.background_scrub_step(loop.now_us, budget_us)
        yield Delay(spent_us if spent_us > 0 else idle_us)


def spawn_device_daemons(loop, ssd, retention_target_us=None):
    """Spawn the device's background tasks as daemons on ``loop``.

    Only the tasks the device can actually perform are spawned: scrub
    needs a patrol scrubber, compression and retention expiry need a
    :class:`TimeSSD`.  Retention expiry additionally needs an explicit
    ``retention_target_us`` — expiring history is a policy decision,
    not a default.  Returns the spawned :class:`Task` list.
    """
    tasks = [
        loop.spawn(
            background_gc_task(loop, ssd),
            name="bg-gc",
            root="background-gc",
            daemon=True,
        )
    ]
    if getattr(ssd, "scrubber", None) is not None:
        tasks.append(
            loop.spawn(
                background_scrub_task(loop, ssd),
                name="bg-scrub",
                root="background-scrub",
                daemon=True,
            )
        )
    if isinstance(ssd, TimeSSD):
        tasks.append(
            loop.spawn(
                background_compress_task(loop, ssd),
                name="bg-compress",
                root="background-compression",
                daemon=True,
            )
        )
        if retention_target_us is not None:
            tasks.append(
                loop.spawn(
                    retention_expiry_task(loop, ssd, retention_target_us),
                    name="bg-expiry",
                    root="retention-expiry",
                    daemon=True,
                )
            )
    return tasks
