"""Project Almanac reproduction: a time-traveling SSD (EuroSys '19).

Top-level convenience exports; see the subpackages for the full API:

* :mod:`repro.timessd` — the TimeSSD device;
* :mod:`repro.timekits` — storage-state queries and rollback;
* :mod:`repro.ftl` / :mod:`repro.flash` — the baseline FTL and NAND model;
* :mod:`repro.fs`, :mod:`repro.workloads`, :mod:`repro.security`,
  :mod:`repro.nvme`, :mod:`repro.bench` — substrates and harnesses.
"""

__version__ = "1.0.0"

from repro.common.clock import SimClock
from repro.flash.geometry import FlashGeometry
from repro.flash.timing import FlashTiming
from repro.ftl.ssd import RegularSSD, SSDConfig
from repro.timekits.api import TimeKits
from repro.timessd.config import ContentMode, TimeSSDConfig
from repro.timessd.ssd import TimeSSD

__all__ = [
    "__version__",
    "SimClock",
    "FlashGeometry",
    "FlashTiming",
    "RegularSSD",
    "SSDConfig",
    "TimeSSD",
    "TimeSSDConfig",
    "ContentMode",
    "TimeKits",
]
