"""Background patrol scrubbing and data refresh (docs/RELIABILITY.md).

Retention leakage and read disturb push a page's raw bit errors toward
the ECC budget long before it actually becomes unreadable.  Real
controllers exploit that window: a background *patrol* reads through
sealed blocks on a rotating schedule, watches the corrected-bit counts,
and *refreshes* (rewrites) any page that has drifted past a risk
watermark — resetting its retention clock — before the data is lost.

The :class:`PatrolScrubber` runs from the same idle-window hook as
background GC and delta compression, after both, and never overruns the
window: every step is admitted against a conservative time bound, so the
request that ends the window never waits on scrub work.

Refresh dispatch:

* a **valid** page is migrated exactly like a GC migration — fresh copy
  via :meth:`~repro.ftl.ssd.BaseSSD.program_with_retry`, mapping moved
  via the public :meth:`~repro.ftl.ssd.BaseSSD.remap_migrated_page`
  path, OOB (timestamp, back-pointer) carried over unchanged;
* an **invalid** page is handed to the device's
  :meth:`~repro.ftl.ssd.BaseSSD._refresh_retained_page` hook — a no-op
  on the base SSD (stale pages are garbage), while TimeSSD compresses
  the retained version into its delta chain, which preserves the
  version timestamp and chain linkage; retention-expired pages are
  marked reclaimable and *skipped*, not refreshed.

The scrubber is also the device's path out of read-only degraded mode:
each run finishes by retiring grown-bad blocks still holding data and
then asking the SSD to heal (:meth:`~repro.ftl.ssd.BaseSSD._maybe_heal`
applies the dwell/hysteresis policy).

Determinism: patrol order is a pure function of firmware state (sealed
blocks sorted oldest-programmed-first, rotating cursor), the at-risk
queue is FIFO, and the only randomness anywhere below is the
:class:`~repro.flash.reliability.ReliabilityEngine`'s own seeded media
stream — scrub never touches the foreground RNG (pinned by the
``effects-scrub-rng`` contract).
"""

from repro.common.atomic import atomic_section
from repro.common.errors import ProgramFailureError, UncorrectableReadError
from repro.flash.page import PageState
from repro.ftl.block_manager import BlockKind, StreamId

__all__ = ["PatrolScrubber"]


class PatrolScrubber:
    """Idle-time patrol reader + at-risk page refresher for one SSD."""

    def __init__(self, ssd):
        self._ssd = ssd
        #: FIFO of pages a foreground/ladder read flagged as at-risk.
        self._at_risk = []
        self._at_risk_set = set()
        #: Rotating position in the oldest-first patrol order, so
        #: successive windows continue the sweep instead of re-reading
        #: the same oldest block forever.
        self._patrol_cursor = 0
        metrics = ssd.obs.metrics
        self._m_runs = metrics.counter("scrub.runs")
        self._m_patrol_reads = metrics.counter("scrub.patrol_reads")
        self._m_refreshed_valid = metrics.counter("scrub.refreshed_valid")
        self._m_refreshed_retained = metrics.counter("scrub.refreshed_retained")
        self._m_skipped_expired = metrics.counter("scrub.skipped_expired")
        self._m_at_risk_queued = metrics.counter("scrub.at_risk_queued")
        self._m_uncorrectable = metrics.counter("scrub.uncorrectable")
        self._m_blocks_retired = metrics.counter("scrub.blocks_retired")

    # --- Foreground feedback -------------------------------------------------

    @property
    def _risk_bits(self):
        """Corrected-bit watermark: at/above it a page is at-risk."""
        engine = self._ssd.device.reliability
        if engine is None:
            return None
        budget = engine.model.ecc_correctable_bits
        return max(1, int(budget * self._ssd.config.scrub_risk_fraction))

    def observe_read(self, ppa, corrected_bits, retry_step=0):
        """Feedback from the read-retry ladder: queue at-risk pages.

        A page is at-risk when ECC corrected at least the watermark's
        worth of bits, or when the normal (step-0) sense failed and a
        retry was needed — either way the next read may be the one that
        exceeds the budget.
        """
        risk = self._risk_bits
        if risk is None:
            return
        if corrected_bits < risk and retry_step == 0:
            return
        if ppa in self._at_risk_set:
            return
        self._at_risk_set.add(ppa)
        self._at_risk.append(ppa)
        self._m_at_risk_queued.inc()

    def at_risk_backlog(self):
        return len(self._at_risk)

    # --- The idle-window entry point -----------------------------------------

    def run(self, start_us, deadline_us):
        """One scrub pass inside ``[start_us, deadline_us)``.

        Order: drain the at-risk queue (pages known to be near the
        budget), then patrol sealed data blocks oldest-programmed-first,
        then retire grown-bad blocks, then attempt a degraded-mode heal.
        Returns the time cursor where work stopped.
        """
        ssd = self._ssd
        t = start_us
        budget_pages = ssd.config.scrub_pages_per_run
        refresh_bound = self._step_bound()
        started = False
        # -- 1. at-risk queue (cheapest wins first: already localized) --
        while self._at_risk and budget_pages > 0:
            if t + refresh_bound > deadline_us:
                break
            if not started:
                started = True
                self._m_runs.inc()
            ppa = self._at_risk.pop(0)
            self._at_risk_set.discard(ppa)
            t = self._scrub_page(ppa, t, force_refresh=True)
            budget_pages -= 1
        # -- 2. patrol sweep, oldest-programmed-first -------------------
        order = self._patrol_order()
        for pba in self._rotate(order):
            if budget_pages <= 0 or t + refresh_bound > deadline_us:
                break
            for ppa in self._patrol_candidates(pba):
                if budget_pages <= 0 or t + refresh_bound > deadline_us:
                    break
                if not ssd.block_manager.is_valid(ppa) and self._is_reclaimable(
                    ppa
                ):
                    # An earlier refresh in this very walk compressed the
                    # page's version into the delta chain: nothing left
                    # for a patrol read to protect.
                    continue
                if not started:
                    started = True
                    self._m_runs.inc()
                self._m_patrol_reads.inc()
                t = self._scrub_page(ppa, t)
                budget_pages -= 1
            else:
                # Block fully patrolled: advance the rotating cursor.
                self._patrol_cursor += 1
        # -- 3. retire grown-bad blocks still holding data --------------
        t = self._retire_failed_blocks(t, deadline_us)
        # -- 4. degraded-mode heal (decision only; costs no media ops) --
        ssd._maybe_heal(t)
        return t

    def _step_bound(self):
        """Conservative per-page cost bound used for window admission.

        Worst case is a full-ladder read plus a refresh: valid-page
        migration costs a program; a retained refresh on TimeSSD
        additionally walks and compresses a short chain.
        """
        ssd = self._ssd
        timing = ssd.device.timing
        ladder = timing.read_us * (1 + ssd.config.read_retry_limit)
        return (
            ladder
            + 2 * timing.read_us
            + timing.delta_compress_us
            + timing.program_us
            + 2 * timing.bus_transfer_us
        )

    def _patrol_order(self):
        """Sealed data blocks, oldest-programmed-first (ties by PBA)."""
        ssd = self._ssd
        blocks = ssd.device.blocks
        candidates = [
            pba for pba in ssd.block_manager.sealed_blocks(BlockKind.DATA)
        ]
        candidates.sort(key=lambda pba: (blocks[pba].last_program_us, pba))
        return candidates

    def _rotate(self, order):
        if not order:
            return order
        start = self._patrol_cursor % len(order)
        return order[start:] + order[:start]

    def _patrol_candidates(self, pba):
        """PPAs in ``pba`` worth a patrol read, via one columnar OOB sweep.

        Skips pages a patrol read could not help: erased or torn/burned
        (batch sequence-tag check).  One
        :meth:`~repro.flash.device.FlashDevice.scan_block_oob` sweep
        replaces the old page-at-a-time ``peek_page`` walk; it is safe to
        snapshot because a sealed block's programmed/intact columns are
        immutable during the walk.  Validity is *not* snapshotted — a
        refresh earlier in the same walk can compress a later candidate
        into the delta chain, so the caller re-checks it per page.
        """
        ssd = self._ssd
        scan = ssd.device.scan_block_oob(pba)
        first = ssd.device.geometry.first_page_of_block(pba)
        return [
            first + offset
            for offset in range(scan.write_pointer)
            if scan.intact[offset]
        ]

    def _is_reclaimable(self, ppa):
        index = getattr(self._ssd, "index", None)
        return index.is_reclaimable(ppa) if index is not None else False

    # --- Per-page scrub ------------------------------------------------------

    def _scrub_page(self, ppa, now_us, force_refresh=False):
        """Ladder-read one page; refresh it when at/over the watermark.

        ``force_refresh`` skips the watermark comparison — used for
        queued at-risk pages, whose foreground read already crossed it.
        """
        ssd = self._ssd
        page = ssd.device.peek_page(ppa)
        if (
            page.state is not PageState.PROGRAMMED
            or page.oob is None
            or not page.oob.intact
        ):
            return now_us
        try:
            result = ssd.read_page_with_retry(ppa, now_us)
        except UncorrectableReadError:
            # Lost despite the full ladder: nothing left to refresh.
            # The host sees the same error if it asks; scrub only
            # accounts it (and the patrol moves on).
            self._m_uncorrectable.inc()
            return now_us
        t = result.complete_us
        at_risk = force_refresh or (
            result.corrected_bits >= (self._risk_bits or 1)
        )
        if not at_risk:
            return t
        if ssd.block_manager.is_valid(ppa):
            try:
                t = self._refresh_valid(ppa, result, t)
                self._m_refreshed_valid.inc()
                self._unqueue(ppa)
                self._trace_refresh(ppa, t, kind="valid")
            except ProgramFailureError:
                # Media refused every copy attempt; the source page is
                # still intact and mapped, so nothing is lost — the next
                # pass retries after the failed block is condemned.
                pass
            return t
        try:
            t, refreshed = ssd._refresh_retained_page(ppa, t)
        except UncorrectableReadError:
            # The chain walk behind the refresh hit a page even the full
            # ladder could not read.  Leave it: GC's reclaim accounts
            # the loss when the block goes; scrub only moves on.
            self._m_uncorrectable.inc()
            self._unqueue(ppa)
            return t
        self._unqueue(ppa)
        if refreshed:
            self._m_refreshed_retained.inc()
            self._trace_refresh(ppa, t, kind="retained")
        else:
            self._m_skipped_expired.inc()
        return t

    def _unqueue(self, ppa):
        """Drop a just-handled page from the at-risk queue (its own
        ladder read may have re-queued it a moment ago)."""
        if ppa in self._at_risk_set:
            self._at_risk_set.discard(ppa)
            self._at_risk.remove(ppa)

    @atomic_section(
        "refresh is a one-page GC migration: program + validity flip + "
        "remap commit together, or a competing read could land on a "
        "mapping that moved before its copy was durable",
        restores_state=True,  # program_with_retry leaves firmware state
        # untouched on failure; the source page stays valid and mapped
    )
    def _refresh_valid(self, ppa, result, now_us):
        """Migrate one valid page to a fresh location (same OOB)."""
        ssd = self._ssd
        bm = ssd.block_manager
        new_ppa, t = ssd.program_with_retry(
            lambda: bm.allocate_page(StreamId.GC),
            result.data,
            result.oob,
            now_us,
        )
        bm.mark_valid(new_ppa)
        bm.invalidate_page(ppa)
        ssd.remap_migrated_page(result.oob, ppa, new_ppa)
        index = getattr(ssd, "index", None)
        if index is not None:
            # The stale copy is a byte-identical duplicate of the
            # migrated head — the same version, not an older one.  PRT-
            # mark it so patrol and delta compression never mistake it
            # for retained history (a delta record of it would be
            # self-referential: version_ts == ref_ts).
            index.mark_reclaimable(ppa)
        return t

    # --- Pool repair ---------------------------------------------------------

    def _retire_failed_blocks(self, now_us, deadline_us):
        """Relocate + retire grown-bad data blocks (degraded-mode repair).

        A block that grew a bad page mid-write was condemned but still
        holds valid data; until it is emptied and released it counts
        against the pool.  Relocation ends with ``release_block``, which
        sees ``Block.failed`` and retires it for good.
        """
        ssd = self._ssd
        geo = ssd.device.geometry
        timing = ssd.device.timing
        block_bound = (
            geo.pages_per_block
            * (timing.read_us + timing.program_us + timing.delta_compress_us)
            + timing.erase_us
        )
        t = now_us
        for pba in self._failed_data_blocks():
            if t + block_bound > deadline_us:
                break
            before = (ssd.program_failures, ssd.erase_failures)
            ssd.relocate_block(pba, t)
            if (
                ssd.degraded_reason is not None
                and ssd._degraded_failure_mark == before
                and ssd.program_failures == before[0]
            ):
                # Retiring known-bad media raises the erase-failure
                # counter, but it is the repair, not fresh instability:
                # fold it into the heal mark so it does not restart the
                # dwell.  Any *program* failure during the relocation is
                # a new bad block and keeps gating the heal.
                ssd._degraded_failure_mark = (
                    before[0],
                    ssd.erase_failures,
                )
            t += block_bound
            self._m_blocks_retired.inc()
            tr = ssd.obs.trace
            if tr.enabled:
                tr.emit("scrub", "retire", t, pba=pba)
        return t

    def _failed_data_blocks(self):
        ssd = self._ssd
        return [
            pba
            for pba in ssd.block_manager.sealed_blocks(BlockKind.DATA)
            if ssd.device.blocks[pba].failed
        ]

    def _trace_refresh(self, ppa, now_us, kind):
        tr = self._ssd.obs.trace
        if tr.enabled:
            tr.emit("scrub", "refresh", now_us, ppa=ppa, kind=kind)
