"""Checkpointed recovery summaries: sublinear ``rebuild_from_flash``.

Without checkpoints, mount-time recovery sweeps the OOB metadata of
every programmed page — O(total pages), the paper's own worst case
(§3.7 rebuilds *all* tables from OOB).  Real FTLs bound that by
periodically persisting translation snapshots; this module does the
columnar-era equivalent: a **checkpoint** is a per-block *scan cache*
written to flash in dedicated translation blocks.

Format
------
A checkpoint with sequence number ``seq`` occupies ``parts + 1`` pages
in ``BlockKind.TRANSLATION`` blocks, all tagged
``OOBMetadata.TRANSLATION_TAG``:

* ``parts`` continuation pages carrying :class:`CheckpointPart` — they
  model the bulk of the serialized summary (the model stores objects,
  so only the root carries the real payload, but the flash footprint
  matches the serialized size);
* one root page carrying the :class:`CheckpointImage`, programmed
  **last** — the commit record.  A checkpoint is valid iff its root is
  intact and all ``parts`` continuation pages with the same ``seq``
  are intact; a power cut anywhere mid-checkpoint therefore leaves the
  previous checkpoint in force.

Each :class:`BlockSummary` caches one *sealed, full, data* block's scan
result, keyed by the block's media truth: its erase count.  A block's
page content is a pure function of ``(erase_count, write_pointer)`` —
NAND programs append-only at the write pointer and only erase resets it
— so at recovery a summary applies iff the block is still full, not
failed, and its erase count matches.  Anything else (erased and reused,
GC'd, grown bad, partially programmed) falls back to the columnar scan,
which makes checkpointed recovery *exactly equivalent* to a full sweep
— the checkpoint is an accelerator, never an authority.

Delta and translation blocks are never summarized: delta blocks carry
record payloads recovery must re-read anyway, and translation blocks
are the checkpoint's own storage.

Determinism: the writer runs from the host-request path on a pure
function of firmware state; recovery stays RNG-free (the
``effects-recovery-rng`` contract covers this module).
"""

from repro.common.atomic import atomic_section
from repro.common.errors import DeviceFullError, ProgramFailureError
from repro.flash.page import NULL_PPA, OOBMetadata, seq_tag_of
from repro.ftl.block_manager import BlockKind

#: Keyed append stream for checkpoint pages (unstriped: checkpoints are
#: sequential housekeeping writes, not latency-critical user traffic).
CHECKPOINT_STREAM = ("checkpoint",)

#: Modeled serialized size of one per-page summary entry and one block
#: header, used to compute the checkpoint's flash footprint.
_ENTRY_BYTES = 16
_BLOCK_HEADER_BYTES = 24
_ROOT_HEADER_BYTES = 64


class BlockSummary:
    """Cached scan of one sealed, full data block."""

    __slots__ = ("erase_count", "torn_pages", "entries")

    def __init__(self, erase_count, torn_pages, entries):
        self.erase_count = erase_count
        self.torn_pages = torn_pages
        #: Tuple of ``(offset, lpa, timestamp_us)`` for every intact
        #: user page in the block.
        self.entries = entries


class CheckpointPart:
    """Continuation page payload (serialized-summary overflow)."""

    __slots__ = ("seq", "index")

    def __init__(self, seq, index):
        self.seq = seq
        self.index = index


class CheckpointImage:
    """Root page payload: the summary map plus the commit metadata."""

    __slots__ = ("seq", "created_us", "parts", "summaries")

    def __init__(self, seq, created_us, parts, summaries):
        self.seq = seq
        self.created_us = created_us
        self.parts = parts
        #: ``{pba: BlockSummary}``
        self.summaries = summaries


class CheckpointWriter:
    """Periodic checkpoint emitter owned by one SSD.

    Triggered every ``checkpoint_interval_blocks`` blocks' worth of page
    programs (a deterministic O(1) trigger on the device's own program
    counter).  Summaries are cached between checkpoints keyed by erase
    count, so steady state re-scans only blocks sealed since the last
    checkpoint.
    """

    def __init__(self, ssd):
        self._ssd = ssd
        self.seq = 0
        self._programs_mark = 0
        #: Translation blocks this writer has ever appended into (plus
        #: any adopted from recovery) — the superseded-cleanup universe.
        self._blocks = set()
        #: ``{pba: BlockSummary}`` — reusable iff the erase count still
        #: matches (same immutability argument as at recovery).
        self._cache = {}
        metrics = ssd.obs.metrics
        self._m_written = metrics.counter("recovery.checkpoint.written")
        self._m_pages = metrics.counter("recovery.checkpoint.pages")
        self._m_blocks = metrics.counter("recovery.checkpoint.blocks_summarized")
        self._m_reused = metrics.counter("recovery.checkpoint.summaries_reused")
        self._m_superseded = metrics.counter("recovery.checkpoint.superseded_erased")
        self._m_aborted = metrics.counter("recovery.checkpoint.aborted")

    def adopt(self, translation_blocks, seq):
        """Re-home recovery's findings (post power cut).

        The writer's RAM state is volatile; recovery hands back the
        translation blocks it found and the newest valid sequence
        number so new checkpoints supersede, not collide with, the old.
        """
        self._blocks.update(translation_blocks)
        if seq is not None:
            self.seq = max(self.seq, seq)
        self._programs_mark = self._ssd.device.counters.page_programs

    def maybe_checkpoint(self, now_us):
        """Write a checkpoint if enough writes happened since the last."""
        ssd = self._ssd
        if ssd.degraded_reason is not None:
            return now_us  # read-only mode: no housekeeping writes
        interval = ssd.config.checkpoint_interval_blocks
        threshold = interval * ssd.device.geometry.pages_per_block
        if ssd.device.counters.page_programs - self._programs_mark < threshold:
            return now_us
        return self.write_checkpoint(now_us)

    @atomic_section(
        "summary build + part programs + root (commit) program + "
        "superseded-block erase are one checkpoint transaction: a scan "
        "interleaved between parts would adopt a checkpoint whose root "
        "is not yet durable",
        restores_state=True,  # the root page programs last, so an abort
        # (device full, media failure) leaves the previous checkpoint in
        # force; orphaned part pages are superseded garbage
    )
    def write_checkpoint(self, now_us):
        """Emit one checkpoint; returns the time cursor afterwards.

        Aborts quietly (previous checkpoint stays in force) when the
        device cannot take the housekeeping writes right now.
        """
        ssd = self._ssd
        device = ssd.device
        geo = device.geometry
        # Re-arm the trigger first: an aborted attempt must not retry on
        # every subsequent host write while the pool is exhausted.
        self._programs_mark = device.counters.page_programs
        self.seq += 1
        summaries, reused = self._build_summaries()
        size = _ROOT_HEADER_BYTES + sum(
            _BLOCK_HEADER_BYTES + _ENTRY_BYTES * len(s.entries)
            for s in summaries.values()
        )
        total_pages = max(1, -(-size // geo.page_size))
        image = CheckpointImage(self.seq, now_us, total_pages - 1, summaries)
        oob = OOBMetadata(
            lpa=OOBMetadata.TRANSLATION_TAG,
            back_pointer=NULL_PPA,
            timestamp_us=now_us,
        )
        bm = ssd.block_manager
        written_blocks = set()
        t = now_us
        try:
            for index in range(image.parts):
                ppa, t = ssd.program_with_retry(
                    self._allocate,
                    CheckpointPart(image.seq, index),
                    oob,
                    t,
                )
                written_blocks.add(geo.block_of_page(ppa))
            # The commit record: the checkpoint exists once this lands.
            ppa, t = ssd.program_with_retry(self._allocate, image, oob, t)
            written_blocks.add(geo.block_of_page(ppa))
        except (DeviceFullError, ProgramFailureError):
            self._blocks.update(written_blocks)
            self._m_aborted.inc()
            return t
        self._blocks.update(written_blocks)
        device.counters.translation_writes += image.parts + 1
        self._m_written.inc()
        self._m_pages.inc(image.parts + 1)
        self._m_blocks.inc(len(summaries))
        self._m_reused.inc(reused)
        t = self._erase_superseded(written_blocks, t)
        tr = ssd.obs.trace
        if tr.enabled:
            tr.emit(
                "checkpoint",
                "written",
                t,
                seq=image.seq,
                pages=image.parts + 1,
                blocks=len(summaries),
            )
        return t

    def _allocate(self):
        return self._ssd.block_manager.allocate_page_keyed(
            CHECKPOINT_STREAM, BlockKind.TRANSLATION, striped=False
        )

    def _build_summaries(self):
        """Summaries for every sealed, full, healthy data block."""
        ssd = self._ssd
        device = ssd.device
        core = device.core
        ppb = device.geometry.pages_per_block
        summaries = {}
        reused = 0
        for pba in ssd.block_manager.sealed_blocks(BlockKind.DATA):
            if core.failed[pba] or core.write_pointer[pba] != ppb:
                continue
            cached = self._cache.get(pba)
            if cached is not None and cached.erase_count == core.erase_count[pba]:
                summaries[pba] = cached
                reused += 1
                continue
            summary = self._summarize(device, pba)
            if summary is None:
                continue
            self._cache[pba] = summary
            summaries[pba] = summary
        # Drop cache entries for blocks that left the sealed-data set
        # (erased, retired, condemned) so the cache tracks the pool.
        self._cache = dict(summaries)
        return summaries, reused

    @staticmethod
    def _summarize(device, pba):
        """Scan one full block into a summary (None if not summarizable)."""
        scan = device.scan_block_oob(pba)
        entries = []
        torn = 0
        for offset in range(scan.write_pointer):
            if not scan.intact[offset]:
                torn += 1
                continue
            lpa = scan.lpa[offset]
            if lpa < 0:
                # Housekeeping page inside a data block — should not
                # happen, but a summary must never hide one from
                # recovery.  Leave this block to the full scan.
                return None
            entries.append((offset, lpa, scan.timestamp_us[offset]))
        return BlockSummary(scan.erase_count, torn, tuple(entries))

    def _erase_superseded(self, written_blocks, now_us):
        """Erase translation blocks the new checkpoint made obsolete."""
        ssd = self._ssd
        bm = ssd.block_manager
        active = bm.active_block(CHECKPOINT_STREAM)
        t = now_us
        for pba in sorted(self._blocks):
            if pba in written_blocks or pba == active:
                continue
            self._blocks.discard(pba)
            if bm.kind(pba) is not BlockKind.TRANSLATION:
                # The block left our ownership since we wrote into it
                # (e.g. a wear-leveling relocation erased and reused
                # it).  It is not ours to erase anymore.
                continue
            ssd._erase_and_release(pba, t)
            self._m_superseded.inc()
        return t


# --- Recovery-side loading ------------------------------------------------


def find_translation_blocks(device):
    """PBAs whose first page is an intact translation-tagged page.

    O(total blocks): a single column probe per block, no page sweep.  A
    translation block whose very first program was torn is missed — but
    such a block holds no intact checkpoint pages at all (pages program
    sequentially and the torn page is the last op before the cut), so
    recovery correctly treats it as an all-torn data block.
    """
    core = device.core
    ppb = device.geometry.pages_per_block
    tag = OOBMetadata.TRANSLATION_TAG
    found = set()
    for pba in range(device.geometry.total_blocks):
        if core.write_pointer[pba] == 0:
            continue
        gidx = pba * ppb
        if not core.state[gidx] or core.lpa[gidx] != tag:
            continue
        seq = core.seq_tag[gidx] & ((1 << 64) - 1)
        if seq == seq_tag_of(tag, core.back_pointer[gidx], core.timestamp_us[gidx]):
            found.add(pba)
    return found


def load_latest_checkpoint(device, translation_blocks):
    """Newest *valid* checkpoint image, or None.

    Valid means: intact root page, and all ``parts`` continuation pages
    of the same sequence found intact — the commit-record rule that
    makes a mid-checkpoint power cut fall back to the previous one.
    """
    roots = []
    parts_seen = {}
    for pba in sorted(translation_blocks):
        scan = device.scan_block_oob(pba)
        first = device.geometry.first_page_of_block(pba)
        for offset in range(scan.write_pointer):
            if not scan.intact[offset]:
                continue
            payload = device.core.data[first + offset]
            if isinstance(payload, CheckpointImage):
                roots.append(payload)
            elif isinstance(payload, CheckpointPart):
                parts_seen[payload.seq] = parts_seen.get(payload.seq, 0) + 1
    roots.sort(key=lambda image: -image.seq)
    for image in roots:
        if parts_seen.get(image.seq, 0) >= image.parts:
            return image
    return None


def summary_for(image, core, pba, pages_per_block):
    """The checkpoint's summary for ``pba`` iff it still applies."""
    if image is None:
        return None
    summary = image.summaries.get(pba)
    if summary is None:
        return None
    if (
        core.failed[pba]
        or core.write_pointer[pba] != pages_per_block
        or core.erase_count[pba] != summary.erase_count
    ):
        return None
    return summary
