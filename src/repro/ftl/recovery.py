"""Power-loss recovery for the baseline (regular) SSD.

The regular FTL keeps only the AMT, BST and PVT in RAM; after an abrupt
power cut it reconstructs them from the shared OOB sweep
(:mod:`repro.ftl.recovery_scan` — the same block/page semantics as
:mod:`repro.timessd.recovery`, minus every retention structure):

* AMT + PVT — the newest *intact* OOB timestamp per LPA wins the
  mapping; pages whose OOB sequence tag mismatches (torn or burned
  programs) are discarded, never mapped;
* block states and the free pool — from device write pointers; grown
  bad blocks (``Block.failed``, media truth) are retired on sight;
* append points — partially-programmed blocks are re-adopted as the
  user stream's active blocks (one per channel); orphans are
  force-sealed so GC can reclaim, not append to, them.

With checkpointing enabled (``SSDConfig.checkpoint_interval_blocks``)
the sweep adopts still-valid block summaries from the newest durable
checkpoint and scans only blocks sealed (or reused) since — recovery
becomes sublinear in device size; the stats report the split.

Use with :meth:`~repro.ftl.ssd.BaseSSD.reset_volatile`::

    ssd.reset_volatile()
    stats = rebuild_from_flash(ssd)
"""

from repro.ftl.block_manager import StreamId
from repro.ftl.recovery_scan import sweep_oob


def simulate_power_loss(ssd):
    """Drop every volatile structure, as an abrupt power cut would."""
    ssd.reset_volatile()
    return ssd


def rebuild_from_flash(ssd):
    """Reconstruct the baseline FTL's tables by scanning OOB metadata.

    Returns a dict of recovery statistics.
    """
    bm = ssd.block_manager
    sweep = sweep_oob(ssd)

    for pba in sweep.partial_blocks:
        if not bm.adopt_active(StreamId.USER, pba):
            bm.seal_block(pba)

    for lpa, (_ts, ppa) in sweep.heads.items():
        ssd.mapping.update(lpa, ppa)
        bm.mark_valid(ppa)

    if ssd.checkpointer is not None:
        ssd.checkpointer.adopt(sweep.translation_blocks, sweep.checkpoint_seq)

    return {
        "mapped_lpas": len(sweep.heads),
        "scanned_pages": len(sweep.user_pages),
        "free_blocks": bm.free_block_count,
        "torn_pages": sweep.torn_pages,
        "failed_blocks": sweep.failed_blocks,
        "scanned_blocks": sweep.scanned_blocks,
        "summarized_blocks": sweep.summarized_blocks,
        "checkpoint_seq": sweep.checkpoint_seq,
    }
