"""Power-loss recovery for the baseline (regular) SSD.

The regular FTL keeps only the AMT, BST and PVT in RAM; after an abrupt
power cut it reconstructs them by scanning each block's out-of-band
metadata, exactly like :mod:`repro.timessd.recovery` minus every
retention structure:

* AMT + PVT — the newest *intact* OOB timestamp per LPA wins the
  mapping; pages whose OOB sequence tag mismatches (torn or burned
  programs) are discarded, never mapped;
* block states and the free pool — from device write pointers; grown
  bad blocks (``Block.failed``, media truth) are retired on sight;
* append points — partially-programmed blocks are re-adopted as the
  user stream's active blocks (one per channel); orphans are
  force-sealed so GC can reclaim, not append to, them.

Use with :meth:`~repro.ftl.ssd.BaseSSD.reset_volatile`::

    ssd.reset_volatile()
    stats = rebuild_from_flash(ssd)
"""

from repro.flash.page import PageState
from repro.ftl.block_manager import StreamId


def simulate_power_loss(ssd):
    """Drop every volatile structure, as an abrupt power cut would."""
    ssd.reset_volatile()
    return ssd


def rebuild_from_flash(ssd):
    """Reconstruct the baseline FTL's tables by scanning OOB metadata.

    Returns a dict of recovery statistics.
    """
    device = ssd.device
    geo = device.geometry
    bm = ssd.block_manager

    heads = {}  # lpa -> (timestamp, ppa)
    partial_blocks = []
    scanned_pages = 0
    torn_pages = 0
    failed_blocks = 0

    for pba in range(geo.total_blocks):
        block = device.blocks[pba]
        if block.failed:
            bm.retire_failed_block(pba)
            failed_blocks += 1
            continue
        if block.is_erased:
            continue
        bm.claim_block(pba)
        if not block.is_full:
            partial_blocks.append(pba)
        for offset in range(block.write_pointer):
            page = block.pages[offset]
            if page.state is not PageState.PROGRAMMED or page.oob is None:
                continue
            if not page.oob.intact:
                torn_pages += 1
                continue
            lpa = page.oob.lpa
            if lpa < 0:
                continue  # housekeeping page
            scanned_pages += 1
            ppa = geo.first_page_of_block(pba) + offset
            ts = page.oob.timestamp_us
            best = heads.get(lpa)
            if best is None or ts > best[0]:
                heads[lpa] = (ts, ppa)

    for pba in partial_blocks:
        if not bm.adopt_active(StreamId.USER, pba):
            bm.seal_block(pba)

    for lpa, (_ts, ppa) in heads.items():
        ssd.mapping.update(lpa, ppa)
        bm.mark_valid(ppa)

    return {
        "mapped_lpas": len(heads),
        "scanned_pages": scanned_pages,
        "free_blocks": bm.free_block_count,
        "torn_pages": torn_pages,
        "failed_blocks": failed_blocks,
    }
