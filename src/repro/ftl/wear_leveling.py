"""Wear leveling.

Periodically (every N erases) the leveler checks the erase-count spread.
When the gap between the most- and least-worn blocks exceeds a threshold it
migrates the content of the coldest sealed block (lowest erase count — its
data has sat still while other blocks cycled) and erases it, returning the
under-used block to the free pool where it will absorb fresh writes.

TimeSSD exempts delta blocks from swapping (paper §3.8): they are erased
in time order anyway, and migrating them would break delta-page chains.
"""

from repro.ftl.block_manager import BlockKind


class WearLeveler:
    """Cold-block swapping driven by erase-count imbalance."""

    def __init__(self, ssd, check_interval_erases=64, gap_threshold=16):
        if check_interval_erases <= 0 or gap_threshold <= 0:
            raise ValueError("wear-leveling parameters must be positive")
        self._ssd = ssd
        self._interval = check_interval_erases
        self._gap = gap_threshold
        self._erases_since_check = 0
        self._leveling = False
        self.swaps = 0

    def on_erase(self, now_us):
        """Called by the FTL after every block erase."""
        self._erases_since_check += 1
        if self._leveling or self._erases_since_check < self._interval:
            return
        self._erases_since_check = 0
        self._leveling = True
        try:
            self._maybe_swap(now_us)
        finally:
            self._leveling = False

    # How many cold blocks one check may relocate; catches up after a
    # burst of hot-block erases without stalling foreground I/O for long.
    MAX_SWAPS_PER_CHECK = 4

    def _maybe_swap(self, now_us):
        for _ in range(self.MAX_SWAPS_PER_CHECK):
            if not self._swap_one(now_us):
                return

    def _swap_one(self, now_us):
        ssd = self._ssd
        device = ssd.device
        bm = ssd.block_manager
        coldest = None
        coldest_erases = None
        hottest_erases = 0
        # Only sealed data blocks are candidates; delta blocks are exempt.
        for pba in bm.sealed_blocks(BlockKind.DATA):
            erases = device.blocks[pba].erase_count
            if erases > hottest_erases:
                hottest_erases = erases
            if coldest_erases is None or erases < coldest_erases:
                coldest_erases = erases
                coldest = pba
        if coldest is None:
            return False
        if hottest_erases - coldest_erases <= self._gap:
            return False
        # Migration needs at least one free block to land in.
        if bm.free_block_count < 1:
            return False
        ssd.relocate_block(coldest, now_us)
        self.swaps += 1
        return True
