"""Baseline flash translation layer (the paper's "Regular SSD").

A page-level FTL with the four classic data structures of the paper's
Figure 3: the address mapping table (AMT) with an optional demand-paged
cache backed by a global mapping directory (GMD), the block status table
(BST), and the page validity table (PVT), plus greedy garbage collection,
wear leveling, and over-provisioning.
"""

from repro.ftl.block_manager import BlockKind, BlockManager, StreamId
from repro.ftl.mapping import AddressMappingTable
from repro.ftl.ssd import BaseSSD, RegularSSD, SSDConfig

__all__ = [
    "AddressMappingTable",
    "BlockManager",
    "BlockKind",
    "StreamId",
    "BaseSSD",
    "RegularSSD",
    "SSDConfig",
]
