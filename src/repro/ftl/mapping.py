"""Address mapping table (AMT) with optional demand-paged caching.

The paper's firmware uses page-level address translation [DFTL]: the full
LPA->PPA table lives in flash as translation pages whose locations are
tracked by a global mapping directory (GMD), and recently-used mappings are
cached in controller RAM.

The model keeps the authoritative table in host memory (it must be exact)
and, when configured with a finite cache, *charges* translation-page reads
and writes for misses and dirty evictions.  Experiments default to a fully
cached table so mapping traffic does not blur the TimeSSD-vs-regular
comparisons; the demand-paged mode exists for fidelity studies.
"""

from collections import OrderedDict

from repro.common.atomic import atomic_section
from repro.common.errors import AddressError
from repro.common.units import Lba, Ppa
from repro.flash.page import NULL_PPA

# How many mapping entries one 4 KiB translation page holds (8-byte PPAs),
# as in DFTL.
ENTRIES_PER_TRANSLATION_PAGE = 512


class AddressMappingTable:
    """LPA -> PPA mapping with translation-page traffic accounting."""

    def __init__(self, logical_pages, cache_entries=None):
        if logical_pages <= 0:
            raise ValueError("logical_pages must be positive")
        self.logical_pages = logical_pages
        self._table = [NULL_PPA] * logical_pages
        # Demand cache: None means "infinite" (fully cached).
        self._cache_entries = cache_entries
        self._cache = OrderedDict() if cache_entries is not None else None
        self._dirty = set()
        self.translation_reads = 0
        self.translation_writes = 0

    def _check(self, lpa):
        if not 0 <= lpa < self.logical_pages:
            raise AddressError(
                "LPA %r out of range [0, %d)" % (lpa, self.logical_pages)
            )

    def _touch(self, lpa, writing):
        """Simulate the cache lookup for ``lpa``; count translation I/O."""
        if self._cache is None:
            return
        if lpa in self._cache:
            self._cache.move_to_end(lpa)
        else:
            self.translation_reads += 1
            self._cache[lpa] = True
            if len(self._cache) > self._cache_entries:
                evicted, _ = self._cache.popitem(last=False)
                if evicted in self._dirty:
                    self._dirty.discard(evicted)
                    self.translation_writes += 1
        if writing:
            self._dirty.add(lpa)

    def lookup(self, lpa: Lba) -> Ppa:
        """Current PPA for ``lpa`` (``NULL_PPA`` when never written)."""
        self._check(lpa)
        self._touch(lpa, writing=False)
        return self._table[lpa]

    @atomic_section(
        "the L2P entry and the demand-cache/dirty accounting must move "
        "together: a suspension in between would charge translation I/O "
        "for a mapping no reader can see yet (range check precedes any "
        "mutation)"
    )
    def update(self, lpa: Lba, ppa: Ppa) -> Ppa:
        """Point ``lpa`` at ``ppa``; returns the previous PPA."""
        self._check(lpa)
        self._touch(lpa, writing=True)
        old = self._table[lpa]
        self._table[lpa] = ppa
        return old

    def invalidate(self, lpa: Lba) -> Ppa:
        """Drop the mapping (TRIM/delete); returns the previous PPA."""
        return self.update(lpa, NULL_PPA)

    def is_mapped(self, lpa: Lba):
        self._check(lpa)
        return self._table[lpa] != NULL_PPA

    def mapped_lpas(self):
        """Iterate all currently mapped LPAs (used by full-scan queries)."""
        for lpa, ppa in enumerate(self._table):
            if ppa != NULL_PPA:
                yield lpa

    def mapped_count(self):
        return sum(1 for ppa in self._table if ppa != NULL_PPA)

    def __len__(self):
        return self.logical_pages
