"""Block lifecycle management: free pool, active blocks, BST and PVT.

Implements the paper's block status table (BST, per-block status and
invalid-page counts — extended by TimeSSD to mark delta blocks) and page
validity table (PVT, per-page valid bits).  Free blocks are handed out
round-robin across channels so sequential allocation stripes the device.
"""

import enum
from collections import deque

from repro.common.atomic import atomic_section
from repro.common.errors import AddressError, DeviceFullError
from repro.common.units import BlockId, Ppa, TimeUs


class BlockKind(enum.Enum):
    """What a block currently holds (the BST 'status' column)."""

    FREE = "free"
    DATA = "data"
    DELTA = "delta"  # TimeSSD: blocks holding compressed version deltas
    TRANSLATION = "translation"
    RETIRED = "retired"  # wore out its P/E budget; never used again


class StreamId(enum.Enum):
    """Independent append points.

    Host writes, GC migrations and delta writes each get their own active
    block so GC does not mix retained history into fresh user blocks.
    """

    USER = "user"
    GC = "gc"
    DELTA = "delta"


class _BlockInfo:
    __slots__ = ("kind", "valid", "valid_count", "sealed")

    def __init__(self, pages_per_block):
        self.kind = BlockKind.FREE
        self.valid = bytearray(pages_per_block)
        self.valid_count = 0
        # Force-sealed: treated as full for victim selection even though
        # pages remain (orphaned partial blocks after crash recovery).
        self.sealed = False


class BlockManager:
    """Free-space accounting and page allocation over a flash device."""

    def __init__(self, device, block_endurance_cycles=None):
        self.device = device
        self.block_endurance_cycles = block_endurance_cycles
        self.retired_blocks = 0
        geo = device.geometry
        self._geo = geo
        self._info = [_BlockInfo(geo.pages_per_block) for _ in range(geo.total_blocks)]
        self._free = [deque() for _ in range(geo.channels)]
        for pba in range(geo.total_blocks):
            self._free[geo.channel_of_block(pba)].append(pba)
        self._free_count = geo.total_blocks
        self._next_channel = 0
        # Active (partially programmed) blocks per stream.  Striped
        # streams (host writes, GC migration) keep one append block per
        # channel and rotate, as real FTLs do to exploit parallelism;
        # unstriped streams (delta blocks) fill one block at a time.
        self._active = {}

    # --- Free pool -----------------------------------------------------------

    @property
    def free_block_count(self):
        return self._free_count

    def _pop_free_block(self, preferred_channel=None):
        """Take a free block, preferring a channel (else round-robin)."""
        if self._free_count == 0:
            raise DeviceFullError("no free blocks available")
        channels = self._geo.channels
        start = self._next_channel if preferred_channel is None else preferred_channel
        for probe in range(channels):
            channel = (start + probe) % channels
            if self._free[channel]:
                if preferred_channel is None:
                    self._next_channel = (channel + 1) % channels
                self._free_count -= 1
                return self._free[channel].popleft()
        raise DeviceFullError("free count out of sync with pools")

    @atomic_section(
        "clearing validity, forgetting the append point and returning "
        "the block to the free pool (or retiring it) must be one step: "
        "in between, the block belongs to nobody (valid-page guard "
        "raises before any mutation)"
    )
    def release_block(self, pba: BlockId):
        """Return an erased block to the free pool — or retire it.

        With a configured endurance budget, a block that has used up its
        program/erase cycles is retired instead of reused (bad-block
        management); the device shrinks until the pool runs dry.
        """
        info = self._info[pba]
        if info.valid_count:
            raise AddressError("releasing block %d with valid pages" % pba)
        # Resolve the channel (which validates pba) before the first
        # mutation, keeping the section's fallible work up front.
        channel = self._geo.channel_of_block(pba)
        info.valid[:] = bytes(len(info.valid))
        info.sealed = False
        self._forget_active(pba)
        if self.device.blocks[pba].failed or (
            self.block_endurance_cycles is not None
            and self.device.blocks[pba].erase_count >= self.block_endurance_cycles
        ):
            info.kind = BlockKind.RETIRED
            self.retired_blocks += 1
            return
        info.kind = BlockKind.FREE
        self._free[channel].append(pba)
        self._free_count += 1

    def claim_block(self, pba: BlockId, kind=BlockKind.DATA):
        """Remove an occupied block from a fresh manager's free pool.

        Crash recovery builds a new :class:`BlockManager` (all blocks
        free) and then claims every block the media shows as programmed.
        No-op if the block is already claimed.
        """
        try:
            self._free[self._geo.channel_of_block(pba)].remove(pba)
        except ValueError:
            return
        self._free_count -= 1
        self.set_kind(pba, kind)

    def condemn_block(self, pba: BlockId):
        """Stop appending to a block that grew a bad page (program failed).

        The block keeps its kind and valid pages; GC will migrate them
        out and :meth:`release_block` retires it (``Block.failed`` makes
        it a victim via :meth:`sealed_blocks` despite being partial).
        """
        self._forget_active(pba)

    @atomic_section(
        "pool removal, validity clear and RETIRED marking commit "
        "together; a half-retired block could be re-allocated"
    )
    def retire_failed_block(self, pba: BlockId):
        """Take a known-bad block out of service immediately.

        Used by crash recovery when the media says ``failed`` but the
        rebuilt firmware tables have no record of the block: it must not
        re-enter the free pool.  No-op if already retired.
        """
        info = self._info[pba]
        if info.kind is BlockKind.RETIRED:
            return
        if info.kind is BlockKind.FREE:
            try:
                self._free[self._geo.channel_of_block(pba)].remove(pba)
                self._free_count -= 1
            except ValueError:
                pass
        info.valid[:] = bytes(len(info.valid))
        info.valid_count = 0
        info.sealed = False
        self._forget_active(pba)
        info.kind = BlockKind.RETIRED
        self.retired_blocks += 1

    def seal_block(self, pba: BlockId):
        """Mark a partial block as never-to-be-appended (GC may claim it)."""
        self._info[pba].sealed = True
        self._forget_active(pba)

    def _forget_active(self, pba):
        # A stream whose (full) active block got reclaimed must open a
        # fresh block on its next allocation, not write into a freed one.
        for state in self._active.values():
            blocks = state["blocks"]
            for i, active in enumerate(blocks):
                if active == pba:
                    blocks[i] = None

    # --- Allocation ----------------------------------------------------------

    _STREAM_KIND = {
        StreamId.USER: BlockKind.DATA,
        StreamId.GC: BlockKind.DATA,
        StreamId.DELTA: BlockKind.DELTA,
    }

    # Streams that stripe consecutive pages across channels.
    _STRIPED_STREAMS = frozenset((StreamId.USER, StreamId.GC))

    def allocate_page(self, stream) -> Ppa:
        """Next writable PPA for ``stream``, opening a new block if needed."""
        return self.allocate_page_keyed(
            stream,
            self._STREAM_KIND[stream],
            striped=stream in self._STRIPED_STREAMS,
        )

    @atomic_section(
        "append-point rotation, free-block pop and kind tagging are one "
        "allocation step; a competing allocator between them would hand "
        "out the same PPA twice",
        restores_state=True,  # DeviceFullError escapes with only the
        # round-robin cursor advanced — no block claimed, no slot filled
    )
    def allocate_page_keyed(self, key, kind, striped=False) -> Ppa:
        """Like :meth:`allocate_page` but for a dynamic stream ``key``.

        TimeSSD uses one (unstriped) stream per bloom-filter time segment
        so each segment's deltas land in dedicated delta blocks (§3.6).
        Striped streams rotate across one append block per channel, so
        consecutive pages land on different channels — the layout that
        lets multi-threaded TimeKits recovery overlap reads.
        """
        channels = self._geo.channels if striped else 1
        state = self._active.get(key)
        if state is None:
            state = {"blocks": [None] * channels, "next": 0}
            self._active[key] = state
        slot = state["next"]
        state["next"] = (slot + 1) % channels
        pba = state["blocks"][slot]
        if pba is not None and self.device.blocks[pba].is_full:
            pba = None
        if pba is None:
            preferred = slot if striped else None
            pba = self._pop_free_block(preferred_channel=preferred)
            self._info[pba].kind = kind
            state["blocks"][slot] = pba
        offset = self.device.blocks[pba].write_pointer
        return self._geo.first_page_of_block(pba) + offset

    def adopt_active(self, key, pba, striped=True):
        """Resume appending into a partially-programmed block.

        Crash recovery uses this to re-open the append points that were
        active when power was lost, instead of stranding half-written
        blocks.  Returns False (and adopts nothing) when the stream slot
        for the block's channel is already occupied.
        """
        channels = self._geo.channels if striped else 1
        state = self._active.get(key)
        if state is None:
            state = {"blocks": [None] * channels, "next": 0}
            self._active[key] = state
        slot = self._geo.channel_of_block(pba) % channels if striped else 0
        if state["blocks"][slot] is not None:
            return False
        state["blocks"][slot] = pba
        self._info[pba].sealed = False
        return True

    def close_stream(self, key):
        """Forget the active block(s) of a dynamic stream (e.g. BF dropped).

        Returns the block that was active (unstriped streams), or None.
        The caller owns reclamation of the returned block.
        """
        state = self._active.pop(key, None)
        if state is None:
            return None
        blocks = [pba for pba in state["blocks"] if pba is not None]
        return blocks[0] if blocks else None

    def stream_blocks(self, key):
        """Current active block for an unstriped ``key`` (or None)."""
        state = self._active.get(key)
        if state is None:
            return None
        blocks = [pba for pba in state["blocks"] if pba is not None]
        return blocks[0] if blocks else None

    def active_block(self, stream):
        return self.stream_blocks(stream)

    def active_blocks(self):
        out = set()
        for state in self._active.values():
            out.update(pba for pba in state["blocks"] if pba is not None)
        return out

    # --- Validity tracking (PVT) ---------------------------------------------

    def mark_valid(self, ppa: Ppa):
        pba = self._geo.block_of_page(ppa)
        offset = self._geo.page_offset(ppa)
        info = self._info[pba]
        if not info.valid[offset]:
            info.valid[offset] = 1
            info.valid_count += 1

    def invalidate_page(self, ppa: Ppa):
        """Clear the PVT bit for ``ppa`` (update/delete made it stale)."""
        pba = self._geo.block_of_page(ppa)
        offset = self._geo.page_offset(ppa)
        info = self._info[pba]
        if info.valid[offset]:
            info.valid[offset] = 0
            info.valid_count -= 1

    def is_valid(self, ppa: Ppa):
        pba = self._geo.block_of_page(ppa)
        return bool(self._info[pba].valid[self._geo.page_offset(ppa)])

    def valid_count(self, pba: BlockId):
        return self._info[pba].valid_count

    def invalid_count(self, pba: BlockId):
        """Programmed-but-stale page count (the BST invalid counter)."""
        programmed = self.device.blocks[pba].write_pointer
        return programmed - self._info[pba].valid_count

    def kind(self, pba):
        return self._info[pba].kind

    def set_kind(self, pba, kind):
        self._info[pba].kind = kind

    # --- Victim selection ----------------------------------------------------

    def sealed_blocks(self, kind=None):
        """PBAs of full, non-free blocks (optionally of one kind).

        A block that is still a stream's append point but already full
        counts as sealed — nothing more will ever be written to it.  So
        do force-sealed partial blocks (crash recovery orphans) and
        grown-bad blocks awaiting retirement: both take no more programs.
        """
        for pba, info in enumerate(self._info):
            if info.kind is BlockKind.FREE or info.kind is BlockKind.RETIRED:
                continue
            if kind is not None and info.kind is not kind:
                continue
            block = self.device.blocks[pba]
            if block.is_full or info.sealed or block.failed:
                yield pba

    def select_greedy_victim(self, kind=BlockKind.DATA):
        """Sealed block of ``kind`` with the most invalid pages, or None."""
        best_pba = None
        best_invalid = 0
        for pba in self.sealed_blocks(kind):
            invalid = self.invalid_count(pba)
            if invalid > best_invalid:
                best_invalid = invalid
                best_pba = pba
        return best_pba

    def select_cost_benefit_victim(self, now_us: TimeUs, kind=BlockKind.DATA):
        """LFS-style cost-benefit victim: maximize (1-u)*age / (1+u).

        ``u`` is the block\'s valid fraction (the migration cost) and
        ``age`` is time since its last program — old, mostly-invalid
        blocks win, which beats pure greed under hot/cold skew because
        cold blocks are cleaned while their garbage is still garbage.
        """
        best_pba = None
        best_score = 0.0
        for pba in self.sealed_blocks(kind):
            programmed = self.device.blocks[pba].write_pointer
            if programmed == 0 or self.invalid_count(pba) == 0:
                continue
            u = self._info[pba].valid_count / programmed
            age = max(1, now_us - self.device.blocks[pba].last_program_us)
            score = (1.0 - u) * age / (1.0 + u)
            if score > best_score:
                best_score = score
                best_pba = pba
        return best_pba

    def select_victim(self, policy, now_us: TimeUs, kind=BlockKind.DATA):
        """Dispatch on the configured GC victim policy."""
        if policy == "greedy":
            return self.select_greedy_victim(kind)
        if policy == "cost_benefit":
            return self.select_cost_benefit_victim(now_us, kind)
        raise AddressError("unknown GC policy %r" % policy)

    def utilization(self):
        """Fraction of non-free blocks."""
        total = self._geo.total_blocks
        return (total - self._free_count) / total
