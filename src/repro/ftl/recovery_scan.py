"""The shared OOB recovery sweep used by both rebuild paths.

``repro.ftl.recovery`` and ``repro.timessd.recovery`` used to carry
copy-pasted block/page scan loops (torn-page discard, failed-block
retirement, partial-block collection) that could — and did — drift.
This module is the single implementation, rewritten against the
columnar :meth:`~repro.flash.device.FlashDevice.scan_oob` sweep instead
of per-page ``Page`` objects, and extended with checkpoint summaries
(:mod:`repro.ftl.checkpoint`): a block whose checkpointed summary still
matches the media (same erase count, still full, not failed) is adopted
from the summary without scanning its pages, which is what makes
recovery sublinear in device size.

The sweep owns exactly the semantics the two recoveries share:

* grown-bad blocks (``failed`` — media truth) are retired on sight;
* erased blocks stay in the free pool;
* occupied blocks are claimed; translation (checkpoint) blocks are
  claimed under their own kind and sealed when partial, never adopted
  as user append points;
* torn/burned pages (sequence-tag mismatch) are discarded, never
  reported;
* intact user pages feed the newest-timestamp-wins ``heads`` map and
  the flat ``user_pages`` list;
* intact housekeeping pages (negative LPA tags: delta pages,
  translation pages in unrecognized blocks) are collected with their
  tag for the caller to classify;
* partially-programmed non-translation blocks are collected for the
  caller's append-point adoption.

What the sweep deliberately does *not* do: adopt append points, set
delta-block kinds, or touch the mapping — those differ between the
regular FTL and TimeSSD and stay in their respective recovery modules.
"""

from repro.ftl import checkpoint as checkpointing
from repro.ftl.block_manager import BlockKind


class OOBSweep:
    """Result of one :func:`sweep_oob` pass."""

    __slots__ = (
        "heads",
        "user_pages",
        "housekeeping",
        "partial_blocks",
        "translation_blocks",
        "torn_pages",
        "failed_blocks",
        "scanned_blocks",
        "summarized_blocks",
        "checkpoint_seq",
    )

    def __init__(self):
        #: ``{lpa: (timestamp_us, ppa)}`` — newest intact version wins.
        self.heads = {}
        #: Every intact user page: ``(ppa, lpa, timestamp_us)``.
        self.user_pages = []
        #: Intact housekeeping pages: ``(pba, ppa, lpa_tag, timestamp_us)``.
        self.housekeeping = []
        #: Partially-programmed non-translation blocks, scan order.
        self.partial_blocks = []
        #: Blocks recognized as checkpoint storage.
        self.translation_blocks = set()
        self.torn_pages = 0
        self.failed_blocks = 0
        #: Blocks whose pages were actually swept.
        self.scanned_blocks = 0
        #: Blocks adopted from the checkpoint without a page sweep.
        self.summarized_blocks = 0
        #: Sequence number of the checkpoint used (None = full scan).
        self.checkpoint_seq = None


def sweep_oob(ssd, collect_housekeeping=False):
    """Sweep the device's OOB metadata into an :class:`OOBSweep`.

    ``collect_housekeeping`` additionally gathers intact negative-tag
    pages (TimeSSD classifies delta pages from them; the regular FTL
    skips them entirely).
    """
    device = ssd.device
    geo = device.geometry
    core = device.core
    bm = ssd.block_manager
    ppb = geo.pages_per_block
    sweep = OOBSweep()

    translation_blocks = checkpointing.find_translation_blocks(device)
    image = (
        checkpointing.load_latest_checkpoint(device, translation_blocks)
        if translation_blocks
        else None
    )
    sweep.translation_blocks = translation_blocks
    if image is not None:
        sweep.checkpoint_seq = image.seq

    heads = sweep.heads
    user_pages = sweep.user_pages
    for pba in range(geo.total_blocks):
        if core.failed[pba]:
            # Grown bad block: the media remembers even though the fresh
            # BST does not.  Take it out of service; any versions it held
            # are gone (matching a real drive's data loss on bad blocks).
            bm.retire_failed_block(pba)
            sweep.failed_blocks += 1
            continue
        wp = core.write_pointer[pba]
        if wp == 0:
            continue
        # Occupied blocks must leave the (fresh) free pool.
        bm.claim_block(pba)
        if pba in translation_blocks:
            # Checkpoint storage: already parsed by the loader above.
            # Never a user append point — sealed if partial; the writer
            # reopens fresh translation blocks lazily.
            bm.set_kind(pba, BlockKind.TRANSLATION)
            if wp < ppb:
                bm.seal_block(pba)
            continue
        if wp < ppb:
            sweep.partial_blocks.append(pba)
        first = geo.first_page_of_block(pba)
        summary = checkpointing.summary_for(image, core, pba, ppb)
        if summary is not None:
            sweep.summarized_blocks += 1
            sweep.torn_pages += summary.torn_pages
            for offset, lpa, ts in summary.entries:
                ppa = first + offset
                user_pages.append((ppa, lpa, ts))
                best = heads.get(lpa)
                if best is None or ts > best[0]:
                    heads[lpa] = (ts, ppa)
            continue
        scan = device.scan_block_oob(pba)
        sweep.scanned_blocks += 1
        intact = scan.intact
        lpas = scan.lpa
        timestamps = scan.timestamp_us
        states = scan.state
        for offset in range(wp):
            if not states[offset]:
                continue
            if not intact[offset]:
                # Torn tail of the interrupted program (or a burned
                # page): the sequence tag mismatch proves it never
                # committed, so it must not corrupt the rebuilt tables.
                sweep.torn_pages += 1
                continue
            lpa = lpas[offset]
            ts = timestamps[offset]
            if lpa < 0:
                if collect_housekeeping:
                    sweep.housekeeping.append((pba, first + offset, lpa, ts))
                continue
            ppa = first + offset
            user_pages.append((ppa, lpa, ts))
            best = heads.get(lpa)
            if best is None or ts > best[0]:
                heads[lpa] = (ts, ppa)
    return sweep
