"""The baseline SSD: write path, read path, TRIM, greedy GC.

:class:`BaseSSD` implements everything a regular page-mapped SSD does and
exposes the hook points TimeSSD overrides (what happens when a page is
invalidated, and how garbage collection treats invalid pages).
:class:`RegularSSD` is the paper's comparison baseline — invalid pages are
reclaimed immediately.
"""

from dataclasses import dataclass, field

from repro.common.atomic import atomic_section
from repro.common.clock import SimClock
from repro.common.idle import IdlePredictor
from repro.common.errors import (
    DegradedModeError,
    DeviceFullError,
    EraseFailureError,
    ProgramFailureError,
    UncorrectableReadError,
)
from repro.common.units import SECOND_US, Lba, Ppa, TimeUs
from repro.flash.device import FlashDevice
from repro.flash.geometry import FlashGeometry
from repro.flash.page import NULL_PPA, OOBMetadata
from repro.flash.timing import FlashTiming
from repro.ftl.block_manager import BlockKind, BlockManager, StreamId
from repro.ftl.checkpoint import CheckpointWriter
from repro.ftl.mapping import AddressMappingTable
from repro.ftl.scrub import PatrolScrubber
from repro.ftl.wear_leveling import WearLeveler
from repro.obs import Scope


@dataclass
class SSDConfig:
    """Configuration shared by the regular SSD and TimeSSD.

    ``op_ratio`` is the over-provisioning fraction (the paper's board has
    1 TB plus 15% OP).  ``gc_low_watermark`` (blocks) triggers GC when the
    free pool falls to it; ``None`` derives a default from geometry.
    """

    geometry: FlashGeometry = field(default_factory=FlashGeometry)
    timing: FlashTiming = field(default_factory=FlashTiming)
    op_ratio: float = 0.15
    gc_low_watermark: int = None
    #: Run GC opportunistically during predicted-idle windows.
    background_gc: bool = True
    #: Rated program/erase cycles per block (None = unlimited).  When a
    #: block exhausts its budget it is retired, shrinking the device.
    block_endurance_cycles: int = None
    #: GC victim selection: "greedy" (most invalid pages) or
    #: "cost_benefit" (LFS-style age-weighted).
    gc_policy: str = "greedy"
    #: Optional :class:`~repro.flash.reliability.FlashReliability` model
    #: (None = error-free flash).
    reliability: object = None
    mapping_cache_entries: int = None
    wear_check_interval: int = 64
    wear_gap_threshold: int = 16
    #: Optional fault-injection hooks (see :mod:`repro.faults`); installed
    #: into the flash device.  None keeps the happy path untouched.
    faults: object = None
    #: Extra program attempts (remap to a fresh page) before a media
    #: program failure escapes to the host.
    program_retry_limit: int = 3
    #: Read-retry ladder depth: extra sense attempts (shifted reference
    #: voltages, lower effective BER, longer sense) before an
    #: uncorrectable read escapes to the host.
    read_retry_limit: int = 4
    #: Background patrol scrubbing: during idle windows, patrol-read
    #: sealed blocks oldest-first and refresh pages whose corrected-bit
    #: counts approach the ECC budget (see docs/RELIABILITY.md).
    patrol_scrub: bool = False
    #: Fraction of the ECC budget at which a page counts as at-risk —
    #: the scrub refresh watermark.
    scrub_risk_fraction: float = 0.5
    #: Upper bound on pages the scrubber touches per idle window (the
    #: window's time budget also applies, whichever is tighter).
    scrub_pages_per_run: int = 64
    #: Sim-time the device must dwell in degraded mode with no new
    #: media failures before the scrubber may heal it back to writable
    #: (the anti-flap hysteresis).
    heal_dwell_us: int = 2 * SECOND_US
    #: Checkpointed recovery: every this-many blocks' worth of page
    #: programs, persist per-block recovery summaries to dedicated
    #: translation blocks so ``rebuild_from_flash`` scans only blocks
    #: sealed since (see :mod:`repro.ftl.checkpoint`).  ``None`` (the
    #: default) disables checkpointing — recovery falls back to the
    #: full OOB sweep and no housekeeping writes are added.
    checkpoint_interval_blocks: int = None
    #: Record structured events in the device's trace ring (see
    #: :mod:`repro.obs`).  Off by default: metrics are always on, the
    #: event ring costs one branch per candidate event when disabled.
    tracing: bool = False
    trace_capacity: int = 4096

    def __post_init__(self):
        if not 0 < self.op_ratio < 1:
            raise ValueError("op_ratio must be in (0, 1)")
        if self.gc_low_watermark is None:
            # Striped streams open one append block per channel, so the
            # pool must comfortably cover that plus GC's own appetite.
            self.gc_low_watermark = max(
                4,
                self.geometry.channels + 2,
                self.geometry.total_blocks // 100,
            )

    @property
    def logical_pages(self):
        """User-visible capacity in pages (raw capacity minus OP)."""
        return int(self.geometry.total_pages / (1.0 + self.op_ratio))


class BaseSSD:
    """Common machinery of a page-mapped SSD."""

    def __init__(self, config=None, clock=None):
        self.config = config or SSDConfig()
        self.clock = clock or SimClock()
        #: Per-device observability scope — metrics registry plus trace
        #: ring, shared with the flash device and the NVMe controller.
        self.obs = Scope(
            tracing=self.config.tracing,
            trace_capacity=self.config.trace_capacity,
        )
        self.device = FlashDevice(
            self.config.geometry,
            self.config.timing,
            self.config.reliability,
            fault_hooks=self.config.faults,
            obs=self.obs,
        )
        self.block_manager = BlockManager(
            self.device, self.config.block_endurance_cycles
        )
        self.mapping = AddressMappingTable(
            self.config.logical_pages, self.config.mapping_cache_entries
        )
        self.wear_leveler = WearLeveler(
            self,
            self.config.wear_check_interval,
            self.config.wear_gap_threshold,
        )
        self.host_pages_written = 0
        self.host_pages_read = 0
        metrics = self.obs.metrics
        # Host response-time histograms double as the legacy
        # write_latency/read_latency attributes (same record/mean_us/
        # percentile API the old reservoirs exposed).
        self.write_latency = metrics.histogram("ftl.write_us")
        self.read_latency = metrics.histogram("ftl.read_us")
        self._m_host_writes = metrics.counter("ftl.host_writes")
        self._m_host_reads = metrics.counter("ftl.host_reads")
        self._m_gc_runs = metrics.counter("gc.runs")
        self._m_background_gc_runs = metrics.counter("gc.background_runs")
        self._m_gc_migrated = metrics.counter("gc.pages_migrated")
        self._m_retry_reads = metrics.counter("reliability.retry_reads")
        self._m_retry_exhausted = metrics.counter("reliability.retry_exhausted")
        self._m_lost_pages = metrics.counter("reliability.lost_pages")
        self._h_retry_depth = metrics.histogram("reliability.retry_depth")
        self._h_corrected_bits = metrics.histogram("reliability.corrected_bits")
        self._m_degraded_entered = metrics.counter("ftl.degraded.entered")
        self._m_degraded_healed = metrics.counter("ftl.degraded.healed")
        self.gc_runs = 0
        self.background_gc_runs = 0
        #: Media program/erase failures the firmware absorbed.
        self.program_failures = 0
        self.erase_failures = 0
        #: LBAs whose only copy proved unreadable during a migration —
        #: ``{lpa: ppa of the lost copy}``.  Host reads keep reporting a
        #: media error (silent zeroes would hide the loss) until the LBA
        #: is rewritten or trimmed, as real drives mark unrecoverable
        #: LBAs.
        self.lost_lpas = {}
        #: Non-None while in read-only degraded mode (the reason string).
        self.degraded_reason = None
        self._degraded_since_us = 0
        self._degraded_failure_mark = (0, 0)
        #: Background patrol scrubber + refresh engine (None unless
        #: ``patrol_scrub`` is enabled).
        self.scrubber = PatrolScrubber(self) if self.config.patrol_scrub else None
        #: Periodic recovery-checkpoint writer (None unless
        #: ``checkpoint_interval_blocks`` is set).
        self.checkpointer = (
            CheckpointWriter(self)
            if self.config.checkpoint_interval_blocks
            else None
        )
        self._last_io_end_us = self.clock.now_us
        self._idle = IdlePredictor()
        self._gc_is_background = False
        self._translation_reads_seen = 0
        self._translation_writes_seen = 0

    # --- Host interface -------------------------------------------------------

    @property
    def logical_pages(self):
        return self.config.logical_pages

    def write(self, lpa, data=None):
        """Write one logical page; returns the response time in us."""
        self.ensure_writable()
        arrival = self.clock.now_us
        self._before_host_request(arrival)
        try:
            self._ensure_free_space(arrival)
            complete = self._program_user_page(lpa, data, self.clock.now_us)
        except (DeviceFullError, ProgramFailureError) as exc:
            # The device can no longer honor writes: go read-only rather
            # than fail differently on every subsequent request.
            self._enter_degraded(exc)
            raise
        self.clock.advance_to(complete)
        self.lost_lpas.pop(lpa, None)  # a rewrite clears the media error
        self.host_pages_written += 1
        self._m_host_writes.inc()
        response = complete - arrival
        self.write_latency.record(response)
        self._after_host_request(self.clock.now_us, wrote=True)
        return response

    def read(self, lpa):
        """Read one logical page; returns ``(data, response_us)``.

        Reading a never-written page returns ``(None, 0)`` — the device
        answers from the mapping table without touching flash, as real
        FTLs do for unmapped LBAs.
        """
        arrival = self.clock.now_us
        self._before_host_request(arrival)
        ppa = self.mapping.lookup(lpa)
        start = self._translation_delay(arrival)
        self.host_pages_read += 1
        self._m_host_reads.inc()
        if ppa == NULL_PPA:
            self.read_latency.record(0)
            self._after_host_request(self.clock.now_us, wrote=False)
            if lpa in self.lost_lpas:
                raise UncorrectableReadError(self.lost_lpas[lpa], lost=True)
            return None, 0
        result = self.read_page_with_retry(ppa, start)
        self.clock.advance_to(result.complete_us)
        response = result.complete_us - arrival
        self.read_latency.record(response)
        self._after_host_request(self.clock.now_us, wrote=False)
        return result.data, response

    def trim(self, lpa):
        """Delete a logical page (e.g. file deletion punched through)."""
        self.ensure_writable()
        arrival = self.clock.now_us
        self._before_host_request(arrival)
        old = self.mapping.invalidate(lpa)
        self.lost_lpas.pop(lpa, None)  # deletion clears the media error
        if old != NULL_PPA:
            self._on_invalidate(lpa, old, arrival)
        self._after_host_request(self.clock.now_us, wrote=False)

    def write_range(self, start_lpa, npages, pages=None):
        """Write ``npages`` consecutive pages; returns total response us."""
        total = 0
        for i in range(npages):
            data = pages[i] if pages is not None else None
            total += self.write(start_lpa + i, data)
        return total

    def read_range(self, start_lpa, npages):
        """Read consecutive pages; returns ``(list_of_data, total_us)``."""
        total = 0
        out = []
        for i in range(npages):
            data, response = self.read(start_lpa + i)
            out.append(data)
            total += response
        return out, total

    # --- Frontend service points ------------------------------------------

    def serve_write_at(self, lpa: Lba, data, start_us: TimeUs) -> TimeUs:
        """Program one host page at ``start_us``; returns completion time.

        The service point for co-packaged frontends (the NVMe batch
        engine, TimeKits restore threads) that run their own time
        cursors and therefore cannot go through :meth:`write`, which is
        tied to the device clock.  Unlike :meth:`write` it performs no
        admission work (``ensure_writable``, idle-window accounting,
        latency recording) — that stays with the frontend, once per
        request rather than once per page.
        """
        self._ensure_free_space(start_us)
        complete = self._program_user_page(lpa, data, start_us)
        self.host_pages_written += 1
        return complete

    def serve_trim_at(self, lpa: Lba, start_us: TimeUs):
        """Invalidate one LPA at ``start_us`` (frontend counterpart of
        :meth:`trim`); returns True when a mapping was dropped."""
        old = self.mapping.invalidate(lpa)
        if old != NULL_PPA:
            self._on_invalidate(lpa, old, start_us)
            return True
        return False

    def serve_read_at(self, lpa: Lba, start_us: TimeUs):
        """Read one host page starting at ``start_us``.

        Returns ``(data, complete_us)``; an unmapped LPA answers from
        the mapping table with no media time.  Like the other service
        points this performs no admission work — the frontend owns
        latency recording and idle accounting.
        """
        ppa = self.mapping.lookup(lpa)
        self.host_pages_read += 1
        if ppa == NULL_PPA:
            if lpa in self.lost_lpas:
                raise UncorrectableReadError(self.lost_lpas[lpa], lost=True)
            return None, start_us
        result = self.read_page_with_retry(ppa, start_us)
        return result.data, result.complete_us

    # --- Stats ------------------------------------------------------------

    @property
    def write_amplification(self):
        """Flash page programs divided by host page writes."""
        if self.host_pages_written == 0:
            return 0.0
        return self.device.counters.page_programs / self.host_pages_written

    def _refresh_gauges(self):
        """Update point-in-time gauges just before a snapshot."""
        metrics = self.obs.metrics
        counters = self.device.counters
        metrics.gauge("ftl.wa.flash_programs").set(counters.page_programs)
        metrics.gauge("ftl.wa.host_writes").set(self.host_pages_written)
        metrics.gauge("ftl.write_amplification").set(
            round(self.write_amplification, 6)
        )
        metrics.gauge("ftl.free_blocks").set(self.block_manager.free_block_count)
        metrics.gauge("ftl.retired_blocks").set(self.block_manager.retired_blocks)
        metrics.gauge("ftl.degraded").set(0 if self.degraded_reason is None else 1)
        metrics.gauge("sim.now_us").set(self.clock.now_us)
        timelines = self.device.timelines
        metrics.gauge("flash.busy_us_total").set(timelines.total_busy_us())
        for channel, busy in enumerate(timelines.busy_times()):
            metrics.gauge("flash.channel_busy_us.%d" % channel).set(busy)
        depths = timelines.max_depths()
        for channel, depth in enumerate(depths):
            metrics.gauge("flash.channel_qdepth_max.%d" % channel).set(depth)
        chips = self.device.chip_timelines
        metrics.gauge("flash.chip_busy_us_total").set(chips.total_busy_us())
        for chip, busy in enumerate(chips.busy_times()):
            metrics.gauge("flash.chip_busy_us.%d" % chip).set(busy)
        chip_depths = chips.max_depths()
        for chip, depth in enumerate(chip_depths):
            metrics.gauge("flash.chip_qdepth_max.%d" % chip).set(depth)
        # The headline queue-depth gauge covers both lane kinds: with
        # the default zero-cost bus the chip queues are where commands
        # actually stack up.
        metrics.gauge("flash.qdepth_max").set(max(depths + chip_depths))

    def metrics_snapshot(self):
        """JSON-stable snapshot of every metric on this device."""
        self._refresh_gauges()
        return self.obs.metrics.snapshot()

    def endurance_report(self):
        """Device health: wear consumed, spread, retired blocks."""
        counts = self.device.block_erase_counts()
        rated = self.config.block_endurance_cycles
        report = {
            "total_erases": sum(counts),
            "max_pe_cycles": max(counts),
            "min_pe_cycles": min(counts),
            "retired_blocks": self.block_manager.retired_blocks,
            "rated_pe_cycles": rated,
        }
        if rated:
            report["life_used"] = sum(counts) / (len(counts) * rated)
        return report

    def free_page_estimate(self):
        """Free pages = free blocks plus the room left in active blocks."""
        bm = self.block_manager
        pages = bm.free_block_count * self.device.geometry.pages_per_block
        for pba in bm.active_blocks():
            block = self.device.blocks[pba]
            pages += len(block.pages) - block.write_pointer
        return pages

    # --- Degraded mode (read-only fail-safe) ---------------------------------

    def ensure_writable(self):
        """Raise :class:`DegradedModeError` if mutations must be refused.

        Degraded mode is sticky once entered; it is also (re-)entered
        here when bad-block retirement has shrunk the pool below what
        logical capacity plus GC headroom require — a condition reboots
        cannot clear, because ``Block.failed`` is media truth.
        """
        if self.degraded_reason is None and self.block_manager.retired_blocks:
            reason = self._pool_health_reason()
            if reason is not None:
                self._enter_degraded(reason)
        if self.degraded_reason is not None:
            raise DegradedModeError(self.degraded_reason)

    def _pool_health_reason(self):
        geo = self.device.geometry
        usable = geo.total_blocks - self.block_manager.retired_blocks
        needed = -(-self.config.logical_pages // geo.pages_per_block)
        needed += self.config.gc_low_watermark
        if usable < needed:
            return (
                "%d retired blocks leave %d usable, below the %d needed "
                "for logical capacity plus GC headroom"
                % (self.block_manager.retired_blocks, usable, needed)
            )
        return None

    def _enter_degraded(self, reason):
        if self.degraded_reason is None:
            # Fresh entry: start the heal dwell clock and remember the
            # failure counters — heal requires them to hold still.
            self._degraded_since_us = self.clock.now_us
            self._degraded_failure_mark = (
                self.program_failures,
                self.erase_failures,
            )
            self._m_degraded_entered.inc()
            tr = self.obs.trace
            if tr.enabled:
                tr.emit(
                    "fault",
                    "degraded-enter",
                    self.clock.now_us,
                    reason=type(reason).__name__
                    if isinstance(reason, BaseException)
                    else "pool-health",
                )
        self.degraded_reason = str(reason)

    def clear_degraded(self):
        """Leave degraded mode (the condition is re-checked on next write)."""
        self.degraded_reason = None

    @atomic_section(
        "the heal decision reads pool health, the failure counters and "
        "the dwell clock, then flips the degraded flag in one step; a "
        "media failure arriving mid-decision must restart the dwell, "
        "not race the flip",
        restores_state=True,  # the flag flip is the last firmware
        # mutation; what follows is observability (counter + trace),
        # whose ReproError would leave the healed state fully consistent
    )
    def _maybe_heal(self, now_us):
        """Exit degraded mode once the media has proven stable.

        Called by the patrol scrubber at the end of each run.  Healing
        requires a full ``heal_dwell_us`` with no new program/erase
        failures, a pool that retirement has not shrunk below logical
        capacity (that condition is permanent — ``Block.failed`` is
        media truth), and a free pool above the GC watermark.  New
        failures restart the dwell, so a device under sustained faults
        never flaps between writable and read-only.
        """
        if self.degraded_reason is None:
            return False
        failures = (self.program_failures, self.erase_failures)
        if failures != self._degraded_failure_mark:
            self._degraded_failure_mark = failures
            self._degraded_since_us = now_us
            return False
        if now_us - self._degraded_since_us < self.config.heal_dwell_us:
            return False
        if self._pool_health_reason() is not None:
            return False
        if self.block_manager.free_block_count <= self.config.gc_low_watermark:
            return False
        self.clear_degraded()
        self._m_degraded_healed.inc()
        tr = self.obs.trace
        if tr.enabled:
            tr.emit("scrub", "degraded-healed", now_us)
        return True

    # --- Write-path internals ----------------------------------------------

    @atomic_section(
        "allocate + map + program + validity must commit as one step: a "
        "competing task between mapping update and program would read a "
        "mapped-but-unwritten page",
        restores_state=True,  # retry exhaustion re-points the mapping at
        # the last durable copy (or invalidates a first write) before the
        # ProgramFailureError escapes
    )
    def _program_user_page(self, lpa, data, now_us):
        """Allocate, program and map one user page; returns completion.

        A media program failure burns the allocated page; firmware remaps
        to a freshly allocated one and retries, up to the configured
        budget (the standard NAND program-retry loop).
        """
        ppa = self.block_manager.allocate_page(StreamId.USER)
        old = self.mapping.update(lpa, ppa)
        now_us = self._translation_delay(now_us)
        back = self._back_pointer_for(lpa, old)
        oob = OOBMetadata(lpa=lpa, back_pointer=back, timestamp_us=now_us)
        last_failure = None
        for _attempt in range(self.config.program_retry_limit + 1):
            try:
                complete = self.device.program_page(ppa, data, oob, now_us)
                break
            except ProgramFailureError as exc:
                last_failure = exc
                self._note_program_failure(exc)
                ppa = self.block_manager.allocate_page(StreamId.USER)
                self.mapping.update(lpa, ppa)
        else:
            # Out of retries: put the mapping back on the last good copy
            # so acknowledged data stays readable, then let it escape.
            if old != NULL_PPA:
                self.mapping.update(lpa, old)
            else:
                self.mapping.invalidate(lpa)
            raise last_failure
        self.block_manager.mark_valid(ppa)
        if old != NULL_PPA:
            self._on_invalidate(lpa, old, now_us)
        return complete

    @atomic_section(
        "the allocate/program/remap-on-failure loop is one media "
        "transaction: suspending between a burned page and its "
        "replacement allocation would let a competing allocator reuse "
        "the failed block",
        restores_state=True,  # a failed program permanently burns the
        # page and may retire the block (durable media truth); no
        # mapping/index state is touched, so the raise leaves firmware
        # state consistent
    )
    def program_with_retry(self, allocate, data, oob, now_us):
        """Program with remap-on-failure for housekeeping writes.

        ``allocate`` is a zero-argument callable returning a fresh PPA
        (GC migration, delta flush).  Returns ``(ppa, complete_us)``;
        raises the last :class:`ProgramFailureError` once the retry
        budget is exhausted.
        """
        last_failure = None
        for _attempt in range(self.config.program_retry_limit + 1):
            ppa = allocate()
            try:
                return ppa, self.device.program_page(ppa, data, oob, now_us)
            except ProgramFailureError as exc:
                last_failure = exc
                self._note_program_failure(exc)
        raise last_failure

    def read_page_with_retry(self, ppa: Ppa, now_us: TimeUs):
        """Read one page through the read-retry ladder.

        Step 0 is the normal read; each further step re-senses with
        shifted reference voltages, multiplying the effective BER by the
        model's ``retry_ber_factor`` at the cost of a longer sense.
        :class:`UncorrectableReadError` escapes only once the ladder is
        exhausted.  Corrected-bit counts are recorded and at-risk pages
        (near the ECC budget) are handed to the patrol scrubber for
        refresh.  With reliability disabled this is exactly
        ``device.read_page`` — no extra metrics, no extra branches.
        """
        engine = self.device.reliability
        if engine is None or not engine.enabled:
            return self.device.read_page(ppa, now_us)
        step = 0
        limit = self.config.read_retry_limit
        while True:
            try:
                result = self.device.read_page(ppa, now_us, retry_step=step)
                break
            except UncorrectableReadError:
                if step >= limit:
                    self._h_retry_depth.record(step)
                    self._m_retry_exhausted.inc()
                    raise
                step += 1
                self._m_retry_reads.inc()
        self._h_retry_depth.record(step)
        if result.corrected_bits:
            self._h_corrected_bits.record(result.corrected_bits)
        if self.scrubber is not None:
            self.scrubber.observe_read(ppa, result.corrected_bits, step)
        return result

    def _note_program_failure(self, exc):
        """Account a media program failure; condemn the block if grown bad."""
        self.program_failures += 1
        if exc.permanent:
            self.block_manager.condemn_block(
                self.device.geometry.block_of_page(exc.ppa)
            )

    def _ensure_free_space(self, now_us):
        guard = 0
        while self.block_manager.free_block_count <= self.config.gc_low_watermark:
            self._collect_garbage(now_us)
            self.gc_runs += 1
            self._m_gc_runs.inc()
            guard += 1
            if guard > self.device.geometry.total_blocks:
                raise DeviceFullError("GC cannot make progress")

    def _translation_delay(self, now_us):
        """Charge pending DFTL translation-page I/O (demand cache mode).

        With a finite mapping cache, misses read translation pages and
        dirty evictions write them back — real flash operations a request
        waits on.  The fully-cached default never charges anything.
        """
        mapping = self.mapping
        delta_r = mapping.translation_reads - self._translation_reads_seen
        delta_w = mapping.translation_writes - self._translation_writes_seen
        if not delta_r and not delta_w:
            return now_us
        self._translation_reads_seen = mapping.translation_reads
        self._translation_writes_seen = mapping.translation_writes
        timing = self.device.timing
        self.device.counters.translation_reads += delta_r
        self.device.counters.translation_writes += delta_w
        latency = delta_r * timing.read_us + delta_w * timing.program_us
        channel, _free = self.device.timelines.earliest_free(now_us)
        return self.device.timelines.schedule(channel, now_us, latency)

    # --- Idle-window machinery (shared by all devices) ------------------------

    #: Background GC tops the pool up to this many times the low
    #: watermark during idle windows, keeping reclamation off the
    #: foreground path as real firmware does.
    BACKGROUND_GC_HEADROOM = 2

    def _before_host_request(self, arrival_us):
        """Detect the idle gap that just ended and spend it on housekeeping."""
        # Checkpoints run *before* the request, never between a host
        # program and its acknowledgement: a power cut inside a
        # checkpoint must not make an unacknowledged write durable
        # (the torture oracle holds us to read-your-acked-writes).
        if self.checkpointer is not None:
            self.checkpointer.maybe_checkpoint(arrival_us)
        gap = arrival_us - self._last_io_end_us
        if gap <= 0:
            return
        if self._idle.would_compress:
            self._use_idle_window(self._last_io_end_us, arrival_us)
        self._idle.observe_gap(gap)

    def _use_idle_window(self, start_us, deadline_us):
        """Housekeeping inside a predicted-idle window.

        The base device runs background GC, then patrol scrubbing;
        TimeSSD inserts background delta compression in between.  Work
        must stay inside the window — the request arriving at
        ``deadline_us`` never waits on it.
        """
        cursor = start_us
        if self.config.background_gc:
            cursor = self._background_collect(start_us, deadline_us)
        if self.scrubber is not None:
            self.scrubber.run(cursor, deadline_us)

    def gc_round_cost_bound(self):
        """Upper-bound cost of one GC round in microseconds.

        Idle-window admission and the scheduler's background-gc task both
        budget rounds with it: a full block migration (read + program +
        possible delta compression per page) plus the erase.
        """
        geo = self.device.geometry
        timing = self.device.timing
        return (
            geo.pages_per_block
            * (timing.read_us + timing.program_us + timing.delta_compress_us)
            + timing.erase_us
        )

    def background_gc_step(self, now_us):
        """One scheduler-driven background GC round (the async core's
        background-gc task body).

        Runs at most one round, and only while the free pool sits below
        the idle-refill target.  Returns the round's cost bound in
        microseconds, or 0 when there was nothing to do — the task
        sleeps on 0 instead of spinning.
        """
        if not self.config.background_gc or self.degraded_reason is not None:
            return 0
        target = self.BACKGROUND_GC_HEADROOM * self.config.gc_low_watermark
        if self.block_manager.free_block_count >= target:
            return 0
        self._gc_is_background = True
        try:
            try:
                self._collect_garbage(now_us)
            except DeviceFullError:
                return 0
            self.background_gc_runs += 1
            self._m_background_gc_runs.inc()
        finally:
            self._gc_is_background = False
        return self.gc_round_cost_bound()

    def background_scrub_step(self, now_us, budget_us):
        """One scheduler-driven patrol-scrub window of ``budget_us``.

        Returns the simulated time the pass consumed (0 when scrubbing
        is disabled or nothing needed patrol).
        """
        if self.scrubber is None:
            return 0
        end = self.scrubber.run(now_us, now_us + budget_us)
        return end - now_us

    def _background_collect(self, start_us, deadline_us):
        """GC rounds during idle, budgeted by an upper-bound round cost.

        Returns the time cursor where the window's remaining budget
        starts (TimeSSD continues with background compression from it).
        """
        round_bound = self.gc_round_cost_bound()
        target = self.BACKGROUND_GC_HEADROOM * self.config.gc_low_watermark
        t = start_us
        self._gc_is_background = True
        try:
            while (
                self.block_manager.free_block_count < target
                and t + round_bound <= deadline_us
            ):
                try:
                    self._collect_garbage(t)
                except DeviceFullError:
                    break
                self.background_gc_runs += 1
                self._m_background_gc_runs.inc()
                t += round_bound
        finally:
            self._gc_is_background = False
        return t

    # --- Hooks overridden by TimeSSD ----------------------------------------

    def _back_pointer_for(self, lpa, old_ppa):
        """Back-pointer for a fresh write of ``lpa`` whose previous PPA
        was ``old_ppa`` (TimeSSD: consults TRIM tombstones)."""
        return old_ppa

    def _after_host_request(self, complete_us, wrote):
        """Called after every host request completes."""
        self._last_io_end_us = complete_us

    @atomic_section(
        "stale-page bookkeeping (PVT clear; TimeSSD adds the retention "
        "census) must agree with the mapping update that triggered it"
    )
    def _on_invalidate(self, lpa, old_ppa, now_us):
        """An update/TRIM made ``old_ppa`` stale.

        The regular SSD just clears the PVT bit; TimeSSD additionally
        registers the page in the active bloom filter so it is *retained*.
        """
        self.block_manager.invalidate_page(old_ppa)

    def _collect_garbage(self, now_us):
        """Reclaim one block using the configured victim policy."""
        victim = self.block_manager.select_victim(
            self.config.gc_policy, now_us, BlockKind.DATA
        )
        if victim is None:
            raise DeviceFullError("no GC victim: device is full of valid data")
        self.relocate_block(victim, now_us)

    # --- Shared mechanics ----------------------------------------------------

    @atomic_section(
        "migrate + erase + release is one reclaim step: suspending "
        "between migration and erase would expose two valid copies of "
        "each page to a competing victim selection",
        restores_state=True,  # a program failure mid-migration escapes
        # with every already-migrated page individually remapped and the
        # victim still intact — consistent, merely unreclaimed
    )
    def relocate_block(self, pba, now_us):
        """Migrate every valid page out of ``pba``, erase and free it.

        Used both by GC and by wear leveling.  Migrated pages keep their
        OOB metadata (same version: same timestamp and back-pointer).
        """
        migrated = self._migrate_valid_pages(pba, now_us)
        self._erase_and_release(pba, now_us)
        tr = self.obs.trace
        if tr.enabled:
            tr.emit("gc", "reclaim", now_us, pba=pba, migrated=migrated)

    def _migrate_valid_pages(self, pba, now_us):
        geo = self.device.geometry
        bm = self.block_manager
        migrated = 0
        for ppa in geo.pages_of_block(pba):
            if not bm.is_valid(ppa):
                continue
            try:
                result = self.read_page_with_retry(ppa, now_us)
            except UncorrectableReadError:
                self.note_lost_valid_page(ppa)
                continue
            new_ppa, _complete = self.program_with_retry(
                lambda: bm.allocate_page(StreamId.GC),
                result.data,
                result.oob,
                now_us,
            )
            bm.mark_valid(new_ppa)
            bm.invalidate_page(ppa)
            self.remap_migrated_page(result.oob, ppa, new_ppa)
            migrated += 1
        self._m_gc_migrated.inc(migrated)
        return migrated

    def note_lost_valid_page(self, ppa):
        """A migration found a valid page unreadable through the full
        retry ladder: the current version is lost.

        The mapping is dropped and the LBA remembered in ``lost_lpas``
        so host reads surface the loss as a media error instead of
        silently answering "never written"; the next rewrite or TRIM of
        the LBA clears it.  The block's reclaim then proceeds — the
        unreadable copy is garbage either way.
        """
        page = self.device.peek_page(ppa)
        lpa = page.oob.lpa if page.oob is not None else None
        self.block_manager.invalidate_page(ppa)
        if lpa is not None and self.mapping.lookup(lpa) == ppa:
            self.mapping.invalidate(lpa)
            self.lost_lpas[lpa] = ppa
        self._m_lost_pages.inc()

    def _refresh_retained_page(self, ppa, now_us):
        """Refresh hook for invalid-but-meaningful pages.

        The base device retains nothing — a stale page is garbage and
        ages out with its block — so this is a no-op.  TimeSSD overrides
        it: a retained old version is compressed into the delta chain
        (which preserves its timestamp and version chain), and a
        retention-expired page is marked reclaimable instead of
        refreshed.  Returns ``(complete_us, refreshed)``.
        """
        return now_us, False

    def remap_migrated_page(self, oob, old_ppa: Ppa, new_ppa: Ppa):
        """Point the mapping at the migrated copy (no invalidation hook).

        Part of the GC-collaborator surface (with
        :meth:`program_with_retry`): the TimeSSD reclaimer and the
        FlashGuard defense run their own migration loops and remap
        through here.
        """
        current = self.mapping.lookup(oob.lpa)
        if current == old_ppa:
            self.mapping.update(oob.lpa, new_ppa)

    @atomic_section(
        "erase + release/retire + wear accounting commit together; a "
        "half-released block would be visible to a competing allocator",
        # A completed erase is durable media truth; release_block either
        # frees or retires the block, and the wear-leveler accounting is
        # monotonic counters that recovery rebuilds from flash anyway.
        restores_state=True,
    )
    def _erase_and_release(self, pba, now_us):
        try:
            self.device.erase_block(pba, now_us)
        except EraseFailureError:
            # Grown bad block: release_block sees Block.failed and
            # retires it instead of returning it to the free pool.
            self.erase_failures += 1
            self.block_manager.release_block(pba)
            return
        self.block_manager.release_block(pba)
        self.wear_leveler.on_erase(now_us)

    # --- Volatile-state lifecycle (power loss) --------------------------------

    def reset_volatile(self):
        """Drop every RAM-resident table, as an abrupt power cut does.

        Flash contents (data, OOB metadata, wear counters, grown bad
        blocks) survive; the mapping, block status/validity tables, wear
        leveler and idle predictor are rebuilt empty.  Callers follow up
        with a recovery scan (``timessd.recovery.rebuild_from_flash``) to
        repopulate firmware state from OOB metadata.
        """
        config = self.config
        self.block_manager = BlockManager(
            self.device, config.block_endurance_cycles
        )
        self.mapping = AddressMappingTable(
            config.logical_pages, config.mapping_cache_entries
        )
        self.wear_leveler = WearLeveler(
            self, config.wear_check_interval, config.wear_gap_threshold
        )
        self.degraded_reason = None
        self._degraded_since_us = self.clock.now_us
        self._degraded_failure_mark = (
            self.program_failures,
            self.erase_failures,
        )
        if self.scrubber is not None:
            # Scrub bookkeeping (at-risk queue, patrol cursor) is RAM.
            self.scrubber = PatrolScrubber(self)
        if self.checkpointer is not None:
            # Checkpoint bookkeeping (summary cache, block ownership,
            # sequence counter) is RAM; recovery re-adopts what survives
            # on flash via CheckpointWriter.adopt.
            self.checkpointer = CheckpointWriter(self)
        self._last_io_end_us = self.clock.now_us
        self._idle = IdlePredictor()
        self._gc_is_background = False
        self._translation_reads_seen = 0
        self._translation_writes_seen = 0


class RegularSSD(BaseSSD):
    """The paper's baseline: a conventional page-mapped SSD.

    Invalid pages are reclaimable immediately; nothing is retained.
    """
