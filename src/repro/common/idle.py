"""Idle-time prediction for background delta compression (paper §3.6).

TimeSSD predicts the next idle interval with exponential smoothing:

    t_predict[i] = alpha * t_interval[i-1] + (1 - alpha) * t_predict[i-1]

with ``alpha = 0.5``.  When the prediction exceeds a threshold (10 ms by
default) the device compresses retained pages in the background, and
suspends the moment a host request arrives.

In simulation the decision is evaluated retrospectively but causally: the
prediction *standing at the start of a gap* (i.e. computed only from
earlier gaps) decides whether background work ran during that gap.
"""


class IdlePredictor:
    """Exponentially smoothed idle-interval prediction."""

    def __init__(self, alpha=0.5, threshold_us=10_000):
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self.threshold_us = threshold_us
        self.predicted_us = 0.0
        self.observed_gaps = 0

    @property
    def would_compress(self):
        """Would the current prediction trigger background compression?"""
        return self.predicted_us >= self.threshold_us

    def observe_gap(self, gap_us):
        """Fold a finished idle interval into the prediction."""
        if gap_us < 0:
            raise ValueError("gap cannot be negative")
        self.predicted_us = self.alpha * gap_us + (1 - self.alpha) * self.predicted_us
        self.observed_gaps += 1
        return self.predicted_us
