"""Atomic-section annotations for the interleaving contract.

The simulator is synchronous today, but ROADMAP item 1 rebuilds the
request path around a discrete-event scheduler with interleaved
background tasks (GC, delta compression, bloom expiration).  Every
multi-step invariant-restoring sequence — program page, tag OOB, update
the mapping, insert into the index — is only correct because nothing can
interrupt it.  :func:`atomic_section` makes that assumption *explicit*:
the decorated function is one atomic step with respect to task
interleaving, and the static concurrency passes
(:mod:`repro.analysis.concurrency`) verify that

* every flash-mutating call site sits inside some atomic section,
* no call out of a section can re-enter a competing task root, and
* no ``await``/scheduler yield ever appears inside one.

The decorator is metadata only: it stores the annotation on the function
object and returns the function unchanged — zero wrappers, zero per-call
cost.  The analyzer reads the decoration from the AST (it never imports
this module at lint time).
"""

#: Attribute set on decorated functions (read by tests and tooling; the
#: static analyzer matches the decorator syntactically instead).
ATOMIC_ATTR = "__atomic_section__"


def atomic_section(reason, restores_state=False):
    """Mark a function as one atomic step of the interleaving contract.

    ``reason`` names the invariant the section maintains (it is printed
    in ``docs/interleaving-contract.md``).  ``restores_state=True``
    waives the mutations-last discipline for sections that may raise
    partway through *because* they explicitly restore a consistent state
    before the exception escapes — the justification belongs in
    ``reason``.
    """
    if not isinstance(reason, str) or not reason.strip():
        raise ValueError("atomic_section requires a non-empty reason string")
    if not isinstance(restores_state, bool):
        raise ValueError("restores_state must be a bool")

    def mark(fn):
        setattr(
            fn,
            ATOMIC_ATTR,
            {"reason": reason, "restores_state": restores_state},
        )
        return fn

    return mark
