"""Shared infrastructure: simulated time, units, errors, and statistics.

Everything in the simulator that needs a notion of time uses a
:class:`~repro.common.clock.SimClock` carrying integer microseconds, so
experiments are deterministic and independent of wall-clock speed.
"""

from repro.common.atomic import atomic_section
from repro.common.clock import SimClock
from repro.common.errors import (
    AddressError,
    DeviceFullError,
    FlashStateError,
    ReproError,
    RetentionViolationError,
)
from repro.common.stats import LatencyStats, RunningMean
from repro.common.units import (
    DAY_US,
    GIB,
    HOUR_US,
    KIB,
    MIB,
    MINUTE_US,
    MS_US,
    SECOND_US,
    format_bytes,
    format_duration,
)

__all__ = [
    "SimClock",
    "atomic_section",
    "ReproError",
    "AddressError",
    "DeviceFullError",
    "FlashStateError",
    "RetentionViolationError",
    "LatencyStats",
    "RunningMean",
    "KIB",
    "MIB",
    "GIB",
    "MS_US",
    "SECOND_US",
    "MINUTE_US",
    "HOUR_US",
    "DAY_US",
    "format_bytes",
    "format_duration",
]
