"""Small statistics helpers used by the device models and benchmarks."""

import math


class RunningMean:
    """Streaming mean/variance (Welford's algorithm)."""

    def __init__(self):
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0

    def add(self, value):
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)

    @property
    def mean(self):
        return self._mean if self.count else 0.0

    @property
    def variance(self):
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stdev(self):
        return math.sqrt(self.variance)

    def __repr__(self):
        return "RunningMean(n=%d, mean=%.3f)" % (self.count, self.mean)


class LatencyStats:
    """Latency accumulator with mean and approximate percentiles.

    Stores a bounded reservoir of samples so percentile queries stay cheap
    even for month-long traces.  Once the reservoir is full, replacement
    needs randomness, so a seeded ``random.Random`` is mandatory —
    determinism by construction (almanac-lint's determinism pack flags
    call sites that omit it).

    For device-internal response times prefer
    :class:`repro.obs.metrics.LatencyHistogram`, which needs no RNG and
    has exact extremes; this reservoir remains for workload-level stats
    where exact small-sample percentiles matter.
    """

    RESERVOIR_SIZE = 8192

    def __init__(self, rng):
        if rng is None:
            raise ValueError(
                "LatencyStats requires a seeded random.Random for reservoir "
                "sampling (pass random.Random(seed))"
            )
        self._running = RunningMean()
        self._reservoir = []
        self._rng = rng
        self.total_us = 0
        self.min_us = 0
        self.max_us = 0

    def record(self, latency_us):
        if latency_us < 0:
            raise ValueError("latency cannot be negative")
        if self._running.count == 0 or latency_us < self.min_us:
            self.min_us = latency_us
        self._running.add(latency_us)
        self.total_us += latency_us
        if latency_us > self.max_us:
            self.max_us = latency_us
        if len(self._reservoir) < self.RESERVOIR_SIZE:
            self._reservoir.append(latency_us)
        else:
            slot = self._rng.randrange(self._running.count)
            if slot < self.RESERVOIR_SIZE:
                self._reservoir[slot] = latency_us

    @property
    def count(self):
        return self._running.count

    @property
    def mean_us(self):
        return self._running.mean

    def percentile(self, p):
        """Approximate p-th percentile (0..100) from the sample reservoir.

        Linear interpolation between order statistics; the extremes are
        exact — ``percentile(0)`` is the true minimum and
        ``percentile(100)`` the true maximum even after reservoir
        eviction.  An empty accumulator reports 0.0.
        """
        if not 0 <= p <= 100:
            raise ValueError("percentile must be in [0, 100]")
        if not self._reservoir:
            return 0.0
        if p == 0:
            return float(self.min_us)
        if p == 100:
            return float(self.max_us)
        ordered = sorted(self._reservoir)
        if len(ordered) == 1:
            return float(ordered[0])
        position = p / 100.0 * (len(ordered) - 1)
        lower = int(position)
        upper = min(lower + 1, len(ordered) - 1)
        fraction = position - lower
        return float(ordered[lower] + (ordered[upper] - ordered[lower]) * fraction)

    def __repr__(self):
        return "LatencyStats(n=%d, mean=%.1fus, p99=%.1fus)" % (
            self.count,
            self.mean_us,
            self.percentile(99),
        )
