"""Size and time units used throughout the simulator.

All simulated time is carried as integer microseconds.  All sizes are bytes.

The :func:`typing.NewType` aliases below are the *address-domain*
vocabulary: LBAs, PPAs, block ids, timestamps, byte counts and page
counts are all plain ``int`` at runtime, which is exactly how the
paper's OOB back-pointer and reverse-index bugs (§3) happen — an LBA
stored where a PPA belongs is still just an integer.  Annotating a
parameter with one of these aliases costs nothing at runtime and seeds
``almanac-deepcheck``'s address-domain dataflow pass
(:mod:`repro.analysis.domains`), which flags cross-domain assignments,
comparisons and argument passing statically.
"""

from typing import NewType

#: Logical (host-visible) page address.
Lba = NewType("Lba", int)
#: Physical (flash) page address.
Ppa = NewType("Ppa", int)
#: Physical block address (flat block id).
BlockId = NewType("BlockId", int)
#: Simulated time: an instant or duration in integer microseconds.
TimeUs = NewType("TimeUs", int)
#: A size in bytes.
ByteCount = NewType("ByteCount", int)
#: A count of pages (not an address).
PageCount = NewType("PageCount", int)

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

MS_US = 1_000
SECOND_US = 1_000_000
MINUTE_US = 60 * SECOND_US
HOUR_US = 60 * MINUTE_US
DAY_US = 24 * HOUR_US


def format_bytes(n):
    """Render a byte count human-readably, e.g. ``format_bytes(3 * MIB)``."""
    if n < 0:
        raise ValueError("byte count must be non-negative, got %r" % (n,))
    for unit, name in ((GIB, "GiB"), (MIB, "MiB"), (KIB, "KiB")):
        if n >= unit:
            return "%.2f %s" % (n / unit, name)
    return "%d B" % n


def format_duration(us):
    """Render a microsecond duration human-readably."""
    if us < 0:
        raise ValueError("duration must be non-negative, got %r" % (us,))
    if us >= DAY_US:
        return "%.2f days" % (us / DAY_US)
    if us >= HOUR_US:
        return "%.2f h" % (us / HOUR_US)
    if us >= MINUTE_US:
        return "%.2f min" % (us / MINUTE_US)
    if us >= SECOND_US:
        return "%.3f s" % (us / SECOND_US)
    if us >= MS_US:
        return "%.3f ms" % (us / MS_US)
    return "%d us" % us
