"""Simulated clock.

The simulator never reads wall-clock time.  A :class:`SimClock` is shared by
the host (trace replayer / file system) and the device (FTL), carrying
integer microseconds.  Trace replay advances the clock to each request's
timestamp; device operations advance it by their modeled latency.
"""

from repro.common.units import format_duration


class SimClock:
    """Monotonic simulated clock in integer microseconds."""

    def __init__(self, start_us=0):
        if start_us < 0:
            raise ValueError("clock cannot start before t=0")
        self._now_us = int(start_us)

    @property
    def now_us(self):
        """Current simulated time in microseconds."""
        return self._now_us

    def advance(self, delta_us):
        """Move time forward by ``delta_us`` microseconds and return now."""
        if delta_us < 0:
            raise ValueError("cannot advance the clock backwards")
        self._now_us += int(delta_us)
        return self._now_us

    def advance_to(self, target_us):
        """Move time forward to ``target_us`` if it is in the future.

        A target in the past is ignored (the clock is monotonic); this is
        the convenient behaviour for replaying traces whose timestamps can
        fall behind device-time after a long GC stall.
        """
        if target_us > self._now_us:
            self._now_us = int(target_us)
        return self._now_us

    def __repr__(self):
        return "SimClock(t=%s)" % format_duration(self._now_us)
