"""Simulated clock.

The simulator never reads wall-clock time.  A :class:`SimClock` is shared by
the host (trace replayer / file system) and the device (FTL), carrying
integer microseconds.  Trace replay advances the clock to each request's
timestamp; device operations advance it by their modeled latency.
"""

from repro.common.units import format_duration


class SimClock:
    """Monotonic simulated clock in integer microseconds."""

    def __init__(self, start_us=0):
        if not isinstance(start_us, int) or isinstance(start_us, bool):
            raise TypeError(
                "clock start must be integer microseconds, got %r" % (start_us,)
            )
        if start_us < 0:
            raise ValueError("clock cannot start before t=0")
        self._now_us = start_us
        self._watermark_us = start_us

    @property
    def now_us(self):
        """Current simulated time in microseconds."""
        return self._now_us

    def advance(self, delta_us):
        """Move time forward by ``delta_us`` microseconds and return now.

        Deltas must be integers: all simulated time is integer
        microseconds, and a float delta silently truncating is exactly
        the kind of drift the determinism lint pack exists to prevent.
        """
        if not isinstance(delta_us, int) or isinstance(delta_us, bool):
            raise TypeError(
                "clock deltas must be integer microseconds, got %r "
                "(round explicitly before advancing)" % (delta_us,)
            )
        if delta_us < 0:
            raise ValueError("cannot advance the clock backwards")
        self._now_us += delta_us
        return self._now_us

    def advance_to(self, target_us):
        """Move time forward to ``target_us`` if it is in the future.

        A target in the past is ignored (the clock is monotonic); this is
        the convenient behaviour for replaying traces whose timestamps can
        fall behind device-time after a long GC stall.
        """
        if target_us > self._now_us:
            self._now_us = int(target_us)
        return self._now_us

    def assert_monotonic(self, label=""):
        """Debug helper: assert time never moved backwards between calls.

        The clock's own API cannot rewind, but a bug that pokes
        ``_now_us`` directly (or swaps clock objects mid-run) can.
        Sprinkle this at checkpoints; each call compares against the
        high-water mark of the previous one and returns ``now_us``.
        """
        if self._now_us < self._watermark_us:
            where = " at %s" % label if label else ""
            raise AssertionError(
                "simulated time moved backwards%s: %d us < high-water %d us"
                % (where, self._now_us, self._watermark_us)
            )
        self._watermark_us = self._now_us
        return self._now_us

    def __repr__(self):
        return "SimClock(t=%s, raw=%d us)" % (
            format_duration(self._now_us),
            self._now_us,
        )
