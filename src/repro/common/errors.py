"""Exception hierarchy for the Project Almanac reproduction."""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class AddressError(ReproError):
    """A logical or physical address is out of range or malformed."""


class FlashStateError(ReproError):
    """A flash operation violated NAND constraints.

    Examples: programming a page that is not erased, reading an erased
    page, or erasing at the wrong granularity.
    """


class DeviceFullError(ReproError):
    """The device ran out of free space and cannot accept the write.

    For a regular SSD this should never fire under correct GC; for TimeSSD
    it is the documented failure mode when the retention floor (three days
    by default) would otherwise be violated (paper §3.4).
    """


class RetentionViolationError(DeviceFullError):
    """TimeSSD refused an operation to protect the retention-floor guarantee.

    Raised when free space is exhausted but the oldest retained state is
    still inside the guaranteed retention window, so nothing may be
    reclaimed.  The device stops serving writes, which the paper treats as
    a deliberate, user-visible alarm condition.
    """

    def __init__(self, message, oldest_retained_us=None, floor_us=None):
        super().__init__(message)
        self.oldest_retained_us = oldest_retained_us
        self.floor_us = floor_us


class DegradedModeError(DeviceFullError):
    """The device is in read-only degraded mode and refused a mutation.

    Firmware enters degraded mode when it can no longer honor its own
    guarantees — the free pool shrank below usable capacity (bad-block
    retirement), or a write failed even after the retry budget.  Reads
    and storage-state queries keep working; writes and trims fail fast
    with this error until :meth:`BaseSSD.clear_degraded` (or a reboot via
    ``reset_volatile``) and the underlying condition is resolved.
    """

    def __init__(self, reason):
        super().__init__("device is in read-only degraded mode: %s" % reason)
        self.reason = reason


class FlashFaultError(ReproError):
    """Base class for media-level flash faults (see :mod:`repro.faults`)."""


class ProgramFailureError(FlashFaultError):
    """A page program failed at the media level.

    ``permanent`` distinguishes a grown bad block (all further programs
    to the block fail; firmware must retire it) from a transient failure
    (firmware retries on a fresh page).  Real NAND reports both via the
    program status register.
    """

    def __init__(self, ppa, permanent=False):
        kind = "permanent" if permanent else "transient"
        super().__init__("%s program failure at PPA %d" % (kind, ppa))
        self.ppa = ppa
        self.permanent = permanent


class EraseFailureError(FlashFaultError):
    """A block erase failed at the media level; the block has gone bad."""

    def __init__(self, pba):
        super().__init__("erase failure at PBA %d; block is bad" % pba)
        self.pba = pba


class UncorrectableReadError(FlashFaultError):
    """Raw bit errors exceeded the ECC correction budget for one read."""

    def __init__(self, ppa, bit_errors=None, budget=None, lost=False):
        if lost:
            message = (
                "uncorrectable read: the only copy (PPA %d) was lost to a "
                "media error during migration; rewrite the LBA to clear" % ppa
            )
        elif bit_errors is None:
            message = "uncorrectable read at PPA %d (injected)" % ppa
        else:
            message = "uncorrectable read at PPA %d: %d bit errors > ECC budget %d" % (
                ppa,
                bit_errors,
                budget,
            )
        super().__init__(message)
        self.ppa = ppa
        self.bit_errors = bit_errors
        self.budget = budget


class PowerCutError(ReproError):
    """Power was cut at an enumerated flash-op crash point.

    Raised by the fault-injection hooks *before* the interrupted flash
    operation commits (a torn program persists its partial page first).
    Everything already on flash stays; all volatile firmware state is
    lost — recover with ``reset_volatile`` + ``rebuild_from_flash``.
    """

    def __init__(self, message, op_index=None):
        super().__init__(message)
        self.op_index = op_index


class QueryError(ReproError):
    """A TimeKits query was malformed or targeted unavailable state."""


class FileSystemError(ReproError):
    """A file-system substrate operation failed (no such file, no space...)."""
