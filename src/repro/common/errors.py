"""Exception hierarchy for the Project Almanac reproduction."""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class AddressError(ReproError):
    """A logical or physical address is out of range or malformed."""


class FlashStateError(ReproError):
    """A flash operation violated NAND constraints.

    Examples: programming a page that is not erased, reading an erased
    page, or erasing at the wrong granularity.
    """


class DeviceFullError(ReproError):
    """The device ran out of free space and cannot accept the write.

    For a regular SSD this should never fire under correct GC; for TimeSSD
    it is the documented failure mode when the retention floor (three days
    by default) would otherwise be violated (paper §3.4).
    """


class RetentionViolationError(DeviceFullError):
    """TimeSSD refused an operation to protect the retention-floor guarantee.

    Raised when free space is exhausted but the oldest retained state is
    still inside the guaranteed retention window, so nothing may be
    reclaimed.  The device stops serving writes, which the paper treats as
    a deliberate, user-visible alarm condition.
    """

    def __init__(self, message, oldest_retained_us=None, floor_us=None):
        super().__init__(message)
        self.oldest_retained_us = oldest_retained_us
        self.floor_us = floor_us


class QueryError(ReproError):
    """A TimeKits query was malformed or targeted unavailable state."""


class FileSystemError(ReproError):
    """A file-system substrate operation failed (no such file, no space...)."""
