"""The device-side NVMe command interpreter.

The paper "slightly modif[ies] the NVMe command interpreter and add[s] a
state query engine into the SSD firmware".  This controller is that
interpreter: standard reads/writes/TRIM go to the FTL, vendor opcodes go
to the state-query engine (TimeKits' device half).
"""

from dataclasses import dataclass

from repro.common.errors import (
    AddressError,
    DegradedModeError,
    ProgramFailureError,
    RetentionViolationError,
    UncorrectableReadError,
)
from repro.flash.page import NULL_PPA
from repro.nvme.commands import AdminOpcode, NVMeCommand, NVMeCompletion, Opcode, StatusCode
from repro.timekits.api import TimeKits
from repro.timessd.ssd import TimeSSD


@dataclass
class IdentifyData:
    """Subset of the Identify Controller / Namespace data."""

    model: str
    logical_pages: int
    page_size: int
    retention_floor_us: int
    time_travel: bool


class NVMeController:
    """Dispatches NVMe commands against an SSD.

    Works with any :class:`~repro.ftl.ssd.BaseSSD`; the vendor opcodes
    additionally require a :class:`TimeSSD` (a regular device completes
    them with ``INVALID_OPCODE``, like real hardware would).
    """

    def __init__(self, ssd):
        self.ssd = ssd
        self._kits = TimeKits(ssd) if isinstance(ssd, TimeSSD) else None
        self.commands_processed = 0
        #: Shared with the SSD: per-opcode counts/latencies and
        #: per-status counts land in the device's metrics registry.
        self.obs = ssd.obs

    # --- Completion accounting -------------------------------------------------

    def _complete(self, command, completion):
        """Record metrics/trace for a completion, then return it."""
        opcode = getattr(command.opcode, "name", str(command.opcode))
        metrics = self.obs.metrics
        metrics.counter("nvme.op.%s" % opcode).inc()
        metrics.counter("nvme.status.%s" % completion.status.name).inc()
        if completion.status is StatusCode.SUCCESS:
            metrics.histogram("nvme.op.%s_us" % opcode).record(
                completion.latency_us
            )
        tr = self.obs.trace
        if tr.enabled:
            tr.emit(
                "nvme",
                opcode,
                self.ssd.clock.now_us,
                status=completion.status.name,
                latency_us=completion.latency_us,
            )
        return completion

    # --- Queues ---------------------------------------------------------------

    def submit(self, command):
        """Process one command synchronously; returns a completion."""
        self.commands_processed += 1
        start = self.ssd.clock.now_us
        try:
            if command.admin:
                result = self._admin(command)
            else:
                result = self._io(command)
        except AddressError:
            return self._complete(command, NVMeCompletion(StatusCode.LBA_OUT_OF_RANGE))
        # DegradedModeError and RetentionViolationError are both
        # refused-write DeviceFullErrors; they are sibling classes, so
        # order here is documentation, not shadowing.
        except DegradedModeError:
            return self._complete(
                command, NVMeCompletion(StatusCode.DEGRADED_READ_ONLY)
            )
        except RetentionViolationError:
            return self._complete(
                command, NVMeCompletion(StatusCode.RETENTION_PROTECTED)
            )
        except UncorrectableReadError:
            return self._complete(
                command, NVMeCompletion(StatusCode.MEDIA_UNRECOVERED_READ)
            )
        except ProgramFailureError:
            return self._complete(
                command, NVMeCompletion(StatusCode.MEDIA_WRITE_FAULT)
            )
        except _InvalidOpcode:
            return self._complete(command, NVMeCompletion(StatusCode.INVALID_OPCODE))
        except _InvalidField:
            return self._complete(command, NVMeCompletion(StatusCode.INVALID_FIELD))
        return self._complete(
            command,
            NVMeCompletion(
                StatusCode.SUCCESS, result, latency_us=self.ssd.clock.now_us - start
            ),
        )

    def submit_batch(self, commands, queue_depth=8):
        """Submit I/O commands at a queue depth > 1.

        The synchronous :meth:`submit` models QD=1 hosts; real NVMe
        keeps many commands in flight, and the device's channel/chip
        parallelism is what turns that into IOPS.  Commands are applied
        in submission order (so writes stay coherent) but their timing
        overlaps: slot ``i % queue_depth`` issues its next command as
        soon as its previous one completes.

        This is the *analytic* overlap model (static slot cursors, no
        scheduler); :class:`~repro.nvme.engine.AsyncNVMeEngine` is the
        event-driven one.  Both apply commands through
        :meth:`execute_io`, so their QD=1 semantics coincide.

        Returns ``(completions, elapsed_us)``; only READ/WRITE/DSM are
        accepted (vendor commands are host-serial by nature).
        """
        if queue_depth < 1:
            raise _InvalidField()
        ssd = self.ssd
        arrival = ssd.clock.now_us
        cursors = [arrival] * queue_depth
        completions = []
        for i, command in enumerate(commands):
            slot = i % queue_depth
            completion, end = self.execute_io(command, cursors[slot])
            cursors[slot] = end
            completions.append(completion)
        end = max(cursors)
        ssd.clock.advance_to(end)
        return completions, end - arrival

    def execute_io(self, command, start_us):
        """Apply one I/O command with its own time cursor.

        The shared executor behind :meth:`submit_batch` and the async
        engine's slot workers: the command applies as one atomic step
        starting at ``start_us``, and device errors map to NVMe statuses
        instead of raising.  Returns ``(completion, end_us)``; a failed
        command completes immediately, leaving ``end_us == start_us`` so
        the issuing slot does not lose its cursor.
        """
        self.commands_processed += 1
        try:
            self._check_range(command)
            result, end = self._apply_io(command, start_us)
        except (
            AddressError,
            DegradedModeError,
            RetentionViolationError,
            UncorrectableReadError,
            ProgramFailureError,
        ) as exc:
            return (
                self._complete(command, NVMeCompletion(_status_for(exc))),
                start_us,
            )
        except _InvalidOpcode:
            return (
                self._complete(command, NVMeCompletion(StatusCode.INVALID_OPCODE)),
                start_us,
            )
        except _InvalidField:
            return (
                self._complete(command, NVMeCompletion(StatusCode.INVALID_FIELD)),
                start_us,
            )
        return (
            self._complete(
                command,
                NVMeCompletion(
                    StatusCode.SUCCESS, result, latency_us=end - start_us
                ),
            ),
            end,
        )

    def _apply_io(self, command, start_us):
        """Apply one queued command starting at ``start_us``; returns
        ``(result, complete_us)``."""
        ssd = self.ssd
        t = start_us
        if command.opcode == Opcode.READ:
            pages = []
            for i in range(command.nlb):
                data, t = ssd.serve_read_at(command.slba + i, t)
                pages.append(data)
            return pages, t
        if command.opcode == Opcode.WRITE:
            ssd.ensure_writable()
            for i in range(command.nlb):
                data = command.data[i] if command.data is not None else None
                t = ssd.serve_write_at(command.slba + i, data, t)
            return command.nlb, t
        if command.opcode == Opcode.DSM:
            ssd.ensure_writable()
            for i in range(command.nlb):
                ssd.serve_trim_at(command.slba + i, t)
            return command.nlb, t
        raise _InvalidOpcode()

    # --- Admin commands ---------------------------------------------------------

    def _admin(self, command):
        if command.opcode == AdminOpcode.IDENTIFY:
            return IdentifyData(
                model="TimeSSD" if self._kits else "RegularSSD",
                logical_pages=self.ssd.logical_pages,
                page_size=self.ssd.device.geometry.page_size,
                retention_floor_us=getattr(
                    self.ssd.config, "retention_floor_us", 0
                ),
                time_travel=self._kits is not None,
            )
        if command.opcode == AdminOpcode.GET_LOG_PAGE:
            return {
                "host_pages_written": self.ssd.host_pages_written,
                "host_pages_read": self.ssd.host_pages_read,
                "write_amplification": self.ssd.write_amplification,
                "gc_runs": self.ssd.gc_runs,
                "background_gc_runs": self.ssd.background_gc_runs,
            }
        raise _InvalidOpcode()

    # --- I/O and vendor commands -------------------------------------------------

    def _io(self, command):
        handler = self._HANDLERS.get(command.opcode)
        if handler is None:
            raise _InvalidOpcode()
        return handler(self, command)

    def _check_range(self, command):
        if command.nlb < 1:
            raise _InvalidField()
        if command.slba < 0 or command.slba + command.nlb > self.ssd.logical_pages:
            raise AddressError("LBA range out of bounds")

    def _require_kits(self):
        if self._kits is None:
            raise _InvalidOpcode()
        return self._kits

    def _op_read(self, command):
        self._check_range(command)
        data, _ = self.ssd.read_range(command.slba, command.nlb)
        return data

    def _op_write(self, command):
        self._check_range(command)
        self.ssd.write_range(command.slba, command.nlb, command.data)
        return command.nlb

    def _op_trim(self, command):
        self._check_range(command)
        for i in range(command.nlb):
            self.ssd.trim(command.slba + i)
        return command.nlb

    def _op_flush(self, command):
        return 0  # writes are durable on completion in this model

    def _op_addr_query(self, command):
        self._check_range(command)
        return self._require_kits().addr_query(
            command.slba, command.nlb, command.t, threads=command.threads
        ).value

    def _op_addr_query_range(self, command):
        self._check_range(command)
        if command.t > command.t2:
            raise _InvalidField()
        return self._require_kits().addr_query_range(
            command.slba, command.nlb, command.t, command.t2, threads=command.threads
        ).value

    def _op_addr_query_all(self, command):
        self._check_range(command)
        return self._require_kits().addr_query_all(
            command.slba, command.nlb, threads=command.threads
        ).value

    def _op_time_query(self, command):
        return self._require_kits().time_query(command.t, threads=command.threads).value

    def _op_time_query_range(self, command):
        if command.t > command.t2:
            raise _InvalidField()
        return self._require_kits().time_query_range(
            command.t, command.t2, threads=command.threads
        ).value

    def _op_time_query_all(self, command):
        return self._require_kits().time_query_all(threads=command.threads).value

    def _op_rollback(self, command):
        self._check_range(command)
        return self._require_kits().rollback(
            command.slba, command.nlb, command.t, threads=command.threads
        ).value

    def _op_rollback_all(self, command):
        return self._require_kits().rollback_all(command.t, threads=command.threads).value

    def _op_retention_info(self, command):
        kits = self._require_kits()
        ssd = kits.ssd
        return {
            "retention_window_us": ssd.retention_window_us(),
            "retention_floor_us": ssd.config.retention_floor_us,
            "retained_pages": ssd.retained_pages,
            "live_bloom_segments": len(ssd.blooms.live_segments()),
            "delta_records": ssd.deltas.records_created,
        }

    _HANDLERS = {
        Opcode.READ: _op_read,
        Opcode.WRITE: _op_write,
        Opcode.DSM: _op_trim,
        Opcode.FLUSH: _op_flush,
        Opcode.ADDR_QUERY: _op_addr_query,
        Opcode.ADDR_QUERY_RANGE: _op_addr_query_range,
        Opcode.ADDR_QUERY_ALL: _op_addr_query_all,
        Opcode.TIME_QUERY: _op_time_query,
        Opcode.TIME_QUERY_RANGE: _op_time_query_range,
        Opcode.TIME_QUERY_ALL: _op_time_query_all,
        Opcode.ROLLBACK: _op_rollback,
        Opcode.ROLLBACK_ALL: _op_rollback_all,
        Opcode.RETENTION_INFO: _op_retention_info,
    }


#: Device-error to NVMe-status mapping shared by every submission path.
#: Order matters only for documentation: DegradedModeError and
#: RetentionViolationError are sibling DeviceFullErrors, and the
#: ``isinstance`` walk below checks most-specific classes first.
_STATUS_BY_ERROR = (
    (AddressError, StatusCode.LBA_OUT_OF_RANGE),
    (DegradedModeError, StatusCode.DEGRADED_READ_ONLY),
    (RetentionViolationError, StatusCode.RETENTION_PROTECTED),
    (UncorrectableReadError, StatusCode.MEDIA_UNRECOVERED_READ),
    (ProgramFailureError, StatusCode.MEDIA_WRITE_FAULT),
)


def _status_for(exc):
    """NVMe status code for a device-level error."""
    for error_cls, status in _STATUS_BY_ERROR:
        if isinstance(exc, error_cls):
            return status
    raise TypeError("no NVMe status for %r" % (exc,))


class _InvalidOpcode(Exception):
    pass


class _InvalidField(Exception):
    pass
