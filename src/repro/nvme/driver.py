"""Host-side NVMe driver.

The convenience layer applications link against (the paper's TimeKits
"is developed atop the host NVMe driver which issues NVMe commands to
the firmware").  Each method builds the corresponding command, submits
it, and unwraps the completion — raising :class:`NVMeError` on non-
success status so callers don't silently drop errors.
"""

from repro.common.errors import ReproError
from repro.nvme.commands import AdminOpcode, NVMeCommand, Opcode, StatusCode
from repro.nvme.controller import NVMeController
from repro.nvme.engine import AsyncNVMeEngine


class NVMeError(ReproError):
    """A command completed with a non-success status."""

    def __init__(self, status, opcode):
        super().__init__("opcode 0x%02X failed with status %s" % (opcode, status.name))
        self.status = status
        self.opcode = opcode


class HostNVMeDriver:
    """Synchronous submission API over a controller."""

    def __init__(self, ssd):
        self.controller = NVMeController(ssd)

    def _submit(self, command):
        completion = self.controller.submit(command)
        if not completion.ok:
            raise NVMeError(completion.status, command.opcode)
        return completion

    # --- Standard I/O -----------------------------------------------------------

    def identify(self):
        return self._submit(
            NVMeCommand(opcode=AdminOpcode.IDENTIFY, admin=True)
        ).result

    def smart_log(self):
        return self._submit(
            NVMeCommand(opcode=AdminOpcode.GET_LOG_PAGE, admin=True)
        ).result

    def read(self, lba, count=1):
        return self._submit(NVMeCommand(Opcode.READ, slba=lba, nlb=count)).result

    def write(self, lba, pages):
        return self._submit(
            NVMeCommand(Opcode.WRITE, slba=lba, nlb=len(pages), data=pages)
        ).result

    def trim(self, lba, count=1):
        return self._submit(NVMeCommand(Opcode.DSM, slba=lba, nlb=count)).result

    def flush(self):
        return self._submit(NVMeCommand(Opcode.FLUSH)).result

    def submit_batch(self, commands, queue_depth=8):
        """Queue-depth > 1 submission; returns (completions, elapsed_us)."""
        return self.controller.submit_batch(commands, queue_depth)

    def submit_async(self, commands, queue_depth=8, queue_pairs=1,
                     tie_break=None, daemons=False, retention_target_us=None):
        """Event-driven submission: returns (completions, elapsed_us).

        Builds an :class:`AsyncNVMeEngine` over this driver's controller
        (so per-opcode metrics aggregate in one place) and drains the
        command list through it.  With ``daemons=True`` the device's
        background tasks run on the same loop and interleave with the
        I/O; ``tie_break`` selects the schedule (see
        ``repro.sched.core.SeededTieBreak``).
        """
        engine = AsyncNVMeEngine(
            self.controller.ssd,
            queue_depth=queue_depth,
            queue_pairs=queue_pairs,
            tie_break=tie_break,
            controller=self.controller,
        )
        if daemons:
            engine.install_daemons(retention_target_us=retention_target_us)
        return engine.process(commands)

    # --- TimeKits vendor commands --------------------------------------------------

    def addr_query(self, lba, count=1, t=0, threads=1):
        return self._submit(
            NVMeCommand(Opcode.ADDR_QUERY, slba=lba, nlb=count, t=t, threads=threads)
        ).result

    def addr_query_range(self, lba, count, t1, t2, threads=1):
        return self._submit(
            NVMeCommand(
                Opcode.ADDR_QUERY_RANGE, slba=lba, nlb=count, t=t1, t2=t2, threads=threads
            )
        ).result

    def addr_query_all(self, lba, count=1, threads=1):
        return self._submit(
            NVMeCommand(Opcode.ADDR_QUERY_ALL, slba=lba, nlb=count, threads=threads)
        ).result

    def time_query(self, t, threads=1):
        return self._submit(
            NVMeCommand(Opcode.TIME_QUERY, t=t, threads=threads)
        ).result

    def time_query_range(self, t1, t2, threads=1):
        return self._submit(
            NVMeCommand(Opcode.TIME_QUERY_RANGE, t=t1, t2=t2, threads=threads)
        ).result

    def time_query_all(self, threads=1):
        return self._submit(
            NVMeCommand(Opcode.TIME_QUERY_ALL, threads=threads)
        ).result

    def rollback(self, lba, count=1, t=0, threads=1):
        return self._submit(
            NVMeCommand(Opcode.ROLLBACK, slba=lba, nlb=count, t=t, threads=threads)
        ).result

    def rollback_all(self, t, threads=1):
        return self._submit(
            NVMeCommand(Opcode.ROLLBACK_ALL, t=t, threads=threads)
        ).result

    def retention_info(self):
        return self._submit(NVMeCommand(Opcode.RETENTION_INFO)).result
