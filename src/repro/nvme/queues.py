"""NVMe submission/completion queue pairs.

A :class:`QueuePair` is the host↔device ring pair of the spec, reduced
to what the simulation needs: the host pushes ``(cid, command)``
entries onto the submission ring, the device's slot workers fetch them
in order, and completions land on the completion ring *in completion
order* — which under the event-driven engine is genuinely different
from submission order once commands overlap.
"""

from collections import deque


class QueuePair:
    """One submission ring and its paired completion ring."""

    def __init__(self, index):
        #: Queue-pair id (admin queue would be 0 on real hardware; the
        #: engine numbers its I/O pairs from 0 since admin commands stay
        #: on the synchronous path).
        self.index = index
        self.sq = deque()
        self.cq = []
        self.submitted = 0
        self.posted = 0

    def push(self, cid, command):
        """Host side: ring the doorbell with one submission entry."""
        self.sq.append((cid, command))
        self.submitted += 1

    def fetch(self):
        """Device side: take the oldest submission, or None if empty."""
        if not self.sq:
            return None
        return self.sq.popleft()

    def post(self, cid, completion, t_us):
        """Device side: append a completion entry at time ``t_us``."""
        self.cq.append((cid, completion, t_us))
        self.posted += 1

    def pop_completions(self):
        """Host side: drain the completion ring, preserving post order."""
        entries = self.cq
        self.cq = []
        return entries

    @property
    def outstanding(self):
        """Submissions fetched but not yet completed."""
        return self.submitted - self.posted - len(self.sq)

    def __repr__(self):
        return "QueuePair(%d, sq=%d, cq=%d)" % (
            self.index,
            len(self.sq),
            len(self.cq),
        )
