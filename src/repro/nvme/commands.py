"""NVMe command/completion structures.

Standard I/O opcodes follow the NVMe 1.3 base specification numbering;
the TimeKits operations occupy the vendor-specific opcode range
(0xC0-0xFF), exactly how a real firmware extension would surface them.
Command parameters travel in ``cdw10``-style dwords; to keep call sites
readable the model names them (``slba``, ``nlb``, ``t``, ``t2``,
``threads``) instead of packing raw dword integers.
"""

import enum
from dataclasses import dataclass, field


class Opcode(enum.IntEnum):
    """NVM command set opcodes, plus vendor extensions for TimeKits."""

    FLUSH = 0x00
    WRITE = 0x01
    READ = 0x02
    DSM = 0x09  # Dataset Management; with the deallocate bit = TRIM

    # Vendor-specific (0xC0+): the paper's TimeKits wrappers.
    ADDR_QUERY = 0xC0
    ADDR_QUERY_RANGE = 0xC1
    ADDR_QUERY_ALL = 0xC2
    TIME_QUERY = 0xC3
    TIME_QUERY_RANGE = 0xC4
    TIME_QUERY_ALL = 0xC5
    ROLLBACK = 0xC6
    ROLLBACK_ALL = 0xC7
    RETENTION_INFO = 0xC8


class AdminOpcode(enum.IntEnum):
    IDENTIFY = 0x06
    GET_LOG_PAGE = 0x02


class StatusCode(enum.IntEnum):
    """Completion status (generic command status subset + vendor)."""

    SUCCESS = 0x00
    INVALID_OPCODE = 0x01
    INVALID_FIELD = 0x02
    LBA_OUT_OF_RANGE = 0x80
    CAPACITY_EXCEEDED = 0x81
    # Media and Data Integrity Errors (spec status code type 0x2).
    MEDIA_UNRECOVERED_READ = 0x82
    MEDIA_WRITE_FAULT = 0x83
    # Vendor status: the retention-floor alarm — the device refuses
    # writes rather than recycle protected history (paper §3.4).
    RETENTION_PROTECTED = 0xC0
    # Vendor status: too many grown bad blocks (or a write-path media
    # fault) pushed the device into read-only degraded mode.
    DEGRADED_READ_ONLY = 0xC1


@dataclass
class NVMeCommand:
    """One submission-queue entry."""

    opcode: int
    nsid: int = 1
    slba: int = 0  # starting LBA (logical page in this model)
    nlb: int = 1  # number of logical blocks
    data: object = None  # write payload (list of pages) where applicable
    t: int = 0  # vendor: primary timestamp parameter
    t2: int = 0  # vendor: secondary timestamp parameter
    threads: int = 1  # vendor: recovery parallelism hint
    admin: bool = False


@dataclass
class NVMeCompletion:
    """One completion-queue entry."""

    status: StatusCode
    result: object = None
    latency_us: int = 0

    @property
    def ok(self):
        return self.status is StatusCode.SUCCESS
