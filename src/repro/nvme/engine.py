"""Event-driven NVMe engine: multi-queue submission with real overlap.

This is the async device core of ISSUE 9.  Where
:meth:`NVMeController.submit_batch` models queue depth analytically
(static slot cursors, one pass over the command list), the engine runs
the same per-command executor under the deterministic event loop:

* The host enqueues commands onto one or more :class:`QueuePair` rings.
* ``queue_depth`` *slot workers* per pair — cooperative tasks with the
  ``host-serve`` root from the interleaving contract — each fetch the
  next submission, apply it atomically via
  :meth:`NVMeController.execute_io`, then sleep until the command's
  device-time completion before posting to the completion ring.
* Background firmware tasks (GC, compression, expiry, scrub) spawned
  through :func:`repro.sched.tasks.spawn_device_daemons` interleave
  with the workers at yield points only.

Completions therefore post *out of submission order* whenever a later
command finishes first, and throughput scales with queue depth because
workers overlap on the device's channel/chip timelines.  With
``queue_depth=1`` the single worker's fetch→execute→sleep chain
reproduces ``submit_batch(queue_depth=1)`` cursor-for-cursor, which the
golden-determinism tests in ``tests/sched`` pin down.
"""

from repro.nvme.controller import NVMeController
from repro.nvme.queues import QueuePair
from repro.sched.core import At, EventLoop
from repro.sched.tasks import spawn_device_daemons


class AsyncNVMeEngine:
    """Multi-queue NVMe submission on the discrete-event scheduler."""

    def __init__(self, ssd, queue_depth=8, queue_pairs=1, tie_break=None,
                 controller=None):
        if queue_depth < 1:
            raise ValueError("queue depth must be at least 1")
        if queue_pairs < 1:
            raise ValueError("need at least one queue pair")
        self.ssd = ssd
        self.controller = controller if controller is not None else NVMeController(ssd)
        self.loop = EventLoop(ssd.clock, tie_break=tie_break, obs=ssd.obs)
        self.queue_depth = queue_depth
        self.pairs = [QueuePair(i) for i in range(queue_pairs)]
        self.obs = ssd.obs
        self._next_cid = 0
        self._inflight = 0
        #: High-water mark of commands simultaneously in flight across
        #: all pairs — the overlap-invariant tests' witness that QD > 1
        #: produces real concurrency, not just reordering.
        self.inflight_max = 0
        self.daemons = []
        self._log = []

    # --- Host side --------------------------------------------------------

    def install_daemons(self, retention_target_us=None):
        """Spawn the device's background tasks on this engine's loop.

        Idempotent per engine: daemons persist across :meth:`pump`
        calls, so installing twice would double the background work.
        """
        if not self.daemons:
            self.daemons = spawn_device_daemons(
                self.loop, self.ssd, retention_target_us=retention_target_us
            )
        return self.daemons

    def enqueue(self, commands):
        """Push commands onto the rings round-robin; returns their cids."""
        cids = []
        for command in commands:
            cid = self._next_cid
            self._next_cid += 1
            self.pairs[cid % len(self.pairs)].push(cid, command)
            cids.append(cid)
        return cids

    def pump(self):
        """Drain every ring to completion under the event loop.

        Spawns ``queue_depth`` slot workers per pair, runs the loop to
        quiescence, and returns ``(completions, elapsed_us)`` with
        completions in *submission* (cid) order — the per-ring
        completion-order record stays available via
        :meth:`completion_log`.
        """
        arrival = self.loop.now_us
        for pair in self.pairs:
            workers = min(self.queue_depth, len(pair.sq))
            for slot in range(workers):
                self.loop.spawn(
                    self._slot_worker(pair),
                    name="nvme-q%d-slot%d" % (pair.index, slot),
                    root="host-serve",
                )
        self.loop.run()
        entries = []
        end = arrival
        for pair in self.pairs:
            for cid, completion, t_us in pair.pop_completions():
                entries.append((cid, completion, t_us))
                self._log.append((cid, completion.status, t_us))
                if t_us > end:
                    end = t_us
        entries.sort(key=lambda entry: entry[0])
        self.ssd.clock.advance_to(end)
        metrics = self.obs.metrics
        metrics.gauge("nvme.engine.inflight_max").set(self.inflight_max)
        metrics.gauge("nvme.engine.events").set(self.loop.events_dispatched)
        metrics.gauge("nvme.engine.tasks").set(self.loop.tasks_spawned)
        return [completion for _cid, completion, _t in entries], end - arrival

    def process(self, commands):
        """Enqueue then pump: the one-call submission path."""
        self.enqueue(commands)
        return self.pump()

    def completion_log(self):
        """(cid, status, t_us) triples in the order completions posted."""
        return list(self._log)

    # --- Device side ------------------------------------------------------

    def _slot_worker(self, pair):
        """One queue slot: fetch, apply, occupy device time, post."""
        loop = self.loop
        while True:
            entry = pair.fetch()
            if entry is None:
                return
            cid, command = entry
            self._inflight += 1
            if self._inflight > self.inflight_max:
                self.inflight_max = self._inflight
            start = loop.now_us
            completion, end = self.controller.execute_io(command, start)
            if end > start:
                yield At(end)
            self._inflight -= 1
            pair.post(cid, completion, loop.now_us)
