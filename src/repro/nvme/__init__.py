"""NVMe command layer (paper §4).

The paper implements TimeSSD on a Cosmos+ OpenSSD board speaking NVMe and
"defines new NVMe commands to wrap the TimeKits API"; TimeKits runs atop
the host NVMe driver.  This package reproduces that plumbing: command and
completion structures, a controller that dispatches standard I/O opcodes
plus the vendor-specific time-travel opcodes to the device, and a host
driver exposing the same operations as friendly calls.
"""

from repro.nvme.commands import (
    AdminOpcode,
    NVMeCommand,
    NVMeCompletion,
    Opcode,
    StatusCode,
)
from repro.nvme.controller import NVMeController
from repro.nvme.driver import HostNVMeDriver

__all__ = [
    "Opcode",
    "AdminOpcode",
    "StatusCode",
    "NVMeCommand",
    "NVMeCompletion",
    "NVMeController",
    "HostNVMeDriver",
]
