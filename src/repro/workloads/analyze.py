"""Trace characterization.

Computes the statistical fingerprint the synthesizer is parameterized
by — write ratio, working-set size, daily turnover, sequentiality,
hot/cold skew, idle profile — from any iterable of
:class:`~repro.workloads.trace.TraceRecord`.  Used three ways:

* validating that synthesized traces actually exhibit their profile;
* characterizing real traces (via :mod:`repro.workloads.io`) before
  replaying them;
* sizing devices for experiments (``pages_written`` vs capacity).
"""

from dataclasses import dataclass

from repro.common.units import DAY_US, HOUR_US


@dataclass
class TraceStats:
    """The fingerprint of one trace."""

    requests: int
    duration_us: int
    write_ratio: float
    pages_written: int
    pages_read: int
    working_set_pages: int
    #: Pages written per day divided by working-set size.
    daily_turnover: float
    #: Fraction of requests that continue the previous request's range.
    sequentiality: float
    #: Smallest fraction of the working set receiving half the accesses.
    hot_half_fraction: float
    mean_interarrival_us: float
    #: Fraction of wall time spent in gaps longer than 10 ms (idle).
    idle_fraction: float

    def summary(self):
        lines = [
            "requests:        %d over %.2f days" % (self.requests, self.duration_us / DAY_US),
            "write ratio:     %.2f" % self.write_ratio,
            "pages written:   %d (turnover %.3f/day)" % (self.pages_written, self.daily_turnover),
            "working set:     %d pages" % self.working_set_pages,
            "sequentiality:   %.2f" % self.sequentiality,
            "hot-half:        %.2f of working set gets 50%% of accesses" % self.hot_half_fraction,
            "interarrival:    %.1f ms mean, %.1f%% idle (>10ms gaps)"
            % (self.mean_interarrival_us / 1000.0, self.idle_fraction * 100),
        ]
        return "\n".join(lines)


IDLE_GAP_US = 10_000


def analyze_trace(records):
    """Compute :class:`TraceStats` for a list of records."""
    records = list(records)
    if not records:
        raise ValueError("cannot analyze an empty trace")
    requests = len(records)
    writes = [r for r in records if r.op == "W"]
    pages_written = sum(r.npages for r in writes)
    pages_read = sum(r.npages for r in records if r.op == "R")

    touched = set()
    access_counts = {}
    sequential = 0
    prev_end = None
    gaps = []
    idle_time = 0
    prev_ts = None
    for record in records:
        for page in range(record.lpa, record.lpa + record.npages):
            touched.add(page)
        access_counts[record.lpa] = access_counts.get(record.lpa, 0) + 1
        if prev_end is not None and record.lpa == prev_end:
            sequential += 1
        prev_end = record.lpa + record.npages
        if prev_ts is not None:
            gap = record.timestamp_us - prev_ts
            gaps.append(gap)
            if gap > IDLE_GAP_US:
                idle_time += gap
        prev_ts = record.timestamp_us

    duration = max(1, records[-1].timestamp_us - records[0].timestamp_us)
    working_set = len(touched)
    days = duration / DAY_US

    counts = sorted(access_counts.values(), reverse=True)
    half = sum(counts) / 2.0
    running = 0.0
    hot_lpas = 0
    for count in counts:
        running += count
        hot_lpas += 1
        if running >= half:
            break
    hot_half = hot_lpas / max(1, len(counts))

    return TraceStats(
        requests=requests,
        duration_us=duration,
        write_ratio=len(writes) / requests,
        pages_written=pages_written,
        pages_read=pages_read,
        working_set_pages=working_set,
        daily_turnover=(pages_written / working_set / days) if working_set and days else 0.0,
        sequentiality=sequential / max(1, requests - 1),
        hot_half_fraction=hot_half,
        mean_interarrival_us=(sum(gaps) / len(gaps)) if gaps else 0.0,
        idle_fraction=idle_time / duration,
    )
