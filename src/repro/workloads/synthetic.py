"""Statistical block-trace synthesizer.

Generates multi-day traces with the properties the paper's experiments
depend on: write/read mix, daily write turnover (what drives retention
duration), hot/cold locality (what drives GC efficiency), sequential
runs (what drives bloom-filter grouping), and diurnal idleness (what
enables background compression).
"""

import math
import random
import zlib
from dataclasses import dataclass

from repro.common.units import DAY_US
from repro.workloads.trace import TraceRecord


@dataclass(frozen=True)
class VolumeProfile:
    """Statistical fingerprint of one traced volume."""

    name: str
    write_ratio: float
    #: Fraction of the working set overwritten per day (write intensity).
    daily_turnover: float
    #: Fraction of the logical space the volume actually touches.
    working_set: float
    #: Hot/cold split: `hot_fraction` of pages receive `hot_access_prob`
    #: of the accesses.
    hot_fraction: float = 0.2
    hot_access_prob: float = 0.8
    #: Probability the next request continues a sequential run.
    seq_prob: float = 0.3
    #: Mean request size in pages (geometric).
    req_pages_mean: float = 2.0
    #: Day/night intensity modulation, 0 (flat) .. 1 (full swing).
    diurnal_amplitude: float = 0.6
    #: Probability that a request opens a back-to-back burst, and the
    #: burst's geometric mean length.  Bursts are what put GC on the
    #: foreground path — a purely Poisson trace leaves the device idle
    #: enough that housekeeping is always free.
    burst_prob: float = 0.05
    burst_len_mean: float = 60.0
    burst_gap_us: int = 400
    description: str = ""


def synthetic_trace(
    profile,
    logical_pages,
    days,
    seed=0,
    intensity_scale=1.0,
    max_requests=None,
    working_pages=None,
):
    """Yield :class:`TraceRecord` covering ``days`` of simulated time.

    ``intensity_scale`` multiplies the volume's write intensity —
    benches use it to sweep load without changing the volume's shape.
    ``working_pages`` overrides the profile's working-set size; the
    capacity-usage experiments (50% vs 80% of the device) set it
    explicitly.
    """
    if days <= 0:
        raise ValueError("days must be positive")
    # Stable per-volume salt (builtin hash() is randomized per process).
    name_salt = zlib.crc32(profile.name.encode()) & 0xFFFF
    rng = random.Random((seed << 16) ^ name_salt)
    if working_pages is not None:
        working = max(16, min(working_pages, logical_pages))
    else:
        working = max(16, int(logical_pages * profile.working_set))
    hot_pages = max(1, int(working * profile.hot_fraction))
    pages_per_req = max(1.0, profile.req_pages_mean)

    writes_per_day = profile.daily_turnover * intensity_scale * working / pages_per_req
    requests_per_day = max(1.0, writes_per_day / max(profile.write_ratio, 0.01))
    # Each Poisson arrival spawns a burst with probability burst_prob, so
    # scale the base rate to keep the daily volume on target.
    burst_factor = 1.0 + profile.burst_prob * profile.burst_len_mean
    base_rate_per_us = requests_per_day / DAY_US / burst_factor

    t = 0.0
    horizon = days * DAY_US
    emitted = 0
    seq_lpa = None
    burst_remaining = 0
    while t < horizon:
        if burst_remaining > 0:
            burst_remaining -= 1
            t += rng.expovariate(1.0 / profile.burst_gap_us)
        else:
            # Diurnal inhomogeneous arrivals via per-event rate modulation.
            phase = 2.0 * math.pi * ((t % DAY_US) / DAY_US)
            rate = base_rate_per_us * (
                1.0 + profile.diurnal_amplitude * math.sin(phase)
            )
            rate = max(rate, base_rate_per_us * 0.05)
            t += rng.expovariate(rate)
            if profile.burst_prob and rng.random() < profile.burst_prob:
                burst_remaining = 1 + int(rng.expovariate(1.0 / profile.burst_len_mean))
        if t >= horizon:
            break
        npages = min(16, 1 + int(rng.expovariate(1.0 / pages_per_req)))
        if seq_lpa is not None and rng.random() < profile.seq_prob:
            lpa = seq_lpa
        elif rng.random() < profile.hot_access_prob:
            lpa = rng.randrange(hot_pages)
        else:
            lpa = hot_pages + rng.randrange(max(1, working - hot_pages))
        lpa = min(lpa, working - 1)
        npages = min(npages, working - lpa)
        op = "W" if rng.random() < profile.write_ratio else "R"
        yield TraceRecord(int(t), op, lpa, npages)
        seq_lpa = lpa + npages if lpa + npages < working else None
        emitted += 1
        if max_requests is not None and emitted >= max_requests:
            break


def trace_write_volume_pages(profile, logical_pages, days, intensity_scale=1.0):
    """Expected pages written — used by benches to size devices."""
    working = max(16, int(logical_pages * profile.working_set))
    return int(profile.daily_turnover * intensity_scale * working * days)
