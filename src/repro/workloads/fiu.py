"""FIU-like volume profiles (paper Table 2, Figures 6-8).

The FIU traces were collected over ~20 days on Florida International
University department computers — lighter, burstier and more idle than
the enterprise MSR volumes, which is why the paper's Figure 8 shows the
university workloads retaining history for up to 40 days while company
servers reach 56 days at low utilization.
"""

from repro.workloads.synthetic import VolumeProfile, synthetic_trace

FIU_VOLUMES = {
    "research": VolumeProfile(
        name="research",
        write_ratio=0.78,
        daily_turnover=0.015,
        working_set=0.35,
        hot_fraction=0.15,
        seq_prob=0.35,
        req_pages_mean=2.0,
        diurnal_amplitude=0.9,
        description="research group workstations",
    ),
    "webmail": VolumeProfile(
        name="webmail",
        write_ratio=0.82,
        daily_turnover=0.025,
        working_set=0.30,
        hot_fraction=0.10,
        seq_prob=0.25,
        req_pages_mean=1.8,
        diurnal_amplitude=0.8,
        description="department webmail server",
    ),
    "online": VolumeProfile(
        name="online",
        write_ratio=0.74,
        daily_turnover=0.02,
        working_set=0.30,
        hot_fraction=0.20,
        seq_prob=0.30,
        req_pages_mean=2.0,
        diurnal_amplitude=0.8,
        description="online course server",
    ),
    "web-online": VolumeProfile(
        name="web-online",
        write_ratio=0.76,
        daily_turnover=0.022,
        working_set=0.35,
        hot_fraction=0.15,
        seq_prob=0.30,
        req_pages_mean=2.2,
        diurnal_amplitude=0.85,
        description="web + course hybrid server",
    ),
    "webusers": VolumeProfile(
        name="webusers",
        write_ratio=0.70,
        daily_turnover=0.012,
        working_set=0.40,
        hot_fraction=0.20,
        seq_prob=0.35,
        req_pages_mean=2.0,
        diurnal_amplitude=0.9,
        description="user web hosting",
    ),
}


def fiu_trace(volume, logical_pages, days=20, seed=0, intensity_scale=1.0, max_requests=None, working_pages=None):
    """Synthesize an FIU-like trace for ``volume`` (e.g. ``"webmail"``)."""
    profile = FIU_VOLUMES[volume]
    return synthetic_trace(
        profile,
        logical_pages,
        days,
        seed=seed,
        intensity_scale=intensity_scale,
        max_requests=max_requests,
        working_pages=working_pages,
    )
