"""Workload substrates driving the evaluation.

The paper's trace sets (MSR Cambridge, FIU) are not redistributable, so
:mod:`repro.workloads.msr` and :mod:`repro.workloads.fiu` synthesize
traces with per-volume parameters matched to the published workload
characterizations (write ratio, intensity, locality, idleness).  The
benchmark generators model IOZone, PostMark and Shore-MT-style OLTP.
"""

from repro.workloads.trace import ReplayStats, TraceRecord, TraceReplayer
from repro.workloads.msr import MSR_VOLUMES, msr_trace
from repro.workloads.fiu import FIU_VOLUMES, fiu_trace
from repro.workloads.iozone import IOZoneWorkload
from repro.workloads.postmark import PostMarkWorkload

__all__ = [
    "TraceRecord",
    "TraceReplayer",
    "ReplayStats",
    "MSR_VOLUMES",
    "msr_trace",
    "FIU_VOLUMES",
    "fiu_trace",
    "IOZoneWorkload",
    "PostMarkWorkload",
]
