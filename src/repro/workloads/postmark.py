"""PostMark-like mail-server benchmark (paper Figure 9b).

A pool of small files undergoes transactions: read a file, append to a
file, create a file, delete a file — the classic small-file metadata-
heavy churn of a mail spool.  Content is text-like and version-local
(the paper measures delta ratios of 0.12-0.23 for it).
"""

import random
from dataclasses import dataclass

from repro.common.units import SECOND_US
from repro.workloads.content import ContentFactory


@dataclass
class PostMarkResult:
    transactions: int
    elapsed_us: int
    creates: int
    deletes: int
    reads: int
    appends: int

    @property
    def tps(self):
        return self.transactions * SECOND_US / max(1, self.elapsed_us)


class PostMarkWorkload:
    """File-pool transactions approximating PostMark."""

    def __init__(
        self,
        fs,
        nfiles=64,
        file_pages_max=8,
        seed=0,
        mutation_fraction=0.15,
        carry_content=True,
    ):
        self.fs = fs
        self.nfiles = nfiles
        self.file_pages_max = file_pages_max
        self._rng = random.Random(seed)
        self._content = (
            ContentFactory(fs.page_size, self._rng, mutation_fraction)
            if carry_content
            else None
        )
        self._serial = 0
        self._pool = []

    def _payload(self, name, page):
        if self._content is None:
            return None
        return self._content.mutate((name, page))

    def _new_name(self):
        self._serial += 1
        return "mail%06d" % self._serial

    def _create_file(self):
        name = self._new_name()
        self.fs.create(name)
        pages = self._rng.randrange(1, self.file_pages_max + 1)
        for page in range(pages):
            self.fs.write_pages(name, page, 1, [self._payload(name, page)])
        self._pool.append(name)
        return name

    def setup(self):
        """Populate the initial file pool."""
        for _ in range(self.nfiles):
            self._create_file()

    def run(self, transactions=500):
        """Run the transaction mix; returns :class:`PostMarkResult`."""
        if not self._pool:
            self.setup()
        fs = self.fs
        rng = self._rng
        counts = {"create": 0, "delete": 0, "read": 0, "append": 0}
        start = fs.ssd.clock.now_us
        for _ in range(transactions):
            roll = rng.random()
            if roll < 0.25 and len(self._pool) > self.nfiles // 2:
                name = self._pool.pop(rng.randrange(len(self._pool)))
                if self._content is not None:
                    npages = (fs.file_size(name) + fs.page_size - 1) // fs.page_size
                    for page in range(npages):
                        self._content.forget((name, page))
                fs.delete(name)
                counts["delete"] += 1
            elif roll < 0.5:
                self._create_file()
                counts["create"] += 1
            elif roll < 0.75:
                name = rng.choice(self._pool)
                fs.read(name, 0, fs.file_size(name))
                counts["read"] += 1
            else:
                name = rng.choice(self._pool)
                page = max(0, fs.file_size(name) // fs.page_size - 1)
                fs.write_pages(name, page, 1, [self._payload(name, page)])
                counts["append"] += 1
            # Light client think time between transactions.
            fs.ssd.clock.advance(200)
        return PostMarkResult(
            transactions=transactions,
            elapsed_us=fs.ssd.clock.now_us - start,
            creates=counts["create"],
            deletes=counts["delete"],
            reads=counts["read"],
            appends=counts["append"],
        )
