"""IOZone-like file-system benchmark (paper Figure 9a).

Four phases over one large file: sequential write, sequential read,
random write, random read.  IOZone fills pages with random values, so —
as the paper notes — delta compression gets almost no traction here; the
TimeSSD win on random writes comes from avoiding journal traffic.
"""

import random
from dataclasses import dataclass

from repro.common.units import SECOND_US
from repro.workloads.content import ContentFactory


@dataclass
class IOZoneResult:
    """Throughput in bytes per simulated second, per phase."""

    seq_write: float
    seq_read: float
    rand_write: float
    rand_read: float

    def as_dict(self):
        return {
            "SeqWrite": self.seq_write,
            "SeqRead": self.seq_read,
            "RandomWrite": self.rand_write,
            "RandomRead": self.rand_read,
        }


class IOZoneWorkload:
    """Runs the four IOZone phases against a file system."""

    def __init__(self, fs, file_pages=256, seed=0, carry_content=True):
        self.fs = fs
        self.file_pages = file_pages
        self._rng = random.Random(seed)
        self._content = ContentFactory(fs.page_size, self._rng) if carry_content else None

    def _page_payload(self):
        if self._content is None:
            return None
        return self._content.incompressible()

    def _timed(self, fn):
        start = self.fs.ssd.clock.now_us
        fn()
        elapsed = max(1, self.fs.ssd.clock.now_us - start)
        return self.file_pages * self.fs.page_size * SECOND_US / elapsed

    def run(self):
        """Execute all four phases; returns :class:`IOZoneResult`."""
        fs = self.fs
        name = "iozone.dat"
        if not fs.exists(name):
            fs.create(name)

        def seq_write():
            for page in range(self.file_pages):
                fs.write_pages(name, page, 1, [self._page_payload()])

        def seq_read():
            for page in range(self.file_pages):
                fs.read_pages(name, page, 1)

        def rand_write():
            for _ in range(self.file_pages):
                page = self._rng.randrange(self.file_pages)
                fs.write_pages(name, page, 1, [self._page_payload()])

        def rand_read():
            for _ in range(self.file_pages):
                fs.read_pages(name, self._rng.randrange(self.file_pages), 1)

        return IOZoneResult(
            seq_write=self._timed(seq_write),
            seq_read=self._timed(seq_read),
            rand_write=self._timed(rand_write),
            rand_read=self._timed(rand_read),
        )
