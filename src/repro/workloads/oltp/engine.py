"""Page-level OLTP storage engine over a file-system substrate.

Tables live in one data file accessed with strong skew (OLTP working
sets are hot); every transaction appends to a write-ahead log file.
Updates mutate a small fraction of each page, giving the 0.12-0.23 delta
compression ratios the paper measures for database workloads.
"""

import random
from dataclasses import dataclass

from repro.common.units import SECOND_US
from repro.workloads.content import ContentFactory


@dataclass(frozen=True)
class TransactionProfile:
    """Page-level shape of one transaction type."""

    name: str
    page_reads: int
    page_writes: int
    log_appends: int
    write_probability: float = 1.0  # fraction of txns that write at all
    think_us: int = 100


@dataclass
class OLTPResult:
    benchmark: str
    transactions: int
    elapsed_us: int
    pages_read: int
    pages_written: int
    log_pages: int

    @property
    def tps(self):
        return self.transactions * SECOND_US / max(1, self.elapsed_us)


class MiniOLTPEngine:
    """Executes a transaction profile against a table + log file pair."""

    def __init__(
        self,
        fs,
        table_pages=512,
        seed=0,
        mutation_fraction=0.08,
        carry_content=True,
        hot_fraction=0.2,
    ):
        self.fs = fs
        self.table_pages = table_pages
        self.hot_pages = max(1, int(table_pages * hot_fraction))
        self._rng = random.Random(seed)
        self._content = (
            ContentFactory(fs.page_size, self._rng, mutation_fraction)
            if carry_content
            else None
        )
        self._log_page = 0
        self._loaded = False

    TABLE = "oltp_table.db"
    LOG = "oltp_wal.log"

    def load(self):
        """Create and populate the table and log files."""
        fs = self.fs
        for name in (self.TABLE, self.LOG):
            if not fs.exists(name):
                fs.create(name)
        for page in range(self.table_pages):
            fs.write_pages(self.TABLE, page, 1, [self._table_payload(page)])
        self._loaded = True

    def _table_payload(self, page):
        if self._content is None:
            return None
        return self._content.mutate(("table", page))

    def _log_payload(self):
        if self._content is None:
            return None
        # Log pages are fresh every time (appends, no locality).
        return self._content.incompressible()

    def _pick_page(self):
        """Zipf-ish: 80% of accesses hit the hot region."""
        if self._rng.random() < 0.8:
            return self._rng.randrange(self.hot_pages)
        return self.hot_pages + self._rng.randrange(
            max(1, self.table_pages - self.hot_pages)
        )

    def run(self, profile, transactions=500):
        """Run ``transactions`` of ``profile``; returns :class:`OLTPResult`."""
        if not self._loaded:
            self.load()
        fs = self.fs
        rng = self._rng
        reads = writes = logs = 0
        start = fs.ssd.clock.now_us
        for _ in range(transactions):
            for _ in range(profile.page_reads):
                fs.read_pages(self.TABLE, self._pick_page(), 1)
                reads += 1
            if rng.random() < profile.write_probability:
                for _ in range(profile.page_writes):
                    page = self._pick_page()
                    fs.write_pages(self.TABLE, page, 1, [self._table_payload(page)])
                    writes += 1
                for _ in range(profile.log_appends):
                    fs.write_pages(self.LOG, self._log_page, 1, [self._log_payload()])
                    self._log_page += 1
                    logs += 1
            fs.ssd.clock.advance(profile.think_us)
        return OLTPResult(
            benchmark=profile.name,
            transactions=transactions,
            elapsed_us=fs.ssd.clock.now_us - start,
            pages_read=reads,
            pages_written=writes,
            log_pages=logs,
        )
