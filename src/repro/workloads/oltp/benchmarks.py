"""Transaction shapes for the paper's three OLTP benchmarks.

Page-level footprints approximating each benchmark's character:

* TPC-C — heavyweight order-processing transactions: many reads and
  updates across warehouse/district/stock pages plus multi-page log
  records.  Lowest TPS of the three (the paper reports 6.3K).
* TPC-B — the classic debit/credit stress test: a handful of page
  touches per transaction (31.1K TPS in the paper).
* TATP — telecom subscriber lookups: overwhelmingly read-only with
  tiny occasional updates (122.3K TPS in the paper).
"""

from repro.workloads.oltp.engine import TransactionProfile

TPCC = TransactionProfile(
    name="TPCC",
    page_reads=8,
    page_writes=5,
    log_appends=2,
    write_probability=0.92,
    think_us=150,
)

TPCB = TransactionProfile(
    name="TPCB",
    page_reads=3,
    page_writes=3,
    log_appends=1,
    write_probability=1.0,
    think_us=60,
)

TATP = TransactionProfile(
    name="TATP",
    page_reads=1,
    page_writes=1,
    log_appends=1,
    write_probability=0.2,
    think_us=15,
)
