"""A small but real transactional storage manager.

The paper's OLTP numbers come from Shore-MT — a storage manager with a
buffer pool, a write-ahead log and crash recovery.  The page-mix
generator in :mod:`repro.workloads.oltp.engine` reproduces Shore-MT's
*I/O shape*; this module reproduces its *semantics*: transactions are
atomic and durable across a crash, implemented with redo-only WAL and
page-level buffering, all on top of the simulated file systems/SSDs.

Log records are serialized to real bytes, so the engine runs unchanged
over a TimeSSD in REAL content mode — which also makes for a neat
demonstration: the same database can be recovered either via its own
WAL (software) or via TimeKits (firmware time travel).
"""

from dataclasses import dataclass, field

from repro.common.errors import ReproError

_RECORD_SEP = b"\x1e"
_FIELD_SEP = b"\x1f"


@dataclass
class LogRecord:
    """One redo record: transaction, page, full after-image."""

    lsn: int
    txn_id: int
    kind: str  # "update", "commit", "checkpoint"
    page_index: int = -1
    after_image: bytes = b""

    def encode(self):
        return _FIELD_SEP.join(
            [
                b"%d" % self.lsn,
                b"%d" % self.txn_id,
                self.kind.encode(),
                b"%d" % self.page_index,
                self.after_image.hex().encode(),
            ]
        )

    @classmethod
    def decode(cls, blob):
        parts = blob.split(_FIELD_SEP)
        if len(parts) != 5:
            raise ReproError("corrupt WAL record")
        return cls(
            lsn=int(parts[0]),
            txn_id=int(parts[1]),
            kind=parts[2].decode(),
            page_index=int(parts[3]),
            after_image=bytes.fromhex(parts[4].decode()),
        )


class WriteAheadLog:
    """Append-only redo log stored in a file, flushed at commit."""

    def __init__(self, fs, name="engine_wal.log"):
        self.fs = fs
        self.name = name
        if not fs.exists(name):
            fs.create(name)
        self._next_lsn = 1
        self._pending = []  # encoded records not yet on the device
        self._log_page = 0
        self._buffer = b""
        self.flushes = 0

    def append(self, txn_id, kind, page_index=-1, after_image=b""):
        record = LogRecord(self._next_lsn, txn_id, kind, page_index, after_image)
        self._next_lsn += 1
        self._pending.append(record.encode())
        return record.lsn

    def flush(self):
        """Force pending records to the device (commit durability)."""
        if not self._pending:
            return
        self._buffer += _RECORD_SEP.join(self._pending) + _RECORD_SEP
        self._pending = []
        page_size = self.fs.page_size
        while self._buffer:
            chunk = self._buffer[:page_size].ljust(page_size, b"\x00")
            self.fs.write_pages(self.name, self._log_page, 1, [chunk])
            if len(self._buffer) > page_size:
                self._buffer = self._buffer[page_size:]
                self._log_page += 1
            else:
                # Partially filled tail page: rewritten on next flush.
                self._buffer = self._buffer.rstrip(b"\x00")
                break
        self.flushes += 1

    def records(self):
        """Read back durable records (used by recovery).

        Like real ARIES, a torn or corrupted record ends the usable log:
        everything before it replays, everything after is untrusted.
        """
        raw = b""
        for page in range(self._log_page + 1):
            raw += self.fs.read_pages(self.name, page, 1)[0]
        out = []
        for blob in raw.rstrip(b"\x00").split(_RECORD_SEP):
            if not blob:
                continue
            try:
                record = LogRecord.decode(blob)
            except (ReproError, ValueError):
                break
            if record.lsn != len(out) + 1 and out and record.lsn != out[-1].lsn + 1:
                break  # LSN discontinuity: trailing garbage
            out.append(record)
        return out


class BufferPool:
    """Page cache over a table file with LRU eviction.

    Dirty evictions write through; clean evictions are free — the
    classic no-force/steal policy WAL makes safe.
    """

    def __init__(self, fs, name="engine_table.db", capacity=32, table_pages=256):
        self.fs = fs
        self.name = name
        self.capacity = capacity
        self.table_pages = table_pages
        if not fs.exists(name):
            fs.create(name)
            empty = bytes(fs.page_size)
            for page in range(table_pages):
                fs.write_pages(name, page, 1, [empty])
        self._cache = {}  # page -> bytes
        self._dirty = set()
        self._order = []  # LRU order, most recent last
        self.hits = 0
        self.misses = 0

    def _touch(self, page):
        if page in self._order:
            self._order.remove(page)
        self._order.append(page)

    def get(self, page):
        if page in self._cache:
            self.hits += 1
            self._touch(page)
            return self._cache[page]
        self.misses += 1
        data = self.fs.read_pages(self.name, page, 1)[0]
        self._install(page, data)
        return data

    def put(self, page, data):
        """Install new page content (dirty; flushed on eviction/checkpoint)."""
        self._install(page, data, dirty=True)

    def _install(self, page, data, dirty=False):
        self._cache[page] = data
        if dirty:
            self._dirty.add(page)
        self._touch(page)
        while len(self._cache) > self.capacity:
            victim = self._order.pop(0)
            if victim in self._dirty:
                self.fs.write_pages(self.name, victim, 1, [self._cache[victim]])
                self._dirty.discard(victim)
            del self._cache[victim]

    def flush_all(self):
        for page in sorted(self._dirty):
            self.fs.write_pages(self.name, page, 1, [self._cache[page]])
        self._dirty.clear()

    def drop_volatile(self):
        """Simulate power loss: every cached (incl. dirty) page vanishes."""
        self._cache.clear()
        self._dirty.clear()
        self._order.clear()


class TransactionalEngine:
    """Atomic, durable page transactions: begin / read / write / commit."""

    def __init__(self, fs, table_pages=256, buffer_capacity=32, checkpoint_every=16):
        self.fs = fs
        self.wal = WriteAheadLog(fs)
        self.pool = BufferPool(fs, capacity=buffer_capacity, table_pages=table_pages)
        self.checkpoint_every = checkpoint_every
        self._next_txn = 1
        self._active = {}  # txn_id -> {page: after_image}
        self.committed = 0
        self.checkpoints = 0

    # --- Transactions -------------------------------------------------------------

    def begin(self):
        txn_id = self._next_txn
        self._next_txn += 1
        self._active[txn_id] = {}
        return txn_id

    def read(self, txn_id, page):
        self._check(txn_id)
        pending = self._active[txn_id].get(page)
        return pending if pending is not None else self.pool.get(page)

    def write(self, txn_id, page, data):
        self._check(txn_id)
        if len(data) != self.fs.page_size:
            raise ReproError("engine writes are page-sized")
        self._active[txn_id][page] = bytes(data)

    def commit(self, txn_id):
        """WAL the after-images, flush the log, then apply to the pool."""
        self._check(txn_id)
        writes = self._active.pop(txn_id)
        for page, data in sorted(writes.items()):
            self.wal.append(txn_id, "update", page, data)
        self.wal.append(txn_id, "commit")
        self.wal.flush()
        for page, data in writes.items():
            self.pool.put(page, data)
        self.committed += 1
        if self.committed % self.checkpoint_every == 0:
            self.checkpoint()

    def abort(self, txn_id):
        self._check(txn_id)
        del self._active[txn_id]

    def checkpoint(self):
        self.pool.flush_all()
        self.wal.append(0, "checkpoint")
        self.wal.flush()
        self.checkpoints += 1

    def _check(self, txn_id):
        if txn_id not in self._active:
            raise ReproError("no such active transaction: %r" % txn_id)

    # --- Crash & recovery -------------------------------------------------------------

    def crash(self):
        """Power loss: in-flight transactions and the buffer pool vanish."""
        self._active.clear()
        self.pool.drop_volatile()

    def recover(self):
        """Redo-only ARIES-lite: replay committed updates since the last
        checkpoint; uncommitted updates never reached the WAL at all
        (commit-time logging), so no undo pass is needed.

        Returns the number of pages redone.
        """
        records = self.wal.records()
        last_checkpoint = 0
        for i, record in enumerate(records):
            if record.kind == "checkpoint":
                last_checkpoint = i
        committed = {
            r.txn_id for r in records if r.kind == "commit"
        }
        redone = 0
        for record in records[last_checkpoint:]:
            if record.kind == "update" and record.txn_id in committed:
                self.pool.put(record.page_index, record.after_image)
                redone += 1
        self.pool.flush_all()
        return redone
