"""Miniature OLTP storage engine and transaction mixes.

The paper runs Shore-MT with TPCC, TPCB and TATP.  What reaches the SSD
from an OLTP engine is a mix of table-page reads, table-page updates and
sequential log appends; :class:`MiniOLTPEngine` reproduces that mix with
per-benchmark transaction shapes.
"""

from repro.workloads.oltp.engine import MiniOLTPEngine, OLTPResult, TransactionProfile
from repro.workloads.oltp.benchmarks import TATP, TPCB, TPCC

__all__ = [
    "MiniOLTPEngine",
    "OLTPResult",
    "TransactionProfile",
    "TPCC",
    "TPCB",
    "TATP",
]
