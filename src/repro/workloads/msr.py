"""MSR-Cambridge-like volume profiles (paper Table 2, Figures 6-8).

The real traces are week-long block traces from Microsoft Research
Cambridge enterprise servers.  The profiles below encode the published
per-volume characteristics — most MSR volumes are write-dominated, with
strong locality and pronounced day/night cycles — scaled to fractions so
they apply to any simulated device size.
"""

from repro.workloads.synthetic import VolumeProfile, synthetic_trace

MSR_VOLUMES = {
    "hm": VolumeProfile(
        name="hm",
        write_ratio=0.64,
        daily_turnover=0.065,
        working_set=0.45,
        hot_fraction=0.15,
        seq_prob=0.25,
        req_pages_mean=2.0,
        diurnal_amplitude=0.5,
        description="hardware monitoring server",
    ),
    "rsrch": VolumeProfile(
        name="rsrch",
        write_ratio=0.91,
        daily_turnover=0.04,
        working_set=0.30,
        hot_fraction=0.20,
        seq_prob=0.30,
        req_pages_mean=2.2,
        diurnal_amplitude=0.7,
        description="research project management",
    ),
    "src": VolumeProfile(
        name="src",
        write_ratio=0.89,
        daily_turnover=0.09,
        working_set=0.50,
        hot_fraction=0.10,
        seq_prob=0.45,
        req_pages_mean=3.0,
        diurnal_amplitude=0.5,
        description="source control server",
    ),
    "stg": VolumeProfile(
        name="stg",
        write_ratio=0.85,
        daily_turnover=0.05,
        working_set=0.40,
        hot_fraction=0.20,
        seq_prob=0.40,
        req_pages_mean=2.5,
        diurnal_amplitude=0.6,
        description="web staging server",
    ),
    "ts": VolumeProfile(
        name="ts",
        write_ratio=0.82,
        daily_turnover=0.045,
        working_set=0.35,
        hot_fraction=0.25,
        seq_prob=0.30,
        req_pages_mean=2.0,
        diurnal_amplitude=0.6,
        description="terminal server",
    ),
    "usr": VolumeProfile(
        name="usr",
        write_ratio=0.60,
        daily_turnover=0.03,
        working_set=0.45,
        hot_fraction=0.20,
        seq_prob=0.35,
        req_pages_mean=2.5,
        diurnal_amplitude=0.8,
        description="user home directories",
    ),
    "wdev": VolumeProfile(
        name="wdev",
        write_ratio=0.80,
        daily_turnover=0.055,
        working_set=0.35,
        hot_fraction=0.15,
        seq_prob=0.30,
        req_pages_mean=2.0,
        diurnal_amplitude=0.5,
        description="test web server",
    ),
}


def msr_trace(volume, logical_pages, days=7, seed=0, intensity_scale=1.0, max_requests=None, working_pages=None):
    """Synthesize an MSR-like trace for ``volume`` (e.g. ``"hm"``)."""
    profile = MSR_VOLUMES[volume]
    return synthetic_trace(
        profile,
        logical_pages,
        days,
        seed=seed,
        intensity_scale=intensity_scale,
        max_requests=max_requests,
        working_pages=working_pages,
    )
