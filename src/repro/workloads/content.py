"""Page-content generation with controllable content locality.

Delta compression's payoff depends on how similar consecutive versions
of a page are (the paper cites 5-25% changed bits for real applications).
The factory tracks the current content of each key and mutates a
configurable fraction of bytes per update.
"""

import random

from repro.common.errors import ReproError


class ContentFactory:
    """Versioned page contents with a tunable mutation rate."""

    def __init__(self, page_size, rng=None, mutation_fraction=0.10):
        if not 0 <= mutation_fraction <= 1:
            raise ReproError("mutation_fraction must be in [0, 1]")
        self.page_size = page_size
        self.mutation_fraction = mutation_fraction
        self._rng = rng or random.Random(0)
        self._pages = {}

    def fresh(self, key):
        """Brand-new random page content for ``key``."""
        page = bytearray(self._rng.randrange(256) for _ in range(self.page_size))
        self._pages[key] = page
        return bytes(page)

    def incompressible(self):
        """One-off random page (no version tracked) — IOZone-style."""
        return bytes(self._rng.randrange(256) for _ in range(self.page_size))

    def mutate(self, key):
        """Next version of ``key``: mutates ``mutation_fraction`` bytes."""
        page = self._pages.get(key)
        if page is None:
            return self.fresh(key)
        changes = max(1, int(self.page_size * self.mutation_fraction))
        for _ in range(changes):
            page[self._rng.randrange(self.page_size)] = self._rng.randrange(256)
        return bytes(page)

    def current(self, key):
        page = self._pages.get(key)
        return bytes(page) if page is not None else None

    def forget(self, key):
        self._pages.pop(key, None)
