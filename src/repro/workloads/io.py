"""Trace file I/O.

Two formats:

* the **SNIA MSR-Cambridge CSV** format
  (``Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime``,
  timestamps in Windows 100ns ticks) — so anyone with access to the real
  traces the paper used can replay them against this simulator;
* a **native CSV** (``timestamp_us,op,lpa,npages``) for persisting and
  sharing synthetic traces.
"""

import csv
import io

from repro.common.errors import ReproError
from repro.workloads.trace import TraceRecord

# Windows FILETIME tick = 100 ns.
_TICKS_PER_US = 10


def _open_lines(source):
    if isinstance(source, str):
        return open(source, "r", newline="")
    if isinstance(source, (list, tuple)):
        return io.StringIO("\n".join(source))
    return source


def load_msr_csv(source, page_size=4096, logical_pages=None, rebase_time=True):
    """Parse MSR-Cambridge records into :class:`TraceRecord` objects.

    ``source`` may be a path, an open file, or a list of lines.  Offsets
    and sizes (bytes) become page-granular LPAs; ``logical_pages`` wraps
    addresses into the simulated device's space; ``rebase_time`` shifts
    the first record to t=0.
    """
    records = []
    base_ticks = None
    with _open_lines(source) as handle:
        for line_no, row in enumerate(csv.reader(handle), 1):
            if not row or not row[0].strip():
                continue
            if len(row) < 6:
                raise ReproError("MSR CSV line %d: expected >= 6 fields" % line_no)
            try:
                ticks = int(row[0])
                op_name = row[3].strip().lower()
                offset = int(row[4])
                size = int(row[5])
            except ValueError as exc:
                raise ReproError("MSR CSV line %d: %s" % (line_no, exc))
            if op_name not in ("read", "write"):
                raise ReproError("MSR CSV line %d: unknown op %r" % (line_no, row[3]))
            if base_ticks is None:
                base_ticks = ticks if rebase_time else 0
            timestamp_us = max(0, (ticks - base_ticks) // _TICKS_PER_US)
            lpa = offset // page_size
            npages = max(1, (size + page_size - 1) // page_size)
            if logical_pages is not None:
                lpa %= logical_pages
                npages = min(npages, logical_pages - lpa)
            records.append(
                TraceRecord(
                    timestamp_us,
                    "W" if op_name == "write" else "R",
                    lpa,
                    npages,
                )
            )
    records.sort(key=lambda r: r.timestamp_us)
    return records


NATIVE_HEADER = ["timestamp_us", "op", "lpa", "npages"]


def save_trace_csv(records, path):
    """Persist records in the native format; returns the record count."""
    count = 0
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(NATIVE_HEADER)
        for record in records:
            writer.writerow(
                [record.timestamp_us, record.op, record.lpa, record.npages]
            )
            count += 1
    return count


def load_trace_csv(source):
    """Load records saved by :func:`save_trace_csv`."""
    records = []
    with _open_lines(source) as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header != NATIVE_HEADER:
            raise ReproError("not a native trace file (bad header: %r)" % (header,))
        for line_no, row in enumerate(reader, 2):
            if not row:
                continue
            try:
                records.append(
                    TraceRecord(int(row[0]), row[1], int(row[2]), int(row[3]))
                )
            except (ValueError, IndexError) as exc:
                raise ReproError("trace line %d: %s" % (line_no, exc))
    return records
