"""Block-level trace records and the replayer."""

import random
from dataclasses import dataclass

from repro.common.stats import LatencyStats

#: Reservoir-sampling seed for replay response-time stats.  Fixed so two
#: replays of the same trace report identical percentiles.
_RESPONSE_STATS_SEED = 0x5EED


@dataclass(frozen=True)
class TraceRecord:
    """One host request: ``op`` is 'R', 'W' or 'T' (trim)."""

    timestamp_us: int
    op: str
    lpa: int
    npages: int = 1

    def __post_init__(self):
        if self.op not in ("R", "W", "T"):
            raise ValueError("op must be R, W or T")
        if self.npages < 1:
            raise ValueError("npages must be >= 1")


@dataclass
class ReplayStats:
    """Outcome of a trace replay."""

    requests: int = 0
    read_requests: int = 0
    write_requests: int = 0
    pages_written: int = 0
    pages_read: int = 0
    response: LatencyStats = None
    aborted_at: int = None  # request index where the device stopped, if any

    def __post_init__(self):
        if self.response is None:
            self.response = LatencyStats(random.Random(_RESPONSE_STATS_SEED))


class TraceReplayer:
    """Replays a trace against an SSD, honouring timestamps.

    The clock advances to each request's timestamp before issue, so idle
    gaps are visible to the device (background compression depends on
    them).  Per-request response time is the span from arrival to the
    completion of the request's last page.
    """

    def __init__(self, ssd):
        self.ssd = ssd

    def replay(self, trace, stop_on_device_full=True):
        """Run all records; returns :class:`ReplayStats`.

        ``stop_on_device_full=True`` converts the TimeSSD alarm condition
        (retention floor would be violated) into a clean stop with
        ``aborted_at`` set, which is how the experiments observe it.
        """
        from repro.common.errors import DeviceFullError

        ssd = self.ssd
        stats = ReplayStats()
        for index, record in enumerate(trace):
            ssd.clock.advance_to(record.timestamp_us)
            arrival = ssd.clock.now_us
            try:
                if record.op == "W":
                    ssd.write_range(record.lpa, record.npages)
                    stats.write_requests += 1
                    stats.pages_written += record.npages
                elif record.op == "R":
                    ssd.read_range(record.lpa, record.npages)
                    stats.read_requests += 1
                    stats.pages_read += record.npages
                else:
                    for i in range(record.npages):
                        ssd.trim(record.lpa + i)
            except DeviceFullError:
                if not stop_on_device_full:
                    raise
                stats.aborted_at = index
                break
            stats.requests += 1
            stats.response.record(ssd.clock.now_us - arrival)
        return stats
