"""Storage forensics on top of time-based state queries (paper §2.2, §3.9).

Reconstructs a tamper-evident chronology of storage updates from the
device's retained history.  Because the history lives under the block
interface, a host-level attacker cannot rewrite it — the evidence chain
survives even a compromised OS (the paper's forensics motivation).
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class UpdateEvent:
    """One write observed in the retained history."""

    timestamp_us: int
    lpa: int

    def __lt__(self, other):
        return (self.timestamp_us, self.lpa) < (other.timestamp_us, other.lpa)


class ForensicTimeline:
    """Chronological reconstruction of device updates."""

    def __init__(self, timekits):
        self.kits = timekits

    def events_since(self, t, threads=1):
        """All update events at or after ``t``, in time order.

        Returns ``(events, elapsed_us)``.
        """
        result = self.kits.time_query(t, threads=threads)
        events = sorted(
            UpdateEvent(ts, lpa)
            for lpa, stamps in result.value.items()
            for ts in stamps
        )
        return events, result.elapsed_us

    def activity_histogram(self, t1, t2, buckets=24):
        """Bucketed write counts over ``[t1, t2]`` — burst detection.

        A ransomware-style mass rewrite shows up as an anomalous spike.
        Returns ``(counts, bucket_us, elapsed_us)``.
        """
        if t2 <= t1 or buckets <= 0:
            raise ValueError("need t2 > t1 and positive bucket count")
        result = self.kits.time_query_range(t1, t2)
        bucket_us = (t2 - t1) / buckets
        counts = [0] * buckets
        for stamps in result.value.values():
            for ts in stamps:
                index = min(buckets - 1, int((ts - t1) / bucket_us))
                counts[index] += 1
        return counts, bucket_us, result.elapsed_us

    def touched_lpas_between(self, t1, t2, threads=1):
        """Set of LPAs modified in a window — the forensic footprint."""
        result = self.kits.time_query_range(t1, t2, threads=threads)
        return set(result.value), result.elapsed_us
