"""File-granular data recovery built on TimeKits (paper §5.5).

A "file" here is whatever maps to a set of LPAs — the file-system
substrates in :mod:`repro.fs` expose each file's extent list, and the
ransomware case study recovers encrypted files through this helper.
"""

from dataclasses import dataclass

from repro.common.errors import QueryError
from repro.timekits.api import TimeKits, _already_current, pick_as_of


@dataclass
class RecoveredFile:
    """Outcome of one file recovery."""

    name: str
    lpas: list
    restored_versions: dict
    elapsed_us: int

    @property
    def complete(self):
        return all(lpa in self.restored_versions for lpa in self.lpas)


class FileRecovery:
    """Restore files to a past point in time."""

    def __init__(self, timekits):
        if not isinstance(timekits, TimeKits):
            raise QueryError("FileRecovery requires a TimeKits instance")
        self.kits = timekits

    def recover_file(self, name, lpas, t, threads=1):
        """Roll the pages of one file back to their state as of ``t``.

        ``lpas`` need not be contiguous (files fragment); pages are
        walked and rewritten with the requested thread-level parallelism.
        Returns a :class:`RecoveredFile`.
        """
        ssd = self.kits.ssd
        start = ssd.clock.now_us
        chains, _ = self.kits.walk_many(lpas, threads, until_ts=t)
        restored = {}
        writes = []
        for lpa in lpas:
            versions = chains.get(lpa, [])
            target = pick_as_of(versions, t)
            if target is None:
                continue
            restored[lpa] = target
            if _already_current(ssd, lpa, versions, target):
                continue
            writes.append((lpa, target.data))
        self.kits.restore_many(writes, threads)
        return RecoveredFile(name, list(lpas), restored, ssd.clock.now_us - start)

    def peek_file(self, name, lpas, t, threads=1):
        """Read (without restoring) a file's content as of ``t``.

        Returns ``(pages, elapsed_us)`` where ``pages`` maps LPA to the
        version data — useful for inspecting history before committing
        to a rollback.
        """
        chains, elapsed = self.kits.walk_many(lpas, threads, until_ts=t)
        pages = {}
        for lpa in lpas:
            target = pick_as_of(chains.get(lpa, []), t)
            if target is not None:
                pages[lpa] = target.data
        return pages, elapsed
