"""TimeKits: storage-state query and rollback over a TimeSSD (paper §3.9).

The toolkit exposes the paper's Table 1 API — address-based state queries,
time-based state queries, and state rollbacks — plus the file-recovery and
forensics helpers built on top of them in §5.5.
"""

from repro.timekits.api import QueryResult, TimeKits
from repro.timekits.forensics import ForensicTimeline, UpdateEvent
from repro.timekits.recovery import FileRecovery

__all__ = [
    "TimeKits",
    "QueryResult",
    "FileRecovery",
    "ForensicTimeline",
    "UpdateEvent",
]
