"""The TimeKits query/rollback API (paper Table 1).

Semantics notes:

* ``t`` arguments are absolute simulated times (microseconds).  The
  paper phrases them as "some time ago"; callers can compute
  ``ssd.clock.now_us - ago``.
* ``addr_query(addr, cnt, t)`` returns, per LPA, the version that was
  current at time ``t`` — the newest retained version written at or
  before ``t`` (the natural recovery target).  When every retained
  version is newer than ``t`` the oldest retained version is returned,
  which is the best the device can do once the window has moved.
* Multi-LPA queries accept ``threads``: the paper's Figure 11 shows
  recovery speeding up with threads because independent chains ride
  different flash channels.  Each simulated thread walks its share of
  LPAs serially; channel contention is resolved by the device model.

Every method returns a :class:`QueryResult` carrying both the answer and
the simulated elapsed time, which is what the evaluation (Table 3,
Figures 10-11) reports.
"""

from dataclasses import dataclass, field

from repro.common.errors import QueryError
from repro.timessd.ssd import TimeSSD


@dataclass
class QueryResult:
    """Answer plus simulated execution time of one TimeKits call."""

    value: object
    elapsed_us: int
    pages_touched: int = 0


def pick_as_of(versions, t):
    """Newest version written at or before ``t`` (versions newest-first)."""
    for version in versions:
        if version.timestamp_us <= t:
            return version
    return versions[-1] if versions else None


def _already_current(ssd, lpa, versions, target):
    """True when ``target`` is the version the device would read now.

    A trimmed LPA has retained versions but no current one, so the
    newest chain entry is *not* current and a restore write is needed.
    """
    if not versions or not ssd.mapping.is_mapped(lpa):
        return False
    return target.timestamp_us == versions[0].timestamp_us


class TimeKits:
    """Host-side toolkit wrapping the TimeSSD state-query engine."""

    def __init__(self, ssd):
        if not isinstance(ssd, TimeSSD):
            raise QueryError("TimeKits requires a TimeSSD device")
        self.ssd = ssd
        self._last_pages_touched = 0

    # --- Multi-LPA fan-out primitives (public: case studies build on them) ----

    def walk_many(self, lpas, threads=1, until_ts=None):
        """Walk version chains of many LPAs with simulated threads.

        Returns ``(chains, elapsed_us)`` where ``chains`` maps LPA to its
        newest-first version list.  Thread ``k`` processes every
        ``threads``-th LPA; within a thread reads are dependent (serial),
        across threads they overlap subject to channel availability —
        exactly the parallelism the paper exploits.  ``until_ts`` enables
        the AddrQuery early stop (walk ends at the first version written
        at or before it).
        """
        if threads < 1:
            raise QueryError("threads must be >= 1")
        start = self.ssd.clock.now_us
        reads_before = self.ssd.device.counters.page_reads
        cursors = [start] * threads
        chains = {}
        for i, lpa in enumerate(lpas):
            k = i % threads
            versions, complete = self.ssd.version_chain(
                lpa, cursors[k], until_ts=until_ts
            )
            cursors[k] = complete
            chains[lpa] = versions
        end = max(cursors) if cursors else start
        self.ssd.clock.advance_to(end)
        self._last_pages_touched = (
            self.ssd.device.counters.page_reads - reads_before
        )
        return chains, end - start

    def restore_many(self, pairs, threads=1):
        """Write ``(lpa, data)`` pairs back with simulated threads.

        Rollback writes are regular writes (the pre-rollback state stays
        retained), issued concurrently by the recovery threads so the
        write-back phase overlaps across channels like the walk phase.
        """
        ssd = self.ssd
        start = ssd.clock.now_us
        cursors = [start] * max(1, threads)
        for i, (lpa, data) in enumerate(pairs):
            k = i % len(cursors)
            cursors[k] = ssd.serve_write_at(lpa, data, cursors[k])
        ssd.clock.advance_to(max(cursors))
        return ssd.clock.now_us - start

    def _range(self, addr, cnt):
        if cnt < 1:
            raise QueryError("cnt must be >= 1")
        if addr < 0 or addr + cnt > self.ssd.logical_pages:
            raise QueryError(
                "LPA range [%d, %d) outside device" % (addr, addr + cnt)
            )
        return range(addr, addr + cnt)

    # --- Address-based state queries (Table 1, rows 1-3) ----------------------

    def addr_query(self, addr, cnt=1, t=0, threads=1):
        """State of each LPA as of time ``t`` (one version per LPA)."""
        chains, elapsed = self.walk_many(self._range(addr, cnt), threads, until_ts=t)
        picked = {
            lpa: pick_as_of(versions, t)
            for lpa, versions in chains.items()
        }
        return QueryResult(picked, elapsed, self._last_pages_touched)

    def addr_query_range(self, addr, cnt, t1, t2, threads=1):
        """All versions written within ``[t1, t2]`` for each LPA."""
        if t1 > t2:
            raise QueryError("t1 must not exceed t2")
        chains, elapsed = self.walk_many(
            self._range(addr, cnt), threads, until_ts=t1
        )
        out = {
            lpa: [v for v in versions if t1 <= v.timestamp_us <= t2]
            for lpa, versions in chains.items()
        }
        return QueryResult(out, elapsed, self._last_pages_touched)

    def addr_query_all(self, addr, cnt=1, threads=1):
        """Every retained version of each LPA in the retention window."""
        chains, elapsed = self.walk_many(self._range(addr, cnt), threads)
        return QueryResult(chains, elapsed, self._last_pages_touched)

    # --- Time-based state queries (Table 1, rows 4-6) ---------------------------

    def _time_filtered(self, predicate, threads):
        """Scan all mapped LPAs, keeping write timestamps that match."""
        lpas = list(self.ssd.mapping.mapped_lpas())
        chains, elapsed = self.walk_many(lpas, threads)
        out = {}
        for lpa, versions in chains.items():
            stamps = [v.timestamp_us for v in versions if predicate(v.timestamp_us)]
            if stamps:
                out[lpa] = sorted(stamps)
        return QueryResult(out, elapsed, self._last_pages_touched)

    def time_query(self, t, threads=1):
        """All LPAs updated since ``t``, with their write timestamps."""
        return self._time_filtered(lambda ts: ts >= t, threads)

    def time_query_range(self, t1, t2, threads=1):
        """All LPAs updated within ``[t1, t2]``, with timestamps."""
        if t1 > t2:
            raise QueryError("t1 must not exceed t2")
        return self._time_filtered(lambda ts: t1 <= ts <= t2, threads)

    def time_query_all(self, threads=1):
        """All LPAs updated within the entire retention window."""
        return self._time_filtered(lambda ts: True, threads)

    # --- State rollbacks (Table 1, rows 7-8) ------------------------------------

    def rollback(self, addr, cnt=1, t=0, threads=1):
        """Revert LPAs to their state as of ``t``.

        A rollback is a regular write of the old version's content
        (paper §3.9): the pre-rollback state is itself retained, so a
        rollback can be rolled back.  Returns per-LPA restored versions.
        """
        start = self.ssd.clock.now_us
        chains, _elapsed = self.walk_many(
            self._range(addr, cnt), threads, until_ts=t
        )
        restored = {}
        writes = []
        for lpa, versions in chains.items():
            target = pick_as_of(versions, t)
            if target is None:
                continue
            restored[lpa] = target
            if _already_current(self.ssd, lpa, versions, target):
                continue
            writes.append((lpa, target.data))
        self.restore_many(writes, threads)
        elapsed = self.ssd.clock.now_us - start
        return QueryResult(restored, elapsed)

    def rollback_all(self, t, threads=1):
        """Revert every valid LPA to its state as of ``t``.

        The paper warns this is aggressive: it writes back a large volume
        of data, shortening retention, and can trip the retention-floor
        alarm.  The caller sees that as :class:`RetentionViolationError`.
        """
        start = self.ssd.clock.now_us
        lpas = list(self.ssd.mapping.mapped_lpas())
        chains, _elapsed = self.walk_many(lpas, threads, until_ts=t)
        restored = {}
        writes = []
        for lpa, versions in chains.items():
            target = pick_as_of(versions, t)
            if target is None:
                continue
            restored[lpa] = target
            if _already_current(self.ssd, lpa, versions, target):
                continue
            writes.append((lpa, target.data))
        self.restore_many(writes, threads)
        return QueryResult(restored, self.ssd.clock.now_us - start)
