"""Flash blocks: the erase unit.

NAND constraints (enforced by the columnar core, one layer down):

* a page may only be programmed when erased;
* pages within a block must be programmed sequentially (real NAND forbids
  out-of-order programming within a block);
* erase resets every page and increments the block's wear counter.

Since the columnar refactor a ``Block`` is a thin view over the owning
device's :class:`~repro.flash.core.ColumnarFlashArray`.  A ``Block``
constructed standalone (``Block(pba, pages_per_block)``) gets a private
single-block core, so unit tests and tooling keep the old constructor.
"""

from repro.flash.core import ColumnarFlashArray
from repro.flash.page import Page


class _BlockPages:
    """Sequence view of one block's pages (lazy ``Page`` handles)."""

    __slots__ = ("_core", "_base", "_n")

    def __init__(self, core, base, n):
        self._core = core
        self._base = base
        self._n = n

    def __len__(self):
        return self._n

    def __getitem__(self, offset):
        if offset < 0:
            offset += self._n
        if not 0 <= offset < self._n:
            raise IndexError(offset)
        return Page(self._core, self._base + offset)

    def __iter__(self):
        core, base = self._core, self._base
        return (Page(core, base + i) for i in range(self._n))


class Block:
    """One erase block holding ``pages_per_block`` pages."""

    __slots__ = ("pba", "_core", "_idx", "pages")

    def __init__(self, pba, pages_per_block, core=None, index=None):
        self.pba = pba
        if core is None:
            core = ColumnarFlashArray(1, pages_per_block)
            index = 0
        self._core = core
        self._idx = index
        self.pages = _BlockPages(core, index * pages_per_block, pages_per_block)

    # --- Per-block columns, exposed as the old attributes ----------------

    @property
    def erase_count(self):
        return self._core.erase_count[self._idx]

    @erase_count.setter
    def erase_count(self, value):
        self._core.erase_count[self._idx] = value

    @property
    def last_program_us(self):
        """When the block last received a program (cost-benefit GC "age")."""
        return self._core.last_program_us[self._idx]

    @last_program_us.setter
    def last_program_us(self, value):
        self._core.last_program_us[self._idx] = value

    @property
    def reads_since_erase(self):
        """Sense operations since the last erase — the read-disturb
        accumulator.  Erase resets the cells and the disturb damage."""
        return self._core.reads_since_erase[self._idx]

    @reads_since_erase.setter
    def reads_since_erase(self, value):
        self._core.reads_since_erase[self._idx] = value

    @property
    def failed(self):
        """Grown bad block: programs and erases fail permanently.  This is
        media truth — it survives power loss, unlike firmware tables."""
        return bool(self._core.failed[self._idx])

    @failed.setter
    def failed(self, value):
        self._core.failed[self._idx] = 1 if value else 0

    @property
    def write_pointer(self):
        """Index of the next programmable page in this block."""
        return self._core.write_pointer[self._idx]

    @property
    def is_full(self):
        return self._core.write_pointer[self._idx] >= len(self.pages)

    @property
    def is_erased(self):
        return self._core.write_pointer[self._idx] == 0

    def program(self, offset, data, oob):
        """Program the page at ``offset`` (must be the write pointer)."""
        self._core.program(self._idx, offset, data, oob)

    def read(self, offset):
        return self._core.read(self._idx, offset)

    def erase(self):
        self._core.erase(self._idx)

    def __repr__(self):
        return "Block(pba=%d, programmed=%d/%d, erases=%d)" % (
            self.pba,
            self.write_pointer,
            len(self.pages),
            self.erase_count,
        )
