"""Flash blocks: the erase unit.

NAND constraints enforced here:

* a page may only be programmed when erased;
* pages within a block must be programmed sequentially (real NAND forbids
  out-of-order programming within a block);
* erase resets every page and increments the block's wear counter.
"""

from repro.common.errors import FlashStateError
from repro.flash.page import Page, PageState


class Block:
    """One erase block holding ``pages_per_block`` pages."""

    __slots__ = (
        "pba",
        "pages",
        "erase_count",
        "_write_pointer",
        "last_program_us",
        "reads_since_erase",
        "failed",
    )

    def __init__(self, pba, pages_per_block):
        self.pba = pba
        self.pages = [Page() for _ in range(pages_per_block)]
        self.erase_count = 0
        self._write_pointer = 0
        #: When the block last received a program (cost-benefit GC "age").
        self.last_program_us = 0
        #: Sense operations since the last erase — the read-disturb
        #: accumulator.  Erase resets the cells and the disturb damage.
        self.reads_since_erase = 0
        #: Grown bad block: programs and erases fail permanently.  This is
        #: media truth — it survives power loss, unlike firmware tables.
        self.failed = False

    @property
    def write_pointer(self):
        """Index of the next programmable page in this block."""
        return self._write_pointer

    @property
    def is_full(self):
        return self._write_pointer >= len(self.pages)

    @property
    def is_erased(self):
        return self._write_pointer == 0

    def program(self, offset, data, oob):
        """Program the page at ``offset`` (must be the write pointer)."""
        if offset != self._write_pointer:
            raise FlashStateError(
                "block %d: out-of-order program at offset %d (expected %d)"
                % (self.pba, offset, self._write_pointer)
            )
        page = self.pages[offset]
        if page.state is not PageState.ERASED:
            raise FlashStateError(
                "block %d: program to non-erased page %d" % (self.pba, offset)
            )
        page.state = PageState.PROGRAMMED
        page.data = data
        page.oob = oob
        self._write_pointer += 1

    def read(self, offset):
        page = self.pages[offset]
        if page.state is not PageState.PROGRAMMED:
            raise FlashStateError(
                "block %d: read of erased page %d" % (self.pba, offset)
            )
        return page.data, page.oob

    def erase(self):
        for page in self.pages:
            page.state = PageState.ERASED
            page.data = None
            page.oob = None
        self.erase_count += 1
        self._write_pointer = 0
        self.reads_since_erase = 0

    def __repr__(self):
        return "Block(pba=%d, programmed=%d/%d, erases=%d)" % (
            self.pba,
            self._write_pointer,
            len(self.pages),
            self.erase_count,
        )
