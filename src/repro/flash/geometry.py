"""Flash geometry: channels, chips, planes, blocks, pages.

Physical page addresses (PPAs) and physical block addresses (PBAs) are flat
integers.  Pages are numbered so that consecutive *blocks* round-robin
across channels: block ``b`` lives on channel ``b % channels``.  This gives
the FTL channel-level striping for free when it allocates blocks
round-robin, matching how real FTLs spread load.
"""

from dataclasses import dataclass

from repro.common.errors import AddressError
from repro.common.units import BlockId, Ppa


@dataclass(frozen=True)
class FlashGeometry:
    """Dimensions of the simulated flash array.

    The default is a deliberately small device (256 MiB of raw flash) so
    that month-long trace replays complete quickly; every experiment can
    scale it up.  ``oob_size`` is informational (the paper's board has 12
    bytes per 4 KiB page) — the model stores OOB metadata structurally.
    """

    channels: int = 8
    chips_per_channel: int = 1
    planes_per_chip: int = 1
    blocks_per_plane: int = 128
    pages_per_block: int = 64
    page_size: int = 4096
    oob_size: int = 12

    def __post_init__(self):
        for name in (
            "channels",
            "chips_per_channel",
            "planes_per_chip",
            "blocks_per_plane",
            "pages_per_block",
            "page_size",
        ):
            if getattr(self, name) <= 0:
                raise ValueError("%s must be positive" % name)

    @property
    def total_blocks(self):
        return (
            self.channels
            * self.chips_per_channel
            * self.planes_per_chip
            * self.blocks_per_plane
        )

    @property
    def total_pages(self):
        return self.total_blocks * self.pages_per_block

    @property
    def raw_capacity_bytes(self):
        return self.total_pages * self.page_size

    # --- Address arithmetic -------------------------------------------------

    def check_ppa(self, ppa: Ppa):
        if not 0 <= ppa < self.total_pages:
            raise AddressError("PPA %r out of range [0, %d)" % (ppa, self.total_pages))

    def check_pba(self, pba: BlockId):
        if not 0 <= pba < self.total_blocks:
            raise AddressError("PBA %r out of range [0, %d)" % (pba, self.total_blocks))

    def block_of_page(self, ppa: Ppa) -> BlockId:
        """PBA containing the given PPA."""
        self.check_ppa(ppa)
        return ppa // self.pages_per_block

    def page_offset(self, ppa: Ppa):
        """Index of the page within its block."""
        self.check_ppa(ppa)
        return ppa % self.pages_per_block

    def first_page_of_block(self, pba: BlockId) -> Ppa:
        self.check_pba(pba)
        return pba * self.pages_per_block

    def pages_of_block(self, pba: BlockId):
        """Range of PPAs belonging to block ``pba``."""
        first = self.first_page_of_block(pba)
        return range(first, first + self.pages_per_block)

    def channel_of_block(self, pba: BlockId):
        self.check_pba(pba)
        return pba % self.channels

    def channel_of_page(self, ppa: Ppa):
        return self.channel_of_block(self.block_of_page(ppa))

    def chip_of_block(self, pba: BlockId):
        """(channel, chip) coordinates of a block."""
        self.check_pba(pba)
        blocks_per_channel = self.total_blocks // self.channels
        within_channel = pba // self.channels
        if within_channel >= blocks_per_channel:
            raise AddressError("PBA %r decomposition overflow" % pba)
        chip = within_channel % self.chips_per_channel
        return (pba % self.channels, chip)
