"""The flash device: functional array of blocks plus the timing model.

The device exposes page-granularity read/program and block-granularity
erase, each returning the operation's completion time on its channel so
the FTL above can account I/O response times.  Functional state and timing
are kept in one place so a single call site cannot forget either.
"""

from dataclasses import dataclass, field

from repro.common.errors import EraseFailureError, ProgramFailureError
from repro.common.units import BlockId, Ppa, TimeUs
from repro.flash.block import Block
from repro.flash.core import ColumnarFlashArray, verify_seq_tags
from repro.flash.geometry import FlashGeometry
from repro.flash.page import Page
from repro.flash.reliability import ReliabilityEngine
from repro.flash.timing import ChannelTimelines, FlashTiming
from repro.obs import Scope


@dataclass
class OpCounters:
    """Lifetime operation counts, used for write-amplification metrics."""

    page_reads: int = 0
    page_programs: int = 0
    block_erases: int = 0
    delta_compressions: int = 0
    delta_decompressions: int = 0
    translation_reads: int = 0
    translation_writes: int = 0

    def snapshot(self):
        return OpCounters(
            self.page_reads,
            self.page_programs,
            self.block_erases,
            self.delta_compressions,
            self.delta_decompressions,
            self.translation_reads,
            self.translation_writes,
        )


class BlockOOBScan:
    """One block's OOB columns, as :meth:`FlashDevice.scan_oob` yields them.

    The int64 members (``lpa``, ``back_pointer``, ``timestamp_us``,
    ``seq_tag``, ``programmed_us``) are ``array('q')`` copies covering
    offsets ``[0, write_pointer)``; ``intact[i]`` is 1 iff offset ``i``
    is programmed and its sequence tag matches its fields (i.e. the page
    committed — torn and burned pages read 0).  Everything at or past
    ``write_pointer`` is erased by the NAND invariants and not included.
    """

    __slots__ = (
        "pba",
        "erase_count",
        "write_pointer",
        "failed",
        "state",
        "lpa",
        "back_pointer",
        "timestamp_us",
        "seq_tag",
        "programmed_us",
        "intact",
    )

    def __init__(self, core, pba):
        self.pba = pba
        self.erase_count = core.erase_count[pba]
        self.write_pointer = core.write_pointer[pba]
        self.failed = bool(core.failed[pba])
        state, lpa, back, ts, seq, programmed = core.page_slice(pba)
        self.state = state
        self.lpa = lpa
        self.back_pointer = back
        self.timestamp_us = ts
        self.seq_tag = seq
        self.programmed_us = programmed
        intact = verify_seq_tags(lpa, back, ts, seq)
        if 0 in state:
            # Defensive: sequential-program NAND never leaves erased
            # holes below the write pointer, but a direct state poke
            # (tests, tooling) could — mask those out of ``intact``.
            for i, programmed_flag in enumerate(state):
                if not programmed_flag:
                    intact[i] = 0
        self.intact = intact


@dataclass
class ReadResult:
    data: object
    oob: object
    complete_us: int = 0
    #: Bits ECC corrected on this read (0 when reliability is disabled).
    #: Firmware watches this drift toward the ECC budget to refresh
    #: at-risk pages before they become uncorrectable.
    corrected_bits: int = 0


class FlashDevice:
    """A multi-channel NAND flash array with latency accounting."""

    def __init__(
        self,
        geometry=None,
        timing=None,
        reliability=None,
        fault_hooks=None,
        obs=None,
    ):
        self.geometry = geometry or FlashGeometry()
        self.timing = timing or FlashTiming()
        #: Observability scope shared with the owning FTL (a standalone
        #: device gets a private one so metrics are always recorded).
        self.obs = obs if obs is not None else Scope()
        if reliability is not None:
            self.reliability = ReliabilityEngine(
                reliability, self.geometry.page_size, metrics=self.obs.metrics
            )
        else:
            self.reliability = None
        #: Optional fault-injection hooks (duck-typed; see repro.faults.hooks).
        #: None on the happy path — every call site guards on it.
        self.faults = fault_hooks
        #: Start time of the op currently consulting the fault hooks —
        #: hooks have no clock of their own, so trace events read this.
        self.last_op_start_us = 0
        #: The columnar (structure-of-arrays) page/block store.  All
        #: functional state lives here; ``self.blocks`` are views.
        self.core = ColumnarFlashArray(
            self.geometry.total_blocks, self.geometry.pages_per_block
        )
        self.blocks = [
            Block(pba, self.geometry.pages_per_block, core=self.core, index=pba)
            for pba in range(self.geometry.total_blocks)
        ]
        self.timelines = ChannelTimelines(self.geometry.channels)
        # One timeline per die: cell operations (sense/program/erase)
        # occupy the chip while bus transfers occupy the channel.
        self.chip_timelines = ChannelTimelines(
            self.geometry.channels * self.geometry.chips_per_channel
        )
        self.counters = OpCounters()
        metrics = self.obs.metrics
        self._m_reads = metrics.counter("flash.reads")
        self._m_programs = metrics.counter("flash.programs")
        self._m_erases = metrics.counter("flash.erases")
        self._m_scan_blocks = metrics.counter("flash.scan.blocks")
        self._m_scan_pages = metrics.counter("flash.scan.pages")
        self._h_read_us = metrics.histogram("flash.read_us")
        self._h_program_us = metrics.histogram("flash.program_us")
        self._h_erase_us = metrics.histogram("flash.erase_us")

    def _chip_index(self, pba):
        channel, chip = self.geometry.chip_of_block(pba)
        return channel * self.geometry.chips_per_channel + chip

    # --- Functional + timed operations --------------------------------------

    def read_page(self, ppa: Ppa, now_us: TimeUs = 0, retry_step: int = 0):
        """Read a page; returns :class:`ReadResult` with completion time.

        Timing: the cell sense occupies the chip, then the data transfer
        occupies the channel bus — so with multiple chips per channel,
        one die can sense while another's data streams out.

        ``retry_step`` > 0 is a read-retry ladder attempt: the sense
        re-runs with shifted reference voltages, lowering the effective
        BER at the cost of ``retry_step`` extra sense times.  Every
        attempt (retries included) stresses the block's neighbours, so
        each one advances the read-disturb accumulator.
        """
        geo = self.geometry
        core = self.core
        pba = geo.block_of_page(ppa)
        if self.faults is not None:
            self.last_op_start_us = now_us
            self.faults.on_read(self, ppa)
        offset = geo.page_offset(ppa)
        data, oob = core.read(pba, offset)
        self.counters.page_reads += 1
        # Disturb from *prior* senses degrades this read; this read's own
        # stress lands on the next one.  Count before the ECC check so
        # retry attempts see the same disturb term as the failed read.
        disturb_reads = core.reads_since_erase[pba]
        core.reads_since_erase[pba] = disturb_reads + 1
        corrected = 0
        if self.reliability is not None:
            # ECC check: may raise UncorrectableReadError.  Corrected
            # errors cost nothing functionally (as on real drives) but
            # the count is surfaced so firmware can refresh early.
            page_age = max(0, now_us - core.programmed_us[ppa])
            corrected = self.reliability.check_read(
                ppa,
                core.erase_count[pba],
                age_us=page_age,
                block_reads=disturb_reads,
                retry_step=retry_step,
            )
        cell_done = self.chip_timelines.schedule(
            self._chip_index(pba),
            now_us,
            self.timing.read_us * (1 + retry_step),
        )
        complete = self.timelines.schedule(
            geo.channel_of_page(ppa), cell_done, self.timing.bus_transfer_us
        )
        self._m_reads.inc()
        self._h_read_us.record(complete - now_us)
        tr = self.obs.trace
        if tr.enabled:
            tr.emit("flash-op", "read", complete, ppa=ppa, start_us=int(now_us))
        return ReadResult(data, oob, complete, corrected)

    def read_oob(self, ppa: Ppa, now_us: TimeUs = 0):
        """Read only a page's OOB metadata.

        Real controllers fetch OOB together with the page, so this costs a
        full page read; it exists for call-site clarity.
        """
        return self.read_page(ppa, now_us)

    def program_page(self, ppa: Ppa, data, oob, now_us: TimeUs = 0):
        """Program an erased page; returns the completion time.

        Timing: the bus transfer occupies the channel, then the cell
        program occupies the chip.
        """
        geo = self.geometry
        core = self.core
        pba = geo.block_of_page(ppa)
        if core.failed[pba]:
            raise ProgramFailureError(ppa, permanent=True)
        if self.faults is not None:
            # May raise (power cut, program failure); a torn program
            # persists its partial page before raising, so nothing past
            # this line runs for a failed op — no counters, no timing.
            self.last_op_start_us = now_us
            self.faults.on_program(self, ppa, data, oob)
        core.program(pba, geo.page_offset(ppa), data, oob)
        core.last_program_us[pba] = now_us
        # Retention clock: charge leakage is measured from this moment.
        core.programmed_us[ppa] = now_us
        self.counters.page_programs += 1
        transferred = self.timelines.schedule(
            geo.channel_of_page(ppa), now_us, self.timing.bus_transfer_us
        )
        complete = self.chip_timelines.schedule(
            self._chip_index(pba), transferred, self.timing.program_us
        )
        self._m_programs.inc()
        self._h_program_us.record(complete - now_us)
        tr = self.obs.trace
        if tr.enabled:
            tr.emit("flash-op", "program", complete, ppa=ppa, start_us=int(now_us))
        return complete

    def erase_block(self, pba: BlockId, now_us: TimeUs = 0):
        """Erase a block; returns the completion time.

        Erase occupies only the die — the channel stays free for other
        chips, which is why multi-chip devices hide GC stalls better.
        """
        geo = self.geometry
        geo.check_pba(pba)
        if self.core.failed[pba]:
            raise EraseFailureError(pba)
        if self.faults is not None:
            self.last_op_start_us = now_us
            self.faults.on_erase(self, pba)
        self.core.erase(pba)
        self.counters.block_erases += 1
        complete = self.chip_timelines.schedule(
            self._chip_index(pba), now_us, self.timing.erase_us
        )
        self._m_erases.inc()
        self._h_erase_us.record(complete - now_us)
        tr = self.obs.trace
        if tr.enabled:
            tr.emit("flash-op", "erase", complete, pba=pba, start_us=int(now_us))
        return complete

    # --- Untimed peeks (host-side tooling / assertions only) ----------------

    def peek_page(self, ppa: Ppa):
        """Inspect a page without timing or counters (tests, invariants)."""
        self.geometry.check_ppa(ppa)
        return Page(self.core, ppa)

    def block_erase_counts(self):
        return list(self.core.erase_count)

    # --- Bulk OOB sweeps ------------------------------------------------------

    def scan_block_oob(self, pba: BlockId):
        """One block's OOB columns as a :class:`BlockOOBScan`.

        An OOB sweep models firmware reading only the out-of-band area
        of sequential pages (mount-time recovery, patrol candidacy): it
        is untimed like :meth:`peek_page`, but counted — the
        ``flash.scan.*`` counters expose how much of the device each
        sweep actually touched.
        """
        self.geometry.check_pba(pba)
        scan = BlockOOBScan(self.core, pba)
        self._m_scan_blocks.inc()
        self._m_scan_pages.inc(scan.write_pointer)
        return scan

    def scan_oob(self, pbas=None):
        """Sweep OOB metadata block-by-block; yields :class:`BlockOOBScan`.

        ``pbas`` defaults to every block.  Erased, non-failed blocks are
        skipped (nothing to report); failed blocks are yielded (with
        ``failed=True``) so recovery can retire them on sight.
        """
        core = self.core
        if pbas is None:
            pbas = range(self.geometry.total_blocks)
        for pba in pbas:
            if core.write_pointer[pba] == 0 and not core.failed[pba]:
                continue
            yield self.scan_block_oob(pba)

    def __repr__(self):
        return "FlashDevice(%d blocks x %d pages, %d channels)" % (
            self.geometry.total_blocks,
            self.geometry.pages_per_block,
            self.geometry.channels,
        )
