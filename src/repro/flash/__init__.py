"""NAND flash device model.

This package is the hardware substrate of the reproduction: a functional
model of a multi-channel NAND flash device with erase-before-write
semantics, per-page out-of-band (OOB) metadata, a configurable latency
model, and per-channel occupancy timelines that expose the internal
parallelism TimeSSD exploits for state queries.
"""

from repro.flash.device import FlashDevice, OpCounters
from repro.flash.reliability import FlashReliability, UncorrectableReadError
from repro.flash.geometry import FlashGeometry
from repro.flash.page import OOBMetadata, PageState, NULL_PPA
from repro.flash.timing import ChannelTimelines, FlashTiming

__all__ = [
    "FlashDevice",
    "FlashGeometry",
    "FlashTiming",
    "ChannelTimelines",
    "OOBMetadata",
    "PageState",
    "NULL_PPA",
    "OpCounters",
    "FlashReliability",
    "UncorrectableReadError",
]
