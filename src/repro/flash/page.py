"""Flash pages and their out-of-band (OOB) metadata.

TimeSSD (paper §3.7) stores three things in each page's OOB area: the LPA
mapped to the page, a back-pointer to the previous PPA that held a version
of that LPA, and the write timestamp.  The model keeps these structurally
instead of packing bytes.
"""

import enum
from dataclasses import dataclass

# Sentinel "no previous version" back-pointer ('-' in the paper's Figure 5).
NULL_PPA = -1

_MASK64 = (1 << 64) - 1


def _mix64(x):
    """splitmix64 finalizer: cheap, well-distributed 64-bit mixer."""
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9 & _MASK64
    x = (x ^ (x >> 27)) * 0x94D049BB133111EB & _MASK64
    return x ^ (x >> 31)


def seq_tag_of(lpa, back_pointer, timestamp_us):
    """The OOB sequence tag real firmware writes as a per-page CRC/seal.

    A program that completes writes a tag consistent with its OOB fields;
    a torn program (power cut mid-page) leaves an inconsistent tag, which
    is how ``rebuild_from_flash`` tells a committed page from a torn tail.
    """
    return _mix64((lpa & _MASK64) ^ _mix64((back_pointer & _MASK64) ^ _mix64(timestamp_us & _MASK64)))


class PageState(enum.Enum):
    """NAND-level state of a page: erased (writable) or programmed."""

    ERASED = "erased"
    PROGRAMMED = "programmed"


@dataclass(frozen=True)
class OOBMetadata:
    """Out-of-band metadata written atomically with a page program.

    ``lpa`` is the logical page the content belongs to (or a tag for
    housekeeping pages such as translation or delta pages), ``back_pointer``
    is the PPA holding the previous version of the same LPA (``NULL_PPA``
    if none), and ``timestamp_us`` is the simulated write time.

    ``seq_tag`` is the per-page integrity seal (a CRC stand-in) written
    as the last step of a page program; it defaults to the consistent
    value, so only deliberately torn pages carry a mismatched tag.
    """

    lpa: int
    back_pointer: int = NULL_PPA
    timestamp_us: int = 0
    seq_tag: int = None

    # Tag values used in ``lpa`` for non-user pages.  Real firmware would
    # reserve magic values the same way.
    TRANSLATION_TAG = -2
    DELTA_TAG = -3

    def __post_init__(self):
        if self.seq_tag is None:
            object.__setattr__(
                self,
                "seq_tag",
                seq_tag_of(self.lpa, self.back_pointer, self.timestamp_us),
            )

    @property
    def intact(self):
        """True iff the sequence tag matches the OOB fields (no torn write)."""
        return self.seq_tag == seq_tag_of(
            self.lpa, self.back_pointer, self.timestamp_us
        )

    def as_torn(self):
        """A copy with a mismatched sequence tag, as a torn program leaves."""
        return OOBMetadata(
            self.lpa,
            self.back_pointer,
            self.timestamp_us,
            seq_tag=seq_tag_of(self.lpa, self.back_pointer, self.timestamp_us)
            ^ 0x70521,
        )


class Page:
    """View of one flash page over the device's columnar core.

    Since the columnar refactor the authoritative page state lives in
    flat per-device columns (:class:`repro.flash.core.ColumnarFlashArray`);
    a ``Page`` is a two-word handle that reads and writes those columns
    through the same attributes the old object model exposed:

    * ``state`` — :class:`PageState`;
    * ``data`` — whatever object the FTL programmed (raw ``bytes`` for
      content-bearing experiments, lightweight tokens for modeled-content
      replays; the flash layer never inspects it);
    * ``oob`` — the page's :class:`OOBMetadata` (None while erased),
      reconstructed from the columns on access;
    * ``programmed_us`` — the reliability model's retention clock
      (charge leaks from the moment the cells are written, not from when
      the block was opened).
    """

    __slots__ = ("_core", "_gidx")

    def __init__(self, core, gidx):
        self._core = core
        self._gidx = gidx

    @property
    def state(self):
        return (
            PageState.PROGRAMMED
            if self._core.state[self._gidx]
            else PageState.ERASED
        )

    @state.setter
    def state(self, value):
        self._core.state[self._gidx] = 1 if value is PageState.PROGRAMMED else 0

    @property
    def data(self):
        return self._core.data[self._gidx]

    @data.setter
    def data(self, value):
        self._core.data[self._gidx] = value

    @property
    def oob(self):
        return self._core.oob_at(self._gidx)

    @oob.setter
    def oob(self, value):
        core, gidx = self._core, self._gidx
        if value is None:
            core.lpa[gidx] = 0
            core.back_pointer[gidx] = 0
            core.timestamp_us[gidx] = 0
            core.seq_tag[gidx] = 0
            return
        core.lpa[gidx] = value.lpa
        core.back_pointer[gidx] = value.back_pointer
        core.timestamp_us[gidx] = value.timestamp_us
        core.seq_tag[gidx] = value.seq_tag - (
            (1 << 64) if value.seq_tag >> 63 else 0
        )

    @property
    def programmed_us(self):
        return self._core.programmed_us[self._gidx]

    @programmed_us.setter
    def programmed_us(self, value):
        self._core.programmed_us[self._gidx] = value

    def __repr__(self):
        oob = self.oob
        return "Page(%s, lpa=%s)" % (
            self.state.value,
            oob.lpa if oob else None,
        )
