"""Flash pages and their out-of-band (OOB) metadata.

TimeSSD (paper §3.7) stores three things in each page's OOB area: the LPA
mapped to the page, a back-pointer to the previous PPA that held a version
of that LPA, and the write timestamp.  The model keeps these structurally
instead of packing bytes.
"""

import enum
from dataclasses import dataclass

# Sentinel "no previous version" back-pointer ('-' in the paper's Figure 5).
NULL_PPA = -1

_MASK64 = (1 << 64) - 1


def _mix64(x):
    """splitmix64 finalizer: cheap, well-distributed 64-bit mixer."""
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9 & _MASK64
    x = (x ^ (x >> 27)) * 0x94D049BB133111EB & _MASK64
    return x ^ (x >> 31)


def seq_tag_of(lpa, back_pointer, timestamp_us):
    """The OOB sequence tag real firmware writes as a per-page CRC/seal.

    A program that completes writes a tag consistent with its OOB fields;
    a torn program (power cut mid-page) leaves an inconsistent tag, which
    is how ``rebuild_from_flash`` tells a committed page from a torn tail.
    """
    return _mix64((lpa & _MASK64) ^ _mix64((back_pointer & _MASK64) ^ _mix64(timestamp_us & _MASK64)))


class PageState(enum.Enum):
    """NAND-level state of a page: erased (writable) or programmed."""

    ERASED = "erased"
    PROGRAMMED = "programmed"


@dataclass(frozen=True)
class OOBMetadata:
    """Out-of-band metadata written atomically with a page program.

    ``lpa`` is the logical page the content belongs to (or a tag for
    housekeeping pages such as translation or delta pages), ``back_pointer``
    is the PPA holding the previous version of the same LPA (``NULL_PPA``
    if none), and ``timestamp_us`` is the simulated write time.

    ``seq_tag`` is the per-page integrity seal (a CRC stand-in) written
    as the last step of a page program; it defaults to the consistent
    value, so only deliberately torn pages carry a mismatched tag.
    """

    lpa: int
    back_pointer: int = NULL_PPA
    timestamp_us: int = 0
    seq_tag: int = None

    # Tag values used in ``lpa`` for non-user pages.  Real firmware would
    # reserve magic values the same way.
    TRANSLATION_TAG = -2
    DELTA_TAG = -3

    def __post_init__(self):
        if self.seq_tag is None:
            object.__setattr__(
                self,
                "seq_tag",
                seq_tag_of(self.lpa, self.back_pointer, self.timestamp_us),
            )

    @property
    def intact(self):
        """True iff the sequence tag matches the OOB fields (no torn write)."""
        return self.seq_tag == seq_tag_of(
            self.lpa, self.back_pointer, self.timestamp_us
        )

    def as_torn(self):
        """A copy with a mismatched sequence tag, as a torn program leaves."""
        return OOBMetadata(
            self.lpa,
            self.back_pointer,
            self.timestamp_us,
            seq_tag=seq_tag_of(self.lpa, self.back_pointer, self.timestamp_us)
            ^ 0x70521,
        )


class Page:
    """One flash page: state, stored object, and OOB metadata.

    ``data`` is whatever object the FTL programs — raw ``bytes`` for
    content-bearing experiments, or lightweight tokens for modeled-content
    trace replays.  The flash layer never inspects it.
    """

    __slots__ = ("state", "data", "oob", "programmed_us")

    def __init__(self):
        self.state = PageState.ERASED
        self.data = None
        self.oob = None
        #: Simulated time this page was programmed — the reliability
        #: model's retention clock (charge leaks from the moment the
        #: cells are written, not from when the block was opened).
        self.programmed_us = 0

    def __repr__(self):
        return "Page(%s, lpa=%s)" % (
            self.state.value,
            self.oob.lpa if self.oob else None,
        )
