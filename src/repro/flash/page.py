"""Flash pages and their out-of-band (OOB) metadata.

TimeSSD (paper §3.7) stores three things in each page's OOB area: the LPA
mapped to the page, a back-pointer to the previous PPA that held a version
of that LPA, and the write timestamp.  The model keeps these structurally
instead of packing bytes.
"""

import enum
from dataclasses import dataclass

# Sentinel "no previous version" back-pointer ('-' in the paper's Figure 5).
NULL_PPA = -1


class PageState(enum.Enum):
    """NAND-level state of a page: erased (writable) or programmed."""

    ERASED = "erased"
    PROGRAMMED = "programmed"


@dataclass(frozen=True)
class OOBMetadata:
    """Out-of-band metadata written atomically with a page program.

    ``lpa`` is the logical page the content belongs to (or a tag for
    housekeeping pages such as translation or delta pages), ``back_pointer``
    is the PPA holding the previous version of the same LPA (``NULL_PPA``
    if none), and ``timestamp_us`` is the simulated write time.
    """

    lpa: int
    back_pointer: int = NULL_PPA
    timestamp_us: int = 0

    # Tag values used in ``lpa`` for non-user pages.  Real firmware would
    # reserve magic values the same way.
    TRANSLATION_TAG = -2
    DELTA_TAG = -3


class Page:
    """One flash page: state, stored object, and OOB metadata.

    ``data`` is whatever object the FTL programs — raw ``bytes`` for
    content-bearing experiments, or lightweight tokens for modeled-content
    trace replays.  The flash layer never inspects it.
    """

    __slots__ = ("state", "data", "oob")

    def __init__(self):
        self.state = PageState.ERASED
        self.data = None
        self.oob = None

    def __repr__(self):
        return "Page(%s, lpa=%s)" % (
            self.state.value,
            self.oob.lpa if self.oob else None,
        )
