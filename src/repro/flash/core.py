"""Columnar (structure-of-arrays) storage for the flash array.

The first seven PRs modelled every flash page as a ``Page`` object
holding a frozen ``OOBMetadata`` dataclass — an object graph that costs
hundreds of bytes and a pointer chase per page, which is why recovery,
GC accounting and patrol scrub topped out around 48 MiB devices
(ROADMAP item 2).  Real NAND simulators at scale (Copycat, SimpleSSD)
store per-page state as flat arrays instead; this module does the same:

* one ``array('q')`` int64 column per OOB field — ``lpa``,
  ``back_pointer``, ``timestamp_us``, ``seq_tag`` — indexed by PPA;
* a ``bytearray`` page-state column (0 = erased, 1 = programmed);
* an int64 ``programmed_us`` column (the reliability model's per-page
  retention clock);
* a plain Python list for page *data* — the FTL programs arbitrary
  objects (bytes, tokens, delta pages), so data stays an object column;
* per-block int64 columns for ``erase_count``, ``write_pointer``,
  ``last_program_us`` and ``reads_since_erase``, plus a ``bytearray``
  for the grown-bad flag.

``Page`` and ``Block`` (:mod:`repro.flash.page`,
:mod:`repro.flash.block`) survive as thin views over these columns, so
the public API, the torn-page semantics (``intact`` / ``seq_tag_of``)
and the fault hooks are unchanged.  Bulk consumers go through
:meth:`FlashDevice.scan_oob` and read the columns directly.

The optional numpy accelerator vectorizes batch sequence-tag
verification over zero-copy ``int64`` views of the very same columns.
Runtime dependencies stay empty: numpy is a test extra, and the pure
Python fallback computes bit-identical results.
"""

from array import array

from repro.common.atomic import atomic_section
from repro.common.errors import FlashStateError
from repro.flash.page import _MASK64, OOBMetadata, seq_tag_of

try:  # pragma: no cover - exercised via both CI paths
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

HAVE_NUMPY = _np is not None

#: Columns are int64 ("q"); OOB fields are stored two's-complement, so
#: negative housekeeping tags (TRANSLATION_TAG, DELTA_TAG, NULL_PPA)
#: round-trip exactly and seq tags reinterpret as uint64 for mixing.
_I64 = "q"


def _to_i64(value):
    """Clamp an arbitrary Python int into signed-64 two's complement."""
    value &= _MASK64
    return value - (1 << 64) if value >> 63 else value


if HAVE_NUMPY:

    def _mix64_vec(x):
        """splitmix64 finalizer over a uint64 ndarray (wraps mod 2**64)."""
        x = (x ^ (x >> _np.uint64(30))) * _np.uint64(0xBF58476D1CE4E5B9)
        x = (x ^ (x >> _np.uint64(27))) * _np.uint64(0x94D049BB133111EB)
        return x ^ (x >> _np.uint64(31))


def verify_seq_tags(lpas, backs, timestamps, seq_tags):
    """Batch ``seq_tag == seq_tag_of(...)`` check; returns a ``bytearray``.

    Accepts parallel int64 sequences (``array('q')`` slices or lists);
    element ``i`` of the result is 1 iff the stored tag matches the
    recomputed one — i.e. the page's OOB is intact.  The numpy path and
    the pure-Python path are bit-identical (splitmix64 is exact integer
    arithmetic either way).
    """
    if HAVE_NUMPY and isinstance(lpas, array):
        lpa = _np.frombuffer(lpas, dtype=_np.int64).view(_np.uint64)
        back = _np.frombuffer(backs, dtype=_np.int64).view(_np.uint64)
        ts = _np.frombuffer(timestamps, dtype=_np.int64).view(_np.uint64)
        seq = _np.frombuffer(seq_tags, dtype=_np.int64).view(_np.uint64)
        expect = _mix64_vec(lpa ^ _mix64_vec(back ^ _mix64_vec(ts)))
        return bytearray((expect == seq).view(_np.uint8))
    out = bytearray(len(lpas))
    for i in range(len(lpas)):
        tag = seq_tags[i] & _MASK64
        if seq_tag_of(lpas[i], backs[i], timestamps[i]) == tag:
            out[i] = 1
    return out


class ColumnarFlashArray:
    """Flat per-page and per-block columns for one flash array.

    Indexing: global page index = ``pba * pages_per_block + offset``
    (identical to the device's flat PPA numbering), block index = PBA.
    All NAND invariants (erased-only program, sequential-in-block
    program order, erase resets) are enforced here, in one place, so the
    ``Block`` view and the device fast path cannot drift.
    """

    __slots__ = (
        "total_blocks",
        "pages_per_block",
        "total_pages",
        # per-page columns
        "state",
        "lpa",
        "back_pointer",
        "timestamp_us",
        "seq_tag",
        "programmed_us",
        "data",
        # per-block columns
        "erase_count",
        "write_pointer",
        "last_program_us",
        "reads_since_erase",
        "failed",
    )

    def __init__(self, total_blocks, pages_per_block):
        self.total_blocks = total_blocks
        self.pages_per_block = pages_per_block
        self.total_pages = total_blocks * pages_per_block
        n = self.total_pages
        self.state = bytearray(n)
        self.lpa = array(_I64, bytes(8 * n))
        self.back_pointer = array(_I64, bytes(8 * n))
        self.timestamp_us = array(_I64, bytes(8 * n))
        self.seq_tag = array(_I64, bytes(8 * n))
        self.programmed_us = array(_I64, bytes(8 * n))
        self.data = [None] * n
        b = total_blocks
        self.erase_count = array(_I64, bytes(8 * b))
        self.write_pointer = array(_I64, bytes(8 * b))
        self.last_program_us = array(_I64, bytes(8 * b))
        self.reads_since_erase = array(_I64, bytes(8 * b))
        self.failed = bytearray(b)

    # --- NAND operations (the only mutators of the page columns) ---------

    @atomic_section(
        "a page program commits data, the four OOB columns, the state "
        "byte and the block write pointer as one step — a concurrent "
        "OOB scan interleaved between column writes would read a "
        "half-written (spuriously torn) page"
    )
    def program(self, pba, offset, data, oob):
        """Program one page (must be the block's write pointer)."""
        wp = self.write_pointer[pba]
        if offset != wp:
            raise FlashStateError(
                "block %d: out-of-order program at offset %d (expected %d)"
                % (pba, offset, wp)
            )
        gidx = pba * self.pages_per_block + offset
        if self.state[gidx]:
            raise FlashStateError(
                "block %d: program to non-erased page %d" % (pba, offset)
            )
        self.data[gidx] = data
        self.lpa[gidx] = _to_i64(oob.lpa)
        self.back_pointer[gidx] = _to_i64(oob.back_pointer)
        self.timestamp_us[gidx] = _to_i64(oob.timestamp_us)
        self.seq_tag[gidx] = _to_i64(oob.seq_tag)
        self.state[gidx] = 1
        self.write_pointer[pba] = wp + 1

    @atomic_section(
        "erase resets every page-state byte, the data column and the "
        "block counters together — a scan interleaved mid-erase would "
        "see stale OOB columns on pages already marked erased"
    )
    def erase(self, pba):
        """Erase one block: reset pages, bump wear, clear disturb."""
        start = pba * self.pages_per_block
        stop = start + self.pages_per_block
        self.state[start:stop] = bytes(self.pages_per_block)
        self.data[start:stop] = [None] * self.pages_per_block
        # OOB and programmed_us columns keep stale values; every reader
        # masks by the state column first, and skipping the writes keeps
        # erase O(1)-ish in the columns actually cleared.
        self.erase_count[pba] += 1
        self.write_pointer[pba] = 0
        self.reads_since_erase[pba] = 0

    def read(self, pba, offset):
        """Read one programmed page: ``(data, oob)``."""
        gidx = pba * self.pages_per_block + offset
        if not self.state[gidx]:
            raise FlashStateError(
                "block %d: read of erased page %d" % (pba, offset)
            )
        return self.data[gidx], self.oob_at(gidx)

    # --- Column accessors -------------------------------------------------

    def oob_at(self, gidx):
        """Reconstruct the ``OOBMetadata`` view of one programmed page.

        Returns None for erased pages (matching the old object model,
        where ``page.oob`` was None until programmed).
        """
        if not self.state[gidx]:
            return None
        return OOBMetadata(
            self.lpa[gidx],
            self.back_pointer[gidx],
            self.timestamp_us[gidx],
            seq_tag=self.seq_tag[gidx] & _MASK64,
        )

    def page_slice(self, pba, stop=None):
        """Column slices for one block's first ``stop`` pages.

        Returns ``(state, lpa, back, ts, seq, programmed_us)`` where the
        int64 members are fresh ``array('q')`` copies (safe to keep) and
        ``state`` is a bytes copy.  ``stop`` defaults to the write
        pointer — everything past it is erased by the NAND invariants.
        """
        if stop is None:
            stop = self.write_pointer[pba]
        start = pba * self.pages_per_block
        end = start + stop
        return (
            bytes(self.state[start:end]),
            self.lpa[start:end],
            self.back_pointer[start:end],
            self.timestamp_us[start:end],
            self.seq_tag[start:end],
            self.programmed_us[start:end],
        )
