"""Latency model and per-channel occupancy timelines.

The model is analytic rather than a full discrete-event simulation: each
channel keeps a ``busy_until`` time, an operation on a channel starts at
``max(now, busy_until)`` and occupies the channel for its latency.  This
captures the two effects the paper's evaluation depends on — GC stalls
lengthening I/O response times, and channel-level parallelism speeding up
TimeKits queries — without a request-queue simulator.
"""

from collections import deque
from dataclasses import dataclass

from repro.common.errors import AddressError


@dataclass(frozen=True)
class FlashTiming:
    """Operation costs in microseconds.

    Defaults are typical MLC NAND figures (and are the ``C_read``,
    ``C_write``, ``C_erase``, ``C_delta`` constants of the paper's
    Equation 1).  ``delta_compress_us`` models one page-sized LZF
    delta-compression on the controller's embedded cores.
    """

    read_us: int = 75
    program_us: int = 750
    erase_us: int = 3800
    delta_compress_us: int = 120
    delta_decompress_us: int = 60
    #: Channel-bus time to move one page between controller and chip.
    #: The default of 0 folds the bus into the cell ops (the simple
    #: single-resource model); set it > 0 together with
    #: ``chips_per_channel > 1`` to study die-level parallelism, where
    #: one chip's cell operation overlaps another chip's bus transfer.
    bus_transfer_us: int = 0

    def __post_init__(self):
        for name in (
            "read_us",
            "program_us",
            "erase_us",
            "delta_compress_us",
            "delta_decompress_us",
            "bus_transfer_us",
        ):
            if getattr(self, name) < 0:
                raise ValueError("%s must be non-negative" % name)


class ChannelTimelines:
    """Tracks when each flash channel becomes free."""

    def __init__(self, channels):
        if channels <= 0:
            raise ValueError("need at least one channel")
        self._busy_until = [0] * channels
        self._busy_us = [0] * channels
        #: Completion times of operations still outstanding relative to
        #: the latest arrival — the per-lane command queue the async
        #: core's depth gauges read.  Entries are pruned lazily on the
        #: next arrival, so memory stays bounded by the burst size.
        self._pending = [deque() for _ in range(channels)]
        self._max_depth = [0] * channels

    @property
    def channels(self):
        return len(self._busy_until)

    def busy_until(self, channel):
        self._check(channel)
        return self._busy_until[channel]

    def busy_time_us(self, channel):
        """Total microseconds ``channel`` has been occupied so far."""
        self._check(channel)
        return self._busy_us[channel]

    def total_busy_us(self):
        """Occupied time summed over all channels."""
        return sum(self._busy_us)

    def busy_times(self):
        """Per-channel occupied time, as a list indexed by channel."""
        return list(self._busy_us)

    def schedule(self, channel, now_us, latency_us):
        """Occupy ``channel`` for ``latency_us`` starting no earlier than now.

        Returns the completion time.
        """
        self._check(channel)
        if latency_us < 0:
            raise ValueError("latency must be non-negative")
        start = max(now_us, self._busy_until[channel])
        end = start + latency_us
        self._busy_until[channel] = end
        self._busy_us[channel] += latency_us
        pending = self._pending[channel]
        while pending and pending[0] <= now_us:
            pending.popleft()
        pending.append(end)
        if len(pending) > self._max_depth[channel]:
            self._max_depth[channel] = len(pending)
        return end

    def depth_at(self, channel, now_us):
        """Operations still queued or in flight on ``channel`` at
        ``now_us`` (arrival-time view: completions at exactly ``now_us``
        no longer count)."""
        self._check(channel)
        return sum(1 for end in self._pending[channel] if end > now_us)

    def max_depth(self, channel):
        """Deepest the channel's command queue has ever been."""
        self._check(channel)
        return self._max_depth[channel]

    def max_depths(self):
        """Per-channel high-water queue depth, indexed by channel."""
        return list(self._max_depth)

    def earliest_free(self, now_us):
        """(channel, free_at) pair for the channel that frees up first."""
        channel = min(range(self.channels), key=lambda c: self._busy_until[c])
        return channel, max(now_us, self._busy_until[channel])

    def all_idle_at(self, now_us):
        """True when no channel is occupied past ``now_us``."""
        return all(t <= now_us for t in self._busy_until)

    def _check(self, channel):
        if not 0 <= channel < len(self._busy_until):
            raise AddressError("channel %r out of range" % channel)
