"""Flash reliability: raw bit errors and ECC correction.

NAND reads flip bits at a rate that grows with wear; controllers attach
an ECC codeword (BCH/LDPC) to every page and correct up to a budget of
bit errors.  The model samples per-read error counts from a Poisson
approximation of the binomial, corrects up to ``ecc_correctable_bits``,
and surfaces the (rare) uncorrectable reads as
:class:`UncorrectableReadError` — which is how real drives lose data at
end of life.

Disabled by default (``raw_bit_error_rate = 0``): functional experiments
stay deterministic and error-free unless a test opts in.
"""

import math
import random
from dataclasses import dataclass

# Historical home of the class; it moved to the shared error taxonomy so
# the fault-injection hooks (repro.faults) can raise it too.  Re-exported
# here for compatibility.
from repro.common.errors import UncorrectableReadError

__all__ = ["FlashReliability", "ReliabilityEngine", "UncorrectableReadError"]


@dataclass(frozen=True)
class FlashReliability:
    """Error-rate model.

    ``raw_bit_error_rate`` is per bit per read on a fresh block;
    ``wear_ber_multiplier`` scales it linearly with the block's erase
    count (``effective = raw * (1 + multiplier * erases)``), reproducing
    the wear-out curve; ``ecc_correctable_bits`` is the per-page ECC
    budget (typical 4 KiB-page BCH corrects ~40-72 bits).
    """

    raw_bit_error_rate: float = 0.0
    wear_ber_multiplier: float = 0.0
    ecc_correctable_bits: int = 40
    seed: int = 0xECC

    def __post_init__(self):
        if self.raw_bit_error_rate < 0 or self.wear_ber_multiplier < 0:
            raise ValueError("error rates must be non-negative")
        if self.ecc_correctable_bits < 0:
            raise ValueError("ECC budget must be non-negative")


class ReliabilityEngine:
    """Samples per-read bit-error counts and applies the ECC budget."""

    def __init__(self, model, page_size):
        self.model = model
        self._bits_per_page = page_size * 8
        self._rng = random.Random(model.seed)
        self.corrected_bits = 0
        self.corrected_reads = 0
        self.uncorrectable_reads = 0

    @property
    def enabled(self):
        return self.model.raw_bit_error_rate > 0

    def _poisson(self, lam):
        """Knuth's method (lambda is small for realistic BERs)."""
        if lam <= 0:
            return 0
        if lam > 30:
            # Normal approximation for stress-test rates.
            value = int(self._rng.gauss(lam, math.sqrt(lam)) + 0.5)
            return max(0, value)
        threshold = math.exp(-lam)
        k = 0
        p = 1.0
        while True:
            p *= self._rng.random()
            if p <= threshold:
                return k
            k += 1

    def check_read(self, ppa, erase_count):
        """Account one page read; raises on an uncorrectable error."""
        if not self.enabled:
            return 0
        ber = self.model.raw_bit_error_rate * (
            1.0 + self.model.wear_ber_multiplier * erase_count
        )
        errors = self._poisson(ber * self._bits_per_page)
        if errors == 0:
            return 0
        if errors <= self.model.ecc_correctable_bits:
            self.corrected_bits += errors
            self.corrected_reads += 1
            return errors
        self.uncorrectable_reads += 1
        raise UncorrectableReadError(ppa, errors, self.model.ecc_correctable_bits)
