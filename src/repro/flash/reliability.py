"""Flash reliability: time-aware raw bit errors and ECC correction.

NAND reads flip bits at a rate that grows with wear, with *retention age*
(charge leaks from the floating gates from the moment a page is
programmed), and with *read disturb* (every sense of a block slightly
stresses its neighbours until the next erase resets them).  Controllers
attach an ECC codeword (BCH/LDPC) to every page and correct up to a
budget of bit errors.  The model samples per-read error counts from a
Poisson approximation of the binomial, corrects up to
``ecc_correctable_bits``, and surfaces the (rare) uncorrectable reads as
:class:`UncorrectableReadError` — which is how real drives lose data at
end of life.

Two firmware defenses hook in here:

* **Read retry** — re-sensing a page with shifted reference voltages
  recovers most marginal reads; each ladder step multiplies the
  effective BER by ``retry_ber_factor`` (< 1).
* **Corrected-bit surfacing** — :meth:`ReliabilityEngine.check_read`
  returns the corrected-bit count so the FTL can notice "correctable
  but near the ECC budget" and refresh the page *before* it is lost.

Determinism: the engine owns a dedicated seeded RNG stream.  It is the
media's noise source, deliberately separate from the FTL's foreground
RNG so background patrol reads never perturb host-visible randomness
(the ``effects-scrub-rng`` contract pins this).

Disabled by default (``raw_bit_error_rate = 0``): functional experiments
stay deterministic and error-free unless a test opts in.
"""

import math
import random
from dataclasses import dataclass

# Historical home of the class; it moved to the shared error taxonomy so
# the fault-injection hooks (repro.faults) can raise it too.  Re-exported
# here for compatibility.
from repro.common.errors import UncorrectableReadError
from repro.common.units import HOUR_US

__all__ = ["FlashReliability", "ReliabilityEngine", "UncorrectableReadError"]


@dataclass(frozen=True)
class FlashReliability:
    """Error-rate model.

    ``raw_bit_error_rate`` is per bit per read on a fresh block.  Three
    aging terms scale it additively, reproducing the standard NAND error
    budget (Copycat's decomposition)::

        effective = raw * (1 + wear_ber_multiplier    * erase_count
                             + retention_ber_per_hour * age_hours
                             + read_disturb_ber_per_read * block_reads)
                        * retry_ber_factor ** retry_step

    * ``wear_ber_multiplier`` — permanent oxide damage per P/E cycle.
    * ``retention_ber_per_hour`` — charge leakage per hour since the
      page was programmed; refresh (rewriting the page) resets it.
    * ``read_disturb_ber_per_read`` — stress per sense of the same
      block since its last erase; erase resets it.
    * ``retry_ber_factor`` — per-step BER attenuation of the read-retry
      ladder (re-sensing with shifted reference voltages); must be in
      (0, 1] — 1.0 models a controller without retry support.

    ``ecc_correctable_bits`` is the per-page ECC budget (typical 4 KiB-
    page BCH corrects ~40-72 bits).
    """

    raw_bit_error_rate: float = 0.0
    wear_ber_multiplier: float = 0.0
    retention_ber_per_hour: float = 0.0
    read_disturb_ber_per_read: float = 0.0
    retry_ber_factor: float = 0.5
    ecc_correctable_bits: int = 40
    seed: int = 0xECC

    def __post_init__(self):
        if self.raw_bit_error_rate < 0 or self.wear_ber_multiplier < 0:
            raise ValueError("error rates must be non-negative")
        if self.retention_ber_per_hour < 0 or self.read_disturb_ber_per_read < 0:
            raise ValueError("error rates must be non-negative")
        if not 0 < self.retry_ber_factor <= 1:
            raise ValueError("retry_ber_factor must be in (0, 1]")
        if self.ecc_correctable_bits < 0:
            raise ValueError("ECC budget must be non-negative")


class ReliabilityEngine:
    """Samples per-read bit-error counts and applies the ECC budget."""

    def __init__(self, model, page_size, metrics=None):
        self.model = model
        self._bits_per_page = page_size * 8
        self._rng = random.Random(model.seed)
        self.corrected_bits = 0
        self.corrected_reads = 0
        self.uncorrectable_reads = 0
        # Mirror the counters into the device's metrics scope when one
        # is attached, so they show up in metrics_snapshot() alongside
        # the rest of the flash tier.
        if metrics is not None:
            self._m_corrected_bits = metrics.counter("flash.ecc.corrected_bits")
            self._m_corrected_reads = metrics.counter("flash.ecc.corrected_reads")
            self._m_uncorrectable = metrics.counter("flash.ecc.uncorrectable_reads")
        else:
            self._m_corrected_bits = None
            self._m_corrected_reads = None
            self._m_uncorrectable = None

    @property
    def enabled(self):
        return self.model.raw_bit_error_rate > 0

    def _poisson(self, lam):
        """Knuth's method (lambda is small for realistic BERs)."""
        if lam <= 0:
            return 0
        if lam > 30:
            # Normal approximation for stress-test rates.
            value = int(self._rng.gauss(lam, math.sqrt(lam)) + 0.5)
            return max(0, value)
        threshold = math.exp(-lam)
        k = 0
        p = 1.0
        while True:
            p *= self._rng.random()
            if p <= threshold:
                return k
            k += 1

    def effective_ber(self, erase_count, age_us=0, block_reads=0, retry_step=0):
        """The per-bit error rate for one read attempt."""
        model = self.model
        scale = (
            1.0
            + model.wear_ber_multiplier * erase_count
            + model.retention_ber_per_hour * (age_us / HOUR_US)
            + model.read_disturb_ber_per_read * block_reads
        )
        return (
            model.raw_bit_error_rate
            * scale
            * model.retry_ber_factor**retry_step
        )

    def check_read(self, ppa, erase_count, age_us=0, block_reads=0, retry_step=0):
        """Account one page read; raises on an uncorrectable error.

        Returns the number of bits ECC corrected (0 on a clean read) so
        the firmware above can watch pages drift toward the budget.
        ``age_us`` is time since the page was programmed, ``block_reads``
        the block's sense count since erase, ``retry_step`` the position
        on the read-retry ladder (0 = normal read).
        """
        if not self.enabled:
            return 0
        ber = self.effective_ber(erase_count, age_us, block_reads, retry_step)
        errors = self._poisson(ber * self._bits_per_page)
        if errors == 0:
            return 0
        if errors <= self.model.ecc_correctable_bits:
            self.corrected_bits += errors
            self.corrected_reads += 1
            if self._m_corrected_bits is not None:
                self._m_corrected_bits.inc(errors)
                self._m_corrected_reads.inc()
            return errors
        self.uncorrectable_reads += 1
        if self._m_uncorrectable is not None:
            self._m_uncorrectable.inc()
        raise UncorrectableReadError(ppa, errors, self.model.ecc_correctable_bits)
