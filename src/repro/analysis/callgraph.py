"""Whole-program call graph over the ``repro`` tree (pure ``ast``).

The deep passes (:mod:`repro.analysis.effects`,
:mod:`repro.analysis.domains`) need to know *who calls whom* across the
entire simulator, not just within one file.  Python makes a fully
precise answer undecidable, so this builder implements name/attribute
resolution that is good enough for this repo's idiom — and is honest
about the rest: every call it cannot (or will not) resolve lands in an
explicit unresolved-call report instead of silently vanishing.

Resolution strategy, in order:

1. **Direct names** — ``rebuild_from_flash(ssd)`` resolves through the
   module's import bindings, following re-export chains
   (``from repro.flash import UncorrectableReadError`` chases through
   ``flash/__init__`` to the defining module).  Calling a class name
   edges to its ``__init__``.
2. **Methods on ``self``/``cls``** — resolved through the enclosing
   class's in-project MRO, *plus* overrides in known subclasses
   (virtual dispatch is over-approximated, which is what a safety
   analysis wants).
3. **Typed receivers** — a local ``x = ClassName(...)`` or an instance
   attribute ``self.attr = ClassName(...)`` (anywhere in the class
   family) types later ``x.m()`` / ``self.attr.m()`` calls.
4. **Unique-name fallback** — an attribute call on an unknown receiver
   resolves iff exactly one project class defines the method
   (``bm.claim_block`` has one possible target, so the graph says so).
   Names that collide with common container/str methods (``append``,
   ``get``, ...) are never guessed at.
5. **Dynamic dispatch fallback** — a method name defined by several
   classes edges to *every* candidate (sound for effect propagation)
   and is additionally listed in the unresolved report as ambiguous;
   calls through local callables/``getattr`` are purely unresolved.
"""

import ast
from dataclasses import dataclass, field

#: Attribute names never resolved by the unique-name fallback: they
#: collide with builtin container/str/file methods, so a match against a
#: project method of the same name would usually be a wrong guess.
BUILTIN_METHOD_NAMES = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "bit_length",
        "capitalize",
        "clear",
        "copy",
        "count",
        "decode",
        "discard",
        "encode",
        "endswith",
        "extend",
        "format",
        "get",
        "group",
        "groupdict",
        "hexdigest",
        "index",
        "insert",
        "intersection",
        "isdigit",
        "issubset",
        "items",
        "join",
        "keys",
        "ljust",
        "lower",
        "lstrip",
        "most_common",
        "move_to_end",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "replace",
        "reverse",
        "rjust",
        "rstrip",
        "search",
        "setdefault",
        "sort",
        "split",
        "splitlines",
        "startswith",
        "strip",
        "title",
        "union",
        "update",
        "upper",
        "values",
        "write",
        "writerows",
        "writerow",
        "read",
        "readline",
        "readlines",
        "close",
        "flush",
        "seek",
        "tell",
        "match",
        "fullmatch",
        "findall",
        "finditer",
        "sub",
        "to_bytes",
        "from_bytes",
    }
)


@dataclass(frozen=True)
class UnresolvedCall:
    """One call the graph could not (or would not) pin to a target."""

    caller: str  # qualified name of the calling function
    target: str  # best-effort rendering of what was called
    path: str
    line: int
    col: int
    reason: str  # "dynamic-call" | "ambiguous-method" | "unknown-name"
    candidates: tuple = ()

    def __str__(self):
        extra = ""
        if self.candidates:
            extra = " (candidates: %s)" % ", ".join(self.candidates)
        return "%s:%d: %s calls %s [%s]%s" % (
            self.path,
            self.line,
            self.caller,
            self.target,
            self.reason,
            extra,
        )


@dataclass
class FunctionInfo:
    """One function or method definition in the project."""

    qualname: str  # e.g. repro.ftl.ssd.BaseSSD.write
    module: object  # SourceModule
    node: object  # ast.FunctionDef / ast.AsyncFunctionDef
    class_qualname: str = None  # enclosing class, or None

    @property
    def is_method(self):
        return self.class_qualname is not None

    def param_names(self):
        """Positional parameter names (including self/cls)."""
        args = self.node.args
        return [a.arg for a in args.posonlyargs + args.args]


@dataclass
class ClassInfo:
    """One class definition: bases, methods, inferred attribute types."""

    qualname: str
    module: object
    node: object
    base_names: list = field(default_factory=list)  # unresolved base exprs
    methods: dict = field(default_factory=dict)  # name -> FunctionInfo
    #: attribute name -> set of class qualnames, from ``self.x = Cls(...)``.
    attr_types: dict = field(default_factory=dict)


def dotted(node):
    """``a.b.c`` as a list of names, or None for non-trivial chains."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return None


class CallGraph:
    """Functions, classes, edges and the unresolved report for a project."""

    def __init__(self, project):
        self.project = project
        #: qualified name -> FunctionInfo
        self.functions = {}
        #: qualified name -> ClassInfo
        self.classes = {}
        #: module name -> {local name -> qualified target}
        self.bindings = {}
        #: caller qualname -> {callee qualname -> (line, col) of first call}
        self.edges = {}
        #: caller qualname -> [(ast.Call node, [callee qualnames])] — every
        #: call expression with its resolved targets, in source order.  The
        #: effects pass re-walks these with try/except context.
        self.calls = {}
        #: (caller, callee) pairs that exist only via the dynamic-dispatch
        #: fallback (several classes define the method).  Sound for effect
        #: propagation; contract checks that need confident edges skip
        #: these — the ambiguity is surfaced in ``unresolved`` instead.
        self.ambiguous_edges = set()
        self._ambiguous_call_nodes = set()
        #: class qualname -> resolved in-project base class qualnames
        self._bases = {}
        #: class qualname -> direct subclasses
        self._subclasses = {}
        #: method name -> [FunctionInfo, ...] across every class
        self._methods_by_name = {}
        self.unresolved = []
        self._collect_definitions()
        self._resolve_hierarchy()
        self._infer_attr_types()
        self._build_edges()

    # --- Symbol collection ---------------------------------------------------

    def _collect_definitions(self):
        for module in self.project.modules:
            if module.module is None or module.tree is None:
                continue
            self.bindings[module.module] = _import_bindings(module)
            for node in module.tree.body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = "%s.%s" % (module.module, node.name)
                    self.functions[qual] = FunctionInfo(qual, module, node)
                elif isinstance(node, ast.ClassDef):
                    self._collect_class(module, node)

    def _collect_class(self, module, node):
        qual = "%s.%s" % (module.module, node.name)
        info = ClassInfo(qual, module, node)
        info.base_names = [dotted(b) for b in node.bases]
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                mqual = "%s.%s" % (qual, item.name)
                finfo = FunctionInfo(mqual, module, item, class_qualname=qual)
                info.methods[item.name] = finfo
                self.functions[mqual] = finfo
                self._methods_by_name.setdefault(item.name, []).append(finfo)
        self.classes[qual] = info

    # --- Name resolution -----------------------------------------------------

    def resolve_symbol(self, module_name, chain, _seen=None):
        """Resolve a dotted name chain seen in ``module_name``.

        Returns a FunctionInfo, ClassInfo, a module name string (for a
        bare module reference), or None.  Re-export chains are chased
        with a cycle guard.
        """
        if not chain:
            return None
        if _seen is None:
            _seen = set()
        bindings = self.bindings.get(module_name, {})
        head = chain[0]
        target = bindings.get(head)
        if target is None:
            # A module-level definition in this very module?
            qual = "%s.%s" % (module_name, head)
            found = self.functions.get(qual) or self.classes.get(qual)
            if found is not None:
                return self._descend(found, chain[1:])
            return None
        return self.resolve_qualified(target, chain[1:], _seen)

    def resolve_qualified(self, qualified, rest=(), _seen=None):
        """Resolve an absolute dotted target plus trailing attributes."""
        if _seen is None:
            _seen = set()
        key = (qualified, tuple(rest))
        if key in _seen:
            return None
        _seen.add(key)
        # Longest module prefix wins: repro.flash.device.FlashDevice
        parts = qualified.split(".")
        for cut in range(len(parts), 0, -1):
            mod_name = ".".join(parts[:cut])
            if mod_name in self.project.by_module:
                attrs = parts[cut:] + list(rest)
                if not attrs:
                    return mod_name
                qual = "%s.%s" % (mod_name, attrs[0])
                found = self.functions.get(qual) or self.classes.get(qual)
                if found is not None:
                    return self._descend(found, attrs[1:])
                # Re-export: chase the module's own binding for the name.
                bound = self.bindings.get(mod_name, {}).get(attrs[0])
                if bound is not None:
                    return self.resolve_qualified(bound, attrs[1:], _seen)
                return None
        return None

    def _descend(self, found, rest):
        """Walk trailing attributes (``Class.method``) of a resolution."""
        for name in rest:
            if isinstance(found, ClassInfo):
                found = self.method_on(found.qualname, name)
            else:
                return None
            if found is None:
                return None
        return found

    # --- Class hierarchy -----------------------------------------------------

    def _resolve_hierarchy(self):
        for qual, info in self.classes.items():
            bases = []
            for chain in info.base_names:
                if not chain:
                    continue
                base = self.resolve_symbol(info.module.module, chain)
                if isinstance(base, ClassInfo):
                    bases.append(base.qualname)
            self._bases[qual] = bases
            for base in bases:
                self._subclasses.setdefault(base, []).append(qual)

    def mro(self, class_qualname):
        """The class and its in-project ancestors, depth-first."""
        out = []
        stack = [class_qualname]
        while stack:
            qual = stack.pop(0)
            if qual in out:
                continue
            out.append(qual)
            stack.extend(self._bases.get(qual, ()))
        return out

    def descendants(self, class_qualname):
        """Every in-project subclass, transitively."""
        out = []
        stack = list(self._subclasses.get(class_qualname, ()))
        while stack:
            qual = stack.pop()
            if qual in out:
                continue
            out.append(qual)
            stack.extend(self._subclasses.get(qual, ()))
        return out

    def family(self, class_qualname):
        """MRO plus descendants: every class sharing this instance shape."""
        out = self.mro(class_qualname)
        for sub in self.descendants(class_qualname):
            if sub not in out:
                out.append(sub)
        return out

    def method_on(self, class_qualname, name):
        """Resolve ``name`` through the in-project MRO (no overrides)."""
        for qual in self.mro(class_qualname):
            info = self.classes.get(qual)
            if info is not None and name in info.methods:
                return info.methods[name]
        return None

    def virtual_targets(self, class_qualname, name):
        """MRO resolution plus every subclass override (virtual dispatch)."""
        targets = []
        base = self.method_on(class_qualname, name)
        if base is not None:
            targets.append(base)
        for sub in self.descendants(class_qualname):
            info = self.classes.get(sub)
            if info is not None and name in info.methods:
                method = info.methods[name]
                if method not in targets:
                    targets.append(method)
        return targets

    # --- Instance attribute typing -------------------------------------------

    def _infer_attr_types(self):
        for info in self.classes.values():
            for method in info.methods.values():
                for node in ast.walk(method.node):
                    if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                        continue
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    value = node.value
                    if value is None:
                        continue
                    names = self._constructed_classes(info.module, value)
                    if not names:
                        continue
                    for target in targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            info.attr_types.setdefault(
                                target.attr, set()
                            ).update(names)

    def _constructed_classes(self, module, value):
        """Project classes constructed anywhere inside expression ``value``."""
        names = set()
        for node in ast.walk(value):
            if not isinstance(node, ast.Call):
                continue
            chain = dotted(node.func)
            if not chain:
                continue
            found = self.resolve_symbol(module.module, chain)
            if isinstance(found, ClassInfo):
                names.add(found.qualname)
        return names

    def attr_types_for(self, class_qualname, attr):
        """Inferred classes of ``self.<attr>`` across the class family."""
        out = set()
        for qual in self.family(class_qualname):
            info = self.classes.get(qual)
            if info is not None:
                out.update(info.attr_types.get(attr, ()))
        return out

    # --- Edge construction ---------------------------------------------------

    def _build_edges(self):
        for func in self.functions.values():
            self.edges.setdefault(func.qualname, {})
            records = self.calls.setdefault(func.qualname, [])
            local_types = self._local_types(func)
            for node in ast.walk(func.node):
                if not isinstance(node, ast.Call):
                    continue
                targets = self._classify_call(func, node, local_types)
                ambiguous = id(node) in self._ambiguous_call_nodes
                resolved = []
                for info in targets:
                    self._add_edge(func, info, node)
                    if ambiguous:
                        self.ambiguous_edges.add(
                            (func.qualname, info.qualname)
                        )
                    if isinstance(info, ClassInfo):
                        init = self.method_on(info.qualname, "__init__")
                        resolved.append(
                            init.qualname if init is not None else info.qualname
                        )
                    else:
                        resolved.append(info.qualname)
                records.append((node, resolved))

    def _local_types(self, func):
        """Flow-insensitive local variable -> class qualnames map."""
        types = {}
        for node in ast.walk(func.node):
            if not isinstance(node, ast.Assign):
                continue
            names = self._constructed_classes(func.module, node.value)
            if not names:
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    types.setdefault(target.id, set()).update(names)
        return types

    def _add_edge(self, caller, callee_info, node):
        sites = self.edges.setdefault(caller.qualname, {})
        if callee_info.qualname not in sites:
            sites[callee_info.qualname] = (node.lineno, node.col_offset + 1)
        # Calling a class constructs it: edge into __init__ too.
        if isinstance(callee_info, ClassInfo):
            init = self.method_on(callee_info.qualname, "__init__")
            if init is not None and init.qualname not in sites:
                sites[init.qualname] = (node.lineno, node.col_offset + 1)

    def _note_unresolved(self, caller, node, target, reason, candidates=()):
        self.unresolved.append(
            UnresolvedCall(
                caller=caller.qualname,
                target=target,
                path=caller.module.path,
                line=node.lineno,
                col=node.col_offset + 1,
                reason=reason,
                candidates=tuple(c.qualname for c in candidates),
            )
        )

    def _classify_call(self, func, node, local_types):
        """Resolve one call expression to its targets.

        Returns a list of FunctionInfo/ClassInfo (empty when the call is
        outside the project or unresolvable; the unresolved report is
        updated as a side effect).
        """
        callee = node.func
        module_name = func.module.module
        if isinstance(callee, ast.Name):
            found = self.resolve_symbol(module_name, [callee.id])
            if isinstance(found, (FunctionInfo, ClassInfo)):
                return [found]
            if found is None and not _is_builtin_name(callee.id):
                if callee.id not in local_types:
                    self._note_unresolved(
                        func, node, "%s()" % callee.id, "dynamic-call"
                    )
            return []
        if not isinstance(callee, ast.Attribute):
            # Calling the result of an expression: dynamic by definition.
            self._note_unresolved(func, node, "<expr>()", "dynamic-call")
            return []
        name = callee.attr
        receivers = self._receiver_classes(func, callee.value, local_types)
        if receivers is SELF:
            targets = self.virtual_targets(func.class_qualname, name)
            if targets:
                return targets
            # Fall through: maybe a mixin hook resolvable by name.
        elif isinstance(receivers, _ModuleRef):
            found = receivers.methods.get(name)
            if found is not None:
                return [found]
        elif isinstance(receivers, ClassInfo):
            # Unbound class attr (Cls.method) or class-typed receiver.
            if self.method_on(receivers.qualname, name) is not None:
                return self.virtual_targets(receivers.qualname, name)
        elif isinstance(receivers, set) and receivers:
            targets = []
            for cls_qual in sorted(receivers):
                for target in self.virtual_targets(cls_qual, name):
                    if target not in targets:
                        targets.append(target)
            if targets:
                return targets
        # Unknown receiver: unique-name fallback, then dynamic dispatch.
        if name in BUILTIN_METHOD_NAMES:
            return []  # never guess against container/str methods
        candidates = self._methods_by_name.get(name, [])
        if len(candidates) == 1:
            return list(candidates)
        if len(candidates) > 1:
            self._ambiguous_call_nodes.add(id(node))
            self._note_unresolved(
                func, node, ".%s()" % name, "ambiguous-method", candidates
            )
            return list(candidates)
        self._note_unresolved(func, node, ".%s()" % name, "unknown-name")
        return []

    def _receiver_classes(self, func, receiver, local_types):
        """Classify a call receiver expression.

        Returns SELF, a FunctionInfo/ClassInfo (module or class
        reference), a set of class qualnames, or None for unknown.
        """
        if isinstance(receiver, ast.Name):
            if receiver.id in ("self", "cls") and func.is_method:
                return SELF
            if receiver.id in local_types:
                return local_types[receiver.id]
            found = self.resolve_symbol(func.module.module, [receiver.id])
            if isinstance(found, ClassInfo):
                return found
            if isinstance(found, str):  # module reference
                return _ModuleRef(found, self)
            return None
        if isinstance(receiver, ast.Attribute):
            chain = dotted(receiver)
            if chain is not None:
                if chain[0] == "self" and func.is_method:
                    # Walk self.a.b... through the inferred attribute
                    # types layer by layer (self.device -> FlashDevice,
                    # .counters -> OpCounters), so chained receivers
                    # resolve confidently instead of falling back to
                    # name guessing.
                    types = {func.class_qualname}
                    for attr in chain[1:]:
                        step = set()
                        for cls_qual in types:
                            step.update(self.attr_types_for(cls_qual, attr))
                        types = step
                        if not types:
                            break
                    if types:
                        return types
                found = self.resolve_symbol(func.module.module, chain)
                if isinstance(found, ClassInfo):
                    return found
                if isinstance(found, str):
                    return _ModuleRef(found, self)
        return None


#: Sentinel: the receiver is the enclosing instance.
SELF = object()


class _ModuleRef(ClassInfo):
    """Adapter so a module reference resolves attr calls like a scope."""

    def __init__(self, module_name, graph):
        self.qualname = module_name
        self._graph = graph
        self.methods = _ModuleMethods(module_name, graph)
        self.attr_types = {}


class _ModuleMethods:
    def __init__(self, module_name, graph):
        self._module = module_name
        self._graph = graph

    def __contains__(self, name):
        return self.get(name) is not None

    def __getitem__(self, name):
        found = self.get(name)
        if found is None:
            raise KeyError(name)
        return found

    def get(self, name):
        found = self._graph.resolve_qualified(self._module, [name])
        if isinstance(found, (FunctionInfo, ClassInfo)):
            return found
        return None


def _import_bindings(module):
    """Local name -> absolute dotted target, from this module's imports."""
    from repro.analysis.imports import resolve_relative

    bindings = {}
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    bindings[alias.asname] = alias.name
                else:
                    bindings[alias.name.split(".")[0]] = alias.name.split(
                        "."
                    )[0]
        elif isinstance(node, ast.ImportFrom):
            base = resolve_relative(
                module.module, node.level, node.module or ""
            )
            if base is None:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                bindings[alias.asname or alias.name] = "%s.%s" % (
                    base,
                    alias.name,
                )
    return bindings


def _is_builtin_name(name):
    import builtins

    return hasattr(builtins, name)


def build_call_graph(project):
    """Build (and cache on the project) the whole-program call graph."""
    return project.cached("call_graph", lambda: CallGraph(project))
