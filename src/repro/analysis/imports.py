"""Import extraction and the DESIGN.md layer map.

The simulator is layered (DESIGN.md): each package may import its own
layer or below, never above.  ``repro/__init__.py`` and
``repro/__main__.py`` are the wiring that re-exports everything, so the
package root is exempt.

    layer 0   common, obs                 (clock, units, errors, stats, metrics)
    layer 1   flash                       (NAND device model)
    layer 2   ftl, timessd                (the two FTLs)
    layer 3   fs, nvme, timekits          (host-visible substrates)
    layer 4   workloads, security, casestudies, bench, cli, analysis

A ``repro.*`` package missing from this map is itself a violation —
new top-level packages must be placed in a layer explicitly.
"""

import ast
from dataclasses import dataclass

ROOT_PACKAGE = "repro"

LAYER_ORDER = (
    ("common", "obs"),
    ("flash",),
    ("ftl", "timessd"),
    ("fs", "nvme", "sched", "timekits"),
    ("workloads", "security", "casestudies", "bench", "cli", "analysis", "faults"),
)

LAYER_OF = {
    pkg: depth for depth, pkgs in enumerate(LAYER_ORDER) for pkg in pkgs
}


def subpackage(module_name):
    """``repro.flash.page`` -> ``flash``; the package root -> ``None``."""
    if module_name is None:
        return None
    parts = module_name.split(".")
    if parts[0] != ROOT_PACKAGE or len(parts) < 2:
        return None
    sub = parts[1]
    if sub == "__main__":
        return None
    return sub


@dataclass(frozen=True)
class ImportedName:
    """One imported module reference with its source location."""

    module: str
    line: int
    col: int


def resolve_relative(module_name, level, target):
    """Resolve ``from ..x import y`` to an absolute dotted module name."""
    if level == 0:
        return target
    if module_name is None:
        return None
    base = module_name.split(".")
    # level 1 = the current package; a plain module drops its own name.
    if len(base) < level:
        return None
    base = base[: len(base) - level]
    if target:
        base.extend(target.split("."))
    return ".".join(base) if base else None


def module_imports(module):
    """Every module imported by ``module``, as :class:`ImportedName`."""
    if module.tree is None:
        return []
    found = []
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                found.append(
                    ImportedName(alias.name, node.lineno, node.col_offset + 1)
                )
        elif isinstance(node, ast.ImportFrom):
            target = resolve_relative(
                module.module, node.level, node.module or ""
            )
            if target:
                found.append(
                    ImportedName(target, node.lineno, node.col_offset + 1)
                )
    return found


def package_graph(project):
    """Directed ``repro`` subpackage graph: edges importer -> imported.

    Returns ``{subpackage: {imported_subpackage, ...}}`` with self-edges
    removed; cached on the project.
    """

    def build():
        graph = {}
        for module in project.modules:
            src = subpackage(module.module)
            if src is None:
                continue
            edges = graph.setdefault(src, set())
            for imported in module_imports(module):
                dst = subpackage(imported.module)
                if dst is not None and dst != src:
                    edges.add(dst)
                    graph.setdefault(dst, set())
        return graph

    return project.cached("package_graph", build)


def cyclic_packages(project):
    """Subpackages on an import cycle (members of any SCC of size > 1)."""

    def build():
        graph = package_graph(project)
        index = {}
        lowlink = {}
        on_stack = set()
        stack = []
        cyclic = set()
        counter = [0]

        def strongconnect(node):
            index[node] = lowlink[node] = counter[0]
            counter[0] += 1
            stack.append(node)
            on_stack.add(node)
            for succ in sorted(graph.get(node, ())):
                if succ not in index:
                    strongconnect(succ)
                    lowlink[node] = min(lowlink[node], lowlink[succ])
                elif succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1:
                    cyclic.update(component)

        for node in sorted(graph):
            if node not in index:
                strongconnect(node)
        return cyclic

    return project.cached("cyclic_packages", build)
