"""Violation reporters: human text and machine JSON."""

import json


def format_text(violations):
    """One ``path:line:col: [rule-id] message`` line each, plus a summary."""
    lines = [str(v) for v in violations]
    if violations:
        by_rule = {}
        for violation in violations:
            by_rule[violation.rule_id] = by_rule.get(violation.rule_id, 0) + 1
        breakdown = ", ".join(
            "%s x%d" % (rule_id, count)
            for rule_id, count in sorted(by_rule.items())
        )
        lines.append("")
        lines.append(
            "%d violation%s (%s)"
            % (len(violations), "" if len(violations) == 1 else "s", breakdown)
        )
    else:
        lines.append("almanac-lint: clean")
    return "\n".join(lines)


def format_json(violations):
    """A JSON array of violation objects (stable key order)."""
    return json.dumps(
        [
            {
                "rule": v.rule_id,
                "path": v.path,
                "line": v.line,
                "col": v.col,
                "message": v.message,
            }
            for v in violations
        ],
        indent=2,
        sort_keys=True,
    )
