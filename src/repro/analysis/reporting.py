"""Violation reporters: human text, machine JSON, and SARIF 2.1.0."""

import json
import os


def format_text(violations):
    """One ``path:line:col: [rule-id] message`` line each, plus a summary."""
    lines = [str(v) for v in violations]
    if violations:
        by_rule = {}
        for violation in violations:
            by_rule[violation.rule_id] = by_rule.get(violation.rule_id, 0) + 1
        breakdown = ", ".join(
            "%s x%d" % (rule_id, count)
            for rule_id, count in sorted(by_rule.items())
        )
        lines.append("")
        lines.append(
            "%d violation%s (%s)"
            % (len(violations), "" if len(violations) == 1 else "s", breakdown)
        )
    else:
        lines.append("almanac-lint: clean")
    return "\n".join(lines)


def format_json(violations):
    """A JSON array of violation objects (stable key order)."""
    return json.dumps(
        [
            {
                "rule": v.rule_id,
                "path": v.path,
                "line": v.line,
                "col": v.col,
                "message": v.message,
            }
            for v in violations
        ],
        indent=2,
        sort_keys=True,
    )


def _sarif_uri(path):
    """Repo-relative, forward-slash URI for a violation path."""
    relative = os.path.relpath(path)
    if relative.startswith(".."):
        relative = path  # outside the tree: keep it verbatim
    return relative.replace(os.sep, "/")


def format_sarif(violations, rules=()):
    """SARIF 2.1.0 (what GitHub code scanning ingests for inline PR
    annotations).  ``rules`` populates the tool's rule metadata so the
    annotation UI can show each rule's description."""
    rule_metadata = [
        {
            "id": rule.rule_id,
            "shortDescription": {"text": rule.description or rule.rule_id},
            "properties": {"pack": rule.pack},
        }
        for rule in rules
    ]
    results = [
        {
            "ruleId": v.rule_id,
            "level": "error",
            "message": {"text": v.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": _sarif_uri(v.path),
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": v.line,
                            "startColumn": v.col,
                        },
                    }
                }
            ],
        }
        for v in violations
    ]
    document = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "almanac-lint",
                        "informationUri": "docs/ANALYSIS.md",
                        "rules": rule_metadata,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)
