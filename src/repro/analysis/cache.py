"""On-disk result cache so full-tree deep runs stay fast in CI.

Two tiers, both keyed on content, never on mtimes:

* **shallow** — per file: ``sha256(path + source)`` -> the file-local
  violations and used-suppression entries.  Editing one file re-lints
  one file.
* **deep** — per tree: ``sha256`` over every ``(path, file_sha)`` pair
  -> the whole-program (call-graph/effects/domains) findings.  Any
  edit anywhere invalidates it, which is exactly the soundness the
  whole-program passes need.

Both tiers additionally key on the *analyzer version* (a hash of every
``repro/analysis`` source file) and the selected rule ids, so upgrading
a rule or changing ``--select`` can never serve stale results.  Cache
files are plain JSON under the cache directory (default
``.almanac-cache/``, gitignored; CI persists it with ``actions/cache``).
"""

import hashlib
import json
import os

from repro.analysis.core import Violation

_ANALYSIS_DIR = os.path.dirname(os.path.abspath(__file__))
_VERSION_CACHE = []

#: Default cache location, relative to the invocation directory.
DEFAULT_CACHE_DIR = ".almanac-cache"


def analyzer_version():
    """Hash of every analysis-package source file (memoised)."""
    if _VERSION_CACHE:
        return _VERSION_CACHE[0]
    digest = hashlib.sha256()
    for dirpath, dirnames, filenames in os.walk(_ANALYSIS_DIR):
        dirnames[:] = sorted(
            d for d in dirnames if d != "__pycache__" and not d.startswith(".")
        )
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            digest.update(filename.encode("utf-8"))
            with open(os.path.join(dirpath, filename), "rb") as handle:
                digest.update(handle.read())
    _VERSION_CACHE.append(digest.hexdigest()[:16])
    return _VERSION_CACHE[0]


def _violation_to_dict(violation):
    return {
        "rule_id": violation.rule_id,
        "path": violation.path,
        "line": violation.line,
        "col": violation.col,
        "message": violation.message,
    }


def _violation_from_dict(data):
    return Violation(
        rule_id=data["rule_id"],
        path=data["path"],
        line=data["line"],
        col=data["col"],
        message=data["message"],
    )


class ResultCache:
    """One lint run's view of the cache directory."""

    def __init__(self, directory, rule_ids, extra=""):
        self.directory = directory
        signature = hashlib.sha256()
        signature.update(analyzer_version().encode("utf-8"))
        signature.update("\x00".join(sorted(rule_ids)).encode("utf-8"))
        if extra:
            # Out-of-tree inputs a rule reads (the metric catalog):
            # their content must key the cache too, or a docs-only
            # edit would serve stale findings.
            signature.update(b"\x00")
            signature.update(extra.encode("utf-8"))
        self.signature = signature.hexdigest()[:16]
        self._shallow_path = os.path.join(
            directory, "shallow-%s.json" % self.signature
        )
        self._deep_path = os.path.join(
            directory, "deep-%s.json" % self.signature
        )
        self._shallow = _load_json(self._shallow_path)
        self._deep = _load_json(self._deep_path)
        #: Keys read or written this run; save() drops the rest so the
        #: cache cannot grow without bound across refactors.
        self._live_shallow = set()
        self._dirty = False
        self._file_sha = {}
        #: Hit/miss tallies for ``repro lint --stats``.
        self.shallow_hits = 0
        self.shallow_misses = 0
        self.deep_hits = 0
        self.deep_misses = 0

    # -- keys -----------------------------------------------------------------

    def file_sha(self, module):
        # Memoised per module *object*, not per path: the same path can
        # be re-read with new content within one process (tests do).
        cached = self._file_sha.get(id(module))
        if cached is None:
            digest = hashlib.sha256()
            digest.update(module.path.encode("utf-8"))
            digest.update(b"\x00")
            digest.update(module.source.encode("utf-8"))
            cached = digest.hexdigest()
            self._file_sha[id(module)] = cached
        return cached

    def tree_sha(self, modules):
        digest = hashlib.sha256()
        for module in sorted(modules, key=lambda m: m.path):
            digest.update(self.file_sha(module).encode("utf-8"))
        return digest.hexdigest()

    # -- shallow tier ---------------------------------------------------------

    def lookup_file(self, module):
        entry = self._shallow.get(self.file_sha(module))
        if entry is None:
            self.shallow_misses += 1
            return None
        self.shallow_hits += 1
        self._live_shallow.add(self.file_sha(module))
        violations = [_violation_from_dict(v) for v in entry["violations"]]
        used = {(line, name) for line, name in entry["used"]}
        return violations, used

    def store_file(self, module, violations, used):
        key = self.file_sha(module)
        self._shallow[key] = {
            "violations": [_violation_to_dict(v) for v in violations],
            "used": sorted([line, name] for line, name in used),
        }
        self._live_shallow.add(key)
        self._dirty = True

    # -- deep tier ------------------------------------------------------------

    def lookup_deep(self, modules):
        entry = self._deep.get(self.tree_sha(modules))
        if entry is None:
            self.deep_misses += 1
            return None
        self.deep_hits += 1
        violations = [_violation_from_dict(v) for v in entry["violations"]]
        used = {
            path: {(line, name) for line, name in entries}
            for path, entries in entry["used"].items()
        }
        return violations, used

    def store_deep(self, modules, violations, used_by_path):
        self._deep = {
            self.tree_sha(modules): {
                "violations": [_violation_to_dict(v) for v in violations],
                "used": {
                    path: sorted([line, name] for line, name in entries)
                    for path, entries in used_by_path.items()
                },
            }
        }
        self._dirty = True

    # -- persistence ----------------------------------------------------------

    def save(self):
        if not self._dirty:
            return
        os.makedirs(self.directory, exist_ok=True)
        live = {
            key: value
            for key, value in self._shallow.items()
            if key in self._live_shallow
        }
        _dump_json(self._shallow_path, live)
        _dump_json(self._deep_path, self._deep)
        self._dirty = False


def _load_json(path):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError):
        return {}
    return data if isinstance(data, dict) else {}


def _dump_json(path, data):
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(data, handle, sort_keys=True)
    os.replace(tmp, path)
