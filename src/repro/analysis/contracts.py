"""The declarative whole-program contract table.

Each entry is one checkable cross-layer invariant from the paper's
correctness argument, expressed over the effect analysis
(:mod:`repro.analysis.effects`).  Three contract shapes exist:

:class:`ReachContract`
    "Nothing reachable from these roots has this effect."  Traversal
    follows confident + ambiguous call edges and stops at *waived*
    functions — each waiver carries a written justification, which the
    report prints, so an auditor can re-examine it.
:class:`CallerContract`
    "These functions may only be called from this allow-list."  Only
    confident call edges count (a dynamic-dispatch guess is already in
    the unresolved report and should not fail the build).
:class:`RaiseContract`
    "Functions in this scope may only let these exceptions escape."

To add a contract: pick the shape, give it a stable ``rule_id``
(``effects-`` prefix, kebab-case), append it to :data:`CONTRACTS`, and
document it in docs/ANALYSIS.md.  The rule machinery in
``rules/whole_program.py`` materialises one lint rule per entry, so the
new id immediately works with ``--select``, suppressions and SARIF.
"""

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Waiver:
    """A deliberate hole in a ReachContract, with its justification."""

    qualname: str
    why: str


@dataclass(frozen=True)
class ReachContract:
    """Forbid ``effect`` anywhere reachable from functions matching
    ``roots`` (exact qualnames, or prefixes ending with a dot)."""

    rule_id: str
    description: str
    roots: tuple
    effect: str
    waivers: tuple = field(default=())

    def waived_qualnames(self):
        return tuple(w.qualname for w in self.waivers)


@dataclass(frozen=True)
class CallerContract:
    """``callees`` may only be called from ``allowed_callers``."""

    rule_id: str
    description: str
    callees: tuple
    allowed_callers: tuple


@dataclass(frozen=True)
class RaiseContract:
    """Functions whose qualname starts with ``scope`` may only raise
    ``allowed`` exception types (subclasses included)."""

    rule_id: str
    description: str
    scope: str
    allowed: tuple


CONTRACTS = (
    ReachContract(
        rule_id="effects-recovery-rng",
        description=(
            "recovery/rebuild paths must be RNG-free: crash recovery has "
            "to reconstruct the identical FTL state on every replay"
        ),
        roots=("repro.ftl.recovery.", "repro.timessd.recovery."),
        effect="consumes-rng",
    ),
    ReachContract(
        rule_id="effects-read-path-flash",
        description=(
            "host read paths must not program or erase flash: a read "
            "that mutates media can destroy the history it serves"
        ),
        roots=(
            "repro.nvme.controller.NVMeController._op_read",
            "repro.ftl.ssd.BaseSSD.read",
            "repro.ftl.ssd.BaseSSD.read_range",
            "repro.timessd.ssd.TimeSSD.version_chain",
        ),
        effect="mutates-flash",
        waivers=(
            Waiver(
                "repro.ftl.ssd.BaseSSD._before_host_request",
                "idle-window housekeeping: GC may program/erase before "
                "the host op is admitted, never as part of serving it; "
                "the differential oracle (tests/integration) checks "
                "read-your-writes across this boundary",
            ),
            Waiver(
                "repro.ftl.ssd.BaseSSD._after_host_request",
                "post-op housekeeping hook, runs after the read result "
                "is already materialised; mutations here are background "
                "work accounted to the device, not the read",
            ),
            Waiver(
                "repro.timessd.ssd.TimeSSD._after_host_request",
                "retention shrink + delta compression fire after the "
                "host op completes (paper §4: background epoch "
                "maintenance); the read's return value is computed "
                "before this hook runs",
            ),
        ),
    ),
    CallerContract(
        rule_id="effects-fault-hook-sites",
        description=(
            "fault hooks may fire only from the flash pre-commit points: "
            "injecting anywhere else would fault state the media model "
            "never exposed"
        ),
        callees=(
            "repro.faults.hooks.FaultHooks.on_read",
            "repro.faults.hooks.FaultHooks.on_program",
            "repro.faults.hooks.FaultHooks.on_erase",
        ),
        allowed_callers=(
            "repro.flash.device.FlashDevice.read_page",
            "repro.flash.device.FlashDevice.read_oob",
            "repro.flash.device.FlashDevice.program_page",
            "repro.flash.device.FlashDevice.erase_block",
        ),
    ),
    RaiseContract(
        rule_id="effects-obs-raises",
        description=(
            "observability may only raise ReproError: an emit site that "
            "can throw anything else would let metrics crash the FTL "
            "hot path"
        ),
        scope="repro.obs.",
        allowed=("repro.common.errors.ReproError",),
    ),
)


def contract_ids():
    return tuple(c.rule_id for c in CONTRACTS)
