"""The declarative whole-program contract table.

Each entry is one checkable cross-layer invariant from the paper's
correctness argument, expressed over the effect analysis
(:mod:`repro.analysis.effects`).  Three contract shapes exist:

:class:`ReachContract`
    "Nothing reachable from these roots has this effect."  Traversal
    follows confident + ambiguous call edges and stops at *waived*
    functions — each waiver carries a written justification, which the
    report prints, so an auditor can re-examine it.
:class:`CallerContract`
    "These functions may only be called from this allow-list."  Only
    confident call edges count (a dynamic-dispatch guess is already in
    the unresolved report and should not fail the build).
:class:`RaiseContract`
    "Functions in this scope may only let these exceptions escape."

To add a contract: pick the shape, give it a stable ``rule_id``
(``effects-`` prefix, kebab-case), append it to :data:`CONTRACTS`, and
document it in docs/ANALYSIS.md.  The rule machinery in
``rules/whole_program.py`` materialises one lint rule per entry, so the
new id immediately works with ``--select``, suppressions and SARIF.
"""

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Waiver:
    """A deliberate hole in a ReachContract, with its justification."""

    qualname: str
    why: str


@dataclass(frozen=True)
class ReachContract:
    """Forbid ``effect`` anywhere reachable from functions matching
    ``roots`` (exact qualnames, or prefixes ending with a dot)."""

    rule_id: str
    description: str
    roots: tuple
    effect: str
    waivers: tuple = field(default=())

    def waived_qualnames(self):
        return tuple(w.qualname for w in self.waivers)


@dataclass(frozen=True)
class CallerContract:
    """``callees`` may only be called from ``allowed_callers``."""

    rule_id: str
    description: str
    callees: tuple
    allowed_callers: tuple


@dataclass(frozen=True)
class RaiseContract:
    """Functions whose qualname starts with ``scope`` may only raise
    ``allowed`` exception types (subclasses included)."""

    rule_id: str
    description: str
    scope: str
    allowed: tuple


CONTRACTS = (
    ReachContract(
        rule_id="effects-recovery-rng",
        description=(
            "recovery/rebuild paths must be RNG-free: crash recovery has "
            "to reconstruct the identical FTL state on every replay"
        ),
        # The checkpoint *writer* (repro.ftl.checkpoint.CheckpointWriter)
        # is deliberately absent: it runs from the host path and programs
        # real pages, which legitimately crosses fault hooks and the
        # reliability model.  Its recovery-side loaders are covered
        # transitively through recovery_scan.sweep_oob.
        roots=(
            "repro.ftl.recovery.",
            "repro.ftl.recovery_scan.",
            "repro.timessd.recovery.",
        ),
        effect="consumes-rng",
    ),
    ReachContract(
        rule_id="effects-read-path-flash",
        description=(
            "host read paths must not program or erase flash: a read "
            "that mutates media can destroy the history it serves"
        ),
        roots=(
            "repro.nvme.controller.NVMeController._op_read",
            "repro.ftl.ssd.BaseSSD.read",
            "repro.ftl.ssd.BaseSSD.read_range",
            "repro.timessd.ssd.TimeSSD.version_chain",
        ),
        effect="mutates-flash",
        waivers=(
            Waiver(
                "repro.ftl.ssd.BaseSSD._before_host_request",
                "idle-window housekeeping: GC may program/erase before "
                "the host op is admitted, never as part of serving it; "
                "the differential oracle (tests/integration) checks "
                "read-your-writes across this boundary",
            ),
            Waiver(
                "repro.ftl.ssd.BaseSSD._after_host_request",
                "post-op housekeeping hook, runs after the read result "
                "is already materialised; mutations here are background "
                "work accounted to the device, not the read",
            ),
            Waiver(
                "repro.timessd.ssd.TimeSSD._after_host_request",
                "retention shrink + delta compression fire after the "
                "host op completes (paper §4: background epoch "
                "maintenance); the read's return value is computed "
                "before this hook runs",
            ),
        ),
    ),
    ReachContract(
        rule_id="effects-scrub-rng",
        description=(
            "the patrol scrubber must never consume foreground RNG: "
            "whether scrub ran in some idle window may not perturb the "
            "host-visible random stream (golden determinism depends on "
            "it)"
        ),
        roots=("repro.ftl.scrub.",),
        effect="consumes-rng",
        waivers=(
            Waiver(
                "repro.flash.reliability.ReliabilityEngine.check_read",
                "the media noise source: a dedicated stream seeded from "
                "FlashReliability.seed, deliberately separate from the "
                "FTL's foreground RNG — patrol reads draw from it like "
                "any other read, without touching host randomness",
            ),
            Waiver(
                "repro.timessd.delta.ModeledDeltaCodec.compress",
                "modeled-content mode draws delta sizes from the "
                "device's content model; the draw belongs to the data "
                "model shared by every compression path (GC, background, "
                "scrub refresh) — under REAL content mode scrub "
                "compression is RNG-free",
            ),
            Waiver(
                "repro.common.stats.LatencyStats.record",
                "the latency reservoir's eviction slot draw: "
                "observability-only state seeded per-stats-object, never "
                "read back by the simulation; scrub recording a latency "
                "cannot perturb host-visible behaviour",
            ),
            Waiver(
                "repro.faults.hooks.FaultHooks.on_read",
                "fault-injection harness: fire() draws from the fault "
                "plan's own seeded stream, which exists only when a "
                "torture plan is installed and is owned by the test "
                "harness, not the foreground FTL",
            ),
            Waiver(
                "repro.faults.hooks.FaultHooks.on_program",
                "same fault-plan-owned stream as on_read (probability-"
                "triggered specs roll against the plan's dedicated RNG)",
            ),
            Waiver(
                "repro.faults.hooks.FaultHooks.on_erase",
                "same fault-plan-owned stream as on_read",
            ),
            Waiver(
                "repro.security.attacks._junk_pool",
                "analysis imprecision: reachable only via ambiguous "
                "constructor dispatch (flash primitives build error "
                "objects; the name-matched __init__ belongs to the "
                "attack drivers) — the scrubber never instantiates "
                "attack objects",
            ),
            Waiver(
                "repro.workloads.content.ContentFactory.mutate",
                "analysis imprecision: same ambiguous-constructor chain "
                "as _junk_pool; workload content factories are never "
                "created or invoked from device or scrub code",
            ),
        ),
    ),
    ReachContract(
        rule_id="effects-scrub-flash-writes",
        description=(
            "patrol reads never program or erase flash except through "
            "the refresh migration API: a scrub pass that could write "
            "anywhere else might corrupt the history it protects"
        ),
        roots=("repro.ftl.scrub.",),
        effect="mutates-flash",
        waivers=(
            Waiver(
                "repro.ftl.ssd.BaseSSD.program_with_retry",
                "the refresh migration API for valid pages: the same "
                "remap-on-failure program loop GC migration uses, "
                "followed by the public remap_migrated_page path",
            ),
            Waiver(
                "repro.ftl.ssd.BaseSSD._refresh_retained_page",
                "the refresh API for retained versions: a no-op on the "
                "base device; TimeSSD compresses the version into its "
                "delta chain, preserving timestamp and chain linkage",
            ),
            Waiver(
                "repro.timessd.ssd.TimeSSD._refresh_retained_page",
                "TimeSSD's retained-refresh override (reached by "
                "virtual dispatch from the scrubber's hook call)",
            ),
            Waiver(
                "repro.ftl.ssd.BaseSSD.relocate_block",
                "grown-bad-block retirement: emptying and releasing a "
                "condemned block reuses the exact GC reclaim step; "
                "release_block sees Block.failed and retires it",
            ),
            Waiver(
                "repro.timessd.ssd.TimeSSD.relocate_block",
                "TimeSSD's retention-aware reclaim override of the "
                "retirement path",
            ),
            Waiver(
                "repro.faults.hooks.FaultHooks.on_read",
                "analysis imprecision: the hook only raises or returns; "
                "the flash-mutating paths attributed to it come from "
                "ambiguous constructor dispatch on the error objects it "
                "builds (name-matched __init__ chains into host-write "
                "drivers the scrubber never touches)",
            ),
            Waiver(
                "repro.flash.reliability.ReliabilityEngine.check_read",
                "analysis imprecision: the ECC check samples corrected "
                "bits and raises UncorrectableReadError — it has no path "
                "to media state; the attributed writes are the same "
                "ambiguous error-constructor chain as on_read",
            ),
        ),
    ),
    CallerContract(
        rule_id="effects-fault-hook-sites",
        description=(
            "fault hooks may fire only from the flash pre-commit points: "
            "injecting anywhere else would fault state the media model "
            "never exposed"
        ),
        callees=(
            "repro.faults.hooks.FaultHooks.on_read",
            "repro.faults.hooks.FaultHooks.on_program",
            "repro.faults.hooks.FaultHooks.on_erase",
        ),
        allowed_callers=(
            "repro.flash.device.FlashDevice.read_page",
            "repro.flash.device.FlashDevice.read_oob",
            "repro.flash.device.FlashDevice.program_page",
            "repro.flash.device.FlashDevice.erase_block",
        ),
    ),
    RaiseContract(
        rule_id="effects-obs-raises",
        description=(
            "observability may only raise ReproError: an emit site that "
            "can throw anything else would let metrics crash the FTL "
            "hot path"
        ),
        scope="repro.obs.",
        allowed=("repro.common.errors.ReproError",),
    ),
)


def contract_ids():
    return tuple(c.rule_id for c in CONTRACTS)
