"""Atomic-section detection and the atomicity rules (pure ``ast``).

``@atomic_section("reason")`` (:mod:`repro.common.atomic`) marks a
function as one indivisible step with respect to task interleaving.
This module finds the annotations syntactically (analyzed code is never
imported) and checks four things over the PR 5 call graph + effects:

* **Enclosure** — every flash-mutating call site reachable from a
  schedulable task root sits inside some atomic section
  (``concurrency-unannotated-flash-mutator``).
* **Re-entrancy** — no call out of an atomic section can reach a
  competing schedulable task root, e.g. GC firing from inside a mapping
  update (``concurrency-reentrant-atomic``).  Only confident call edges
  count, mirroring the CallerContract precedent: a dynamic-dispatch
  guess already lives in the unresolved report.
* **Yield-freedom** — no ``await``/``async for``/``async with``/
  scheduler-yield call inside a section or anything it calls
  (``concurrency-yield-in-atomic``); the PR 7 refactor fails loud here,
  not subtle.
* **Exception consistency** — a section that can raise partway through
  must keep its mutations last, or declare ``restores_state=True`` with
  a written reason (``concurrency-atomic-raise-after-mutate``).
"""

import ast
from dataclasses import dataclass, field

from repro.analysis.callgraph import dotted
from repro.analysis.effects import (
    MUTATES_FLASH,
    atom_exception,
    effect_analysis,
)
from repro.analysis.concurrency.model import (
    MUTATING_METHOD_NAMES,
    SCHEDULER_YIELD_QUALNAMES,
    STATE_OWNERS,
    schedulable_roots,
)
from repro.analysis.imports import subpackage


@dataclass(frozen=True)
class AtomicSection:
    """One ``@atomic_section``-decorated function."""

    qualname: str
    reason: str
    restores_state: bool
    line: int  # decorator line (the annotation site)


@dataclass
class AtomicIndex:
    """All sections in a project plus malformed decorator uses."""

    sections: dict = field(default_factory=dict)  # qualname -> AtomicSection
    #: (module, anchor-node, message) for decorator misuse
    malformed: list = field(default_factory=list)

    def __contains__(self, qualname):
        return qualname in self.sections


def _decorator_is_atomic(decorator):
    """The expression (called or bare) naming ``atomic_section``, or None."""
    target = decorator.func if isinstance(decorator, ast.Call) else decorator
    chain = dotted(target)
    if chain and chain[-1] == "atomic_section":
        return target
    return None


def _parse_section(func, decorator, index):
    """Validate one ``@atomic_section(...)`` use and record it."""
    if not isinstance(decorator, ast.Call):
        index.malformed.append(
            (
                func.module,
                decorator,
                "%s: @atomic_section must be called with a reason string"
                % func.qualname,
            )
        )
        return
    reason = None
    if decorator.args:
        first = decorator.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            reason = first.value.strip() or None
    if reason is None:
        index.malformed.append(
            (
                func.module,
                decorator,
                "%s: @atomic_section needs a non-empty literal reason "
                "string as its first argument" % func.qualname,
            )
        )
        return
    restores = False
    for keyword in decorator.keywords:
        if keyword.arg != "restores_state":
            continue
        if isinstance(keyword.value, ast.Constant) and isinstance(
            keyword.value.value, bool
        ):
            restores = keyword.value.value
        else:
            index.malformed.append(
                (
                    func.module,
                    decorator,
                    "%s: restores_state must be a literal bool"
                    % func.qualname,
                )
            )
            return
    index.sections[func.qualname] = AtomicSection(
        qualname=func.qualname,
        reason=reason,
        restores_state=restores,
        line=decorator.lineno,
    )


def atomic_index(project):
    """Find (and cache) every ``@atomic_section`` in the project."""

    def build():
        analysis = effect_analysis(project)
        index = AtomicIndex()
        for qualname in sorted(analysis.graph.functions):
            func = analysis.graph.functions[qualname]
            for decorator in func.node.decorator_list:
                if _decorator_is_atomic(decorator) is not None:
                    _parse_section(func, decorator, index)
        return index

    return project.cached("atomic_sections", build)


# --- Reachability ------------------------------------------------------------


def _walk(graph, starts, stop_at=frozenset(), confident_only=False):
    """BFS parent map over call edges from ``starts``.

    Never descends *out of* a qualname in ``stop_at`` (the node itself
    is still visited).  Returns ``{qualname: parent-or-None}`` in visit
    order, so chains reconstruct via the parent links.

    Ambiguous dunder edges are always skipped: ``super().__init__()``
    resolves through the dynamic-dispatch fallback to *every* class's
    ``__init__``, which would teleport the walk across unrelated
    subsystems.  Named-method ambiguity (two SSD flavours defining
    ``relocate_block``) is kept — that over-approximation is the point.
    """
    parent = {}
    order = []
    for start in starts:
        if start in parent:
            continue
        parent[start] = None
        order.append(start)
    index = 0
    while index < len(order):
        current = order[index]
        index += 1
        if current in stop_at and parent[current] is not None:
            continue  # atomic interior: the section owns what is inside
        for callee in sorted(graph.edges.get(current, ())):
            if callee in parent:
                continue
            if (current, callee) in graph.ambiguous_edges:
                if confident_only or _is_dunder(callee):
                    continue
            parent[callee] = current
            order.append(callee)
    return parent


#: Public name for the reachability walk; the shared-state inventory
#: and the yield analysis (:mod:`.yields`) both traverse with it so
#: every concurrency pass agrees on what "reachable from a root" means.
walk = _walk


def _is_dunder(qualname):
    short = qualname.rsplit(".", 1)[-1]
    return short.startswith("__") and short.endswith("__")


def shallow_walk(node):
    """``ast.walk`` that does not descend into nested scopes.

    A ``yield`` inside a nested ``def`` belongs to the nested function,
    not the enclosing one — ``ast.walk`` would conflate them and mark a
    factory that *builds* a generator as being one itself.  The root
    node is yielded even when it is itself a function definition.
    """
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        for child in ast.iter_child_nodes(current):
            if isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda,
                 ast.ClassDef),
            ):
                continue
            stack.append(child)


def _chain(parent, qualname):
    chain = []
    walk = qualname
    while walk is not None:
        chain.append(walk)
        walk = parent[walk]
    return list(reversed(chain))


def _chain_text(chain):
    return " -> ".join(part.rsplit(".", 2)[-1] for part in chain)


def _present_roots(graph):
    """Schedulable roots whose entry functions exist in this project."""
    out = []
    for root in schedulable_roots():
        present = tuple(q for q in root.qualnames if q in graph.functions)
        if present:
            out.append((root, present))
    return out


# --- Rule engines ------------------------------------------------------------


def unannotated_mutator_findings(analysis, index):
    """Flash mutations reachable from a schedulable root outside any
    atomic section.  Anchored at the mutating call site; the flash
    subpackage itself (the media model below the contract) is exempt —
    its *callers* carry the intrinsic atom and are the ones judged."""
    graph = analysis.graph
    findings = []
    seen = set()
    atomic = frozenset(index.sections)
    for root, entries in _present_roots(graph):
        starts = [q for q in entries if q not in atomic]
        if not starts:
            continue
        parent = _walk(graph, starts, stop_at=atomic)
        for qualname in parent:
            if qualname in atomic:
                continue
            if MUTATES_FLASH not in analysis.intrinsic.get(qualname, {}):
                continue
            if subpackage(qualname) == "flash":
                continue
            site = analysis.intrinsic_site(qualname, MUTATES_FLASH)
            key = (qualname, root.name)
            if key in seen:
                continue
            seen.add(key)
            info = graph.functions[qualname]
            findings.append(
                (
                    info.module,
                    _line_anchor(site[1] if site else info.node.lineno),
                    "flash mutation in %s is reachable from task root "
                    "'%s' (%s) outside any @atomic_section; wrap the "
                    "invariant-restoring sequence in one"
                    % (
                        qualname,
                        root.name,
                        _chain_text(_chain(parent, qualname)),
                    ),
                )
            )
    return findings


def reentrancy_findings(analysis, index):
    """Atomic sections from which a competing schedulable task root is
    reachable (confident edges only)."""
    graph = analysis.graph
    root_of = {}
    for root, entries in _present_roots(graph):
        for qualname in entries:
            root_of[qualname] = root
    findings = []
    for qualname in sorted(index.sections):
        if qualname not in graph.functions:
            continue
        callees = sorted(graph.edges.get(qualname, ()))
        parent = {qualname: None}
        order = []
        for callee in callees:
            if (qualname, callee) in graph.ambiguous_edges:
                continue
            if callee not in parent:
                parent[callee] = qualname
                order.append(callee)
        extended = _walk_from(graph, parent, order)
        for reached in extended:
            if reached not in root_of:
                continue
            info = graph.functions[qualname]
            findings.append(
                (
                    info.module,
                    _line_anchor(info.node.lineno),
                    "atomic section %s can re-enter task root '%s' via "
                    "%s; a competing task must never start from inside "
                    "an atomic step"
                    % (
                        qualname,
                        root_of[reached].name,
                        _chain_text(_chain(parent, reached)),
                    ),
                )
            )
    return findings


def _walk_from(graph, parent, order):
    """Continue a BFS whose frontier is already seeded (confident only)."""
    index = 0
    while index < len(order):
        current = order[index]
        index += 1
        for callee in sorted(graph.edges.get(current, ())):
            if callee in parent:
                continue
            if (current, callee) in graph.ambiguous_edges:
                continue
            parent[callee] = current
            order.append(callee)
    return order


def yield_findings(analysis, index, task_generators=frozenset()):
    """``await``/scheduler-yield sites inside atomic regions.

    The region of a section is the section plus everything confidently
    reachable from it; a yield anywhere in the region suspends the task
    mid-invariant.  ``task_generators`` (from the yield analysis) adds
    plain ``yield``/``yield from`` statements of scheduler task
    generators to the site set — a data generator's yields hand values
    to a same-task consumer and stay exempt."""
    graph = analysis.graph
    atomic = sorted(index.sections)
    if not atomic:
        return []
    owners = {}  # (module, line, col, message-core) -> set of section names
    for section in atomic:
        if section not in graph.functions:
            continue
        parent = _walk(graph, [section], confident_only=True)
        for qualname in parent:
            info = graph.functions.get(qualname)
            if info is None:
                continue
            for node, core in _yield_sites(graph, info, task_generators):
                key = (info.module, node.lineno, node.col_offset, core)
                owners.setdefault(key, (node, set()))[1].add(section)
    findings = []
    for (module, _line, _col, core), (node, sections) in sorted(
        owners.items(), key=lambda item: (item[0][0].path, item[0][1:])
    ):
        findings.append(
            (
                module,
                node,
                "%s inside atomic section%s %s; a task must not be "
                "suspended mid-invariant"
                % (
                    core,
                    "s" if len(sections) > 1 else "",
                    ", ".join(sorted(sections)),
                ),
            )
        )
    return findings


def _yield_sites(graph, info, task_generators=frozenset()):
    """(node, description) for each suspension point in one function."""
    sites = []
    if isinstance(info.node, ast.AsyncFunctionDef):
        sites.append((info.node, "async def %s" % info.qualname))
    is_task_generator = info.qualname in task_generators
    for node in shallow_walk(info.node):
        if isinstance(node, ast.Await):
            sites.append((node, "await in %s" % info.qualname))
        elif isinstance(node, (ast.AsyncFor, ast.AsyncWith)):
            kind = "async for" if isinstance(node, ast.AsyncFor) else (
                "async with"
            )
            sites.append((node, "%s in %s" % (kind, info.qualname)))
        elif is_task_generator and isinstance(
            node, (ast.Yield, ast.YieldFrom)
        ):
            sites.append(
                (node, "task-generator yield in %s" % info.qualname)
            )
    if SCHEDULER_YIELD_QUALNAMES:
        # Confident edges only, mirroring the re-entrancy rule: every
        # ``__init__`` in the project resolves from an ambiguous
        # ``super().__init__()`` guess, and a guess that a section
        # constructs a wait instruction belongs in the unresolved
        # report, not here.
        for node, resolved in graph.calls.get(info.qualname, ()):
            if any(
                q in SCHEDULER_YIELD_QUALNAMES
                and (info.qualname, q) not in graph.ambiguous_edges
                for q in resolved
            ):
                sites.append(
                    (node, "scheduler yield in %s" % info.qualname)
                )
    return sites


def raise_after_mutate_findings(analysis, index):
    """Sections without ``restores_state`` whose body can raise after a
    mutation has already landed (mutations-last discipline)."""
    findings = []
    for qualname in sorted(index.sections):
        section = index.sections[qualname]
        if section.restores_state:
            continue
        info = analysis.graph.functions.get(qualname)
        if info is None:
            continue
        mutations = _mutation_sites(analysis, info)
        raises = _raising_sites(analysis, info)
        if not mutations or not raises:
            continue
        loops = [
            (node.lineno, node.end_lineno)
            for node in ast.walk(info.node)
            if isinstance(node, (ast.For, ast.While, ast.AsyncFor))
        ]
        # One finding per raising site: a site that can raise fifteen
        # different exceptions after a mutation is one problem, not
        # fifteen — collapse the escaping exception set into the message.
        sites = {}
        for r_line, raised, via in raises:
            sites.setdefault(r_line, (via, set()))[1].add(raised)
        for r_line in sorted(sites):
            via, raised_set = sites[r_line]
            prior = [m for m in mutations if m[0] < r_line]
            shared_loop = any(
                lo <= r_line <= hi
                and any(lo <= m[0] <= hi and m[0] != r_line for m in mutations)
                for lo, hi in loops
            )
            if not prior and not shared_loop:
                continue
            if prior:
                m_line, m_what = max(prior)
            else:
                m_line, m_what = max(
                    m
                    for m in mutations
                    if m[0] != r_line
                    and any(
                        lo <= r_line <= hi and lo <= m[0] <= hi
                        for lo, hi in loops
                    )
                )
            names = sorted(raised_set)
            shown = ", ".join(names[:2])
            if len(names) > 2:
                shown += " (+%d more)" % (len(names) - 2)
            findings.append(
                (
                    info.module,
                    _line_anchor(r_line),
                    "atomic section %s may raise %s%s at line %d after "
                    "%s at line %d%s; keep mutations last or declare "
                    "restores_state=True with the restoring logic"
                    % (
                        qualname,
                        shown,
                        via,
                        r_line,
                        m_what,
                        m_line,
                        " (both inside one loop)" if not prior else "",
                    ),
                )
            )
    return findings


class _line_anchor:
    """A bare-line anchor for ``LintRule.violation``."""

    def __init__(self, line, col=1):
        self.line = line
        self.col = col


def _mutation_sites(analysis, info):
    """(line, description) for each state mutation in one function body.

    Direct attribute/subscript stores, calls to flash-mutating
    functions, calls to project functions that store attributes
    themselves (one level — their own sections govern deeper), and
    builtin container mutators on attribute receivers."""
    sites = []
    for node in ast.walk(info.node):
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            if isinstance(node, ast.AnnAssign) and node.value is None:
                continue
            for target in targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    sites.append((node.lineno, _store_text(target)))
                    break
        elif isinstance(node, ast.Delete):
            if any(
                isinstance(t, (ast.Attribute, ast.Subscript))
                for t in node.targets
            ):
                sites.append((node.lineno, "a del of instance state"))
    mutating = _state_mutators(analysis)
    for node, resolved in analysis.graph.calls.get(info.qualname, ()):
        if any(
            MUTATES_FLASH in analysis.effects.get(q, ()) for q in resolved
        ):
            sites.append((node.lineno, "a flash-mutating call"))
            continue
        if any(q in mutating for q in resolved):
            sites.append((node.lineno, "a state-mutating call"))
            continue
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in MUTATING_METHOD_NAMES
            and not resolved
            and _is_state_receiver(func.value)
        ):
            sites.append((node.lineno, "a container mutation"))
    return sorted(set(sites))


def _store_text(target):
    chain = dotted(target) if isinstance(target, ast.Attribute) else None
    if chain:
        return "a store to %s" % ".".join(chain)
    return "a store to instance state"


def _is_state_receiver(expr):
    if isinstance(expr, ast.Attribute):
        return True
    return isinstance(expr, ast.Name) and expr.id in STATE_OWNERS


def _state_mutators(analysis):
    """Qualnames whose own body stores to attribute/subscript targets."""

    def build():
        out = set()
        for qualname, info in analysis.graph.functions.items():
            for node in ast.walk(info.node):
                if isinstance(
                    node, (ast.Assign, ast.AnnAssign, ast.AugAssign)
                ):
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    if any(
                        isinstance(t, (ast.Attribute, ast.Subscript))
                        for t in targets
                    ):
                        out.add(qualname)
                        break
        return out

    return analysis.project.cached("state_mutators", build)


def _raising_sites(analysis, info):
    """(line, exception, via-text) for each escape point in one body.

    Own ``raise`` statements come from the intrinsic table (first site
    per exception type — an accepted approximation); call-mediated
    raises are judged per call site against the try/except guards the
    effects pass recorded there."""
    sites = []
    qualname = info.qualname
    for atom, (path, line) in analysis.intrinsic.get(qualname, {}).items():
        raised = atom_exception(atom)
        if raised is not None:
            sites.append((line, raised, ""))
    for callee, absorbed, line in analysis.call_records.get(qualname, ()):
        for atom in sorted(analysis.effects.get(callee, ())):
            raised = atom_exception(atom)
            if raised is None:
                continue
            if raised != "*" and analysis.hierarchy.is_caught_by(
                raised, absorbed
            ):
                continue
            if raised == "*" and absorbed & {
                "builtins.Exception",
                "builtins.BaseException",
            }:
                continue
            sites.append((line, raised, " (via %s)" % callee))
    return sorted(set(sites))
