"""Scheduler-aware yield analysis (pure ``ast``).

PR 9 made the device genuinely concurrent: cooperative generator tasks
yield wait instructions (``Delay``/``At``/``Acquire``/``Release``/
``Join``) to a deterministic event loop, and every yield is a point
where *any* other schedulable task may run.  The atomicity tier
(:mod:`.atomicity`) defends the regions between yields; this module
defends the yields themselves, over the PR 5 call graph:

* **May-yield set** — every function that can suspend the running
  task, seeded from plain ``yield``/``yield from``/``await`` sites and
  non-ambiguous calls to the wait-instruction constructors
  (:data:`~repro.analysis.concurrency.model.SCHEDULER_YIELD_QUALNAMES`),
  then propagated to callers through non-ambiguous call edges — the
  same confident-edge discipline the atomicity rules use.  The set is
  the contract surface (docs/interleaving-contract.md lists it per
  task root); it deliberately over-approximates — under plain
  generators only the task's own yields suspend it, but the table must
  stay correct when a yield point is pushed down a call chain.

* **Staleness across waits** (``concurrency-stale-read-after-yield``)
  — flow-sensitive tracking, per task generator, of locals captured
  from policy-classified shared mutable state (the written inventory of
  :mod:`.shared_state`, minus interleaving-tolerant policies).  Using
  such a local after a yield without re-reading it is the canonical
  interleaving bug: the value describes a world another task may have
  rewritten wholesale.  A local captured while holding a
  :class:`~repro.sched.core.Lane` that is *still held* at the yield
  stays fresh — the lane is the declared protection.

* **Lane discipline** — ``concurrency-lane-leak`` (an ``Acquire``
  without ``Release`` on some path, exception edges included),
  ``concurrency-lane-double-acquire`` (re-acquiring a held lane
  deadlocks the task on itself), and a static lane-order graph whose
  cycles become ``concurrency-lane-order-cycle`` (deadlock potential).

* **Task-generator protocol** — ``concurrency-bad-yield-value`` (the
  loop rejects non-instruction yields at runtime; the lint rejects
  them statically) and ``concurrency-return-in-daemon`` (a daemon that
  returns silently stops its background service forever).

Only *task* generators are analyzed: generators spawned onto the loop
(first argument of :data:`model.SPAWN_QUALNAMES` calls), generators
that yield wait-instruction constructions, and generators a task
generator delegates to via ``yield from``.  Data generators —
``scan_oob`` yielding pages to a same-task consumer — are exempt by
construction: their yields transfer values, not control of the task.

Known approximations, all on the safe-and-quiet side: statements are
processed atomically (uses inside a statement that also yields are
checked against the pre-yield state); ``break`` ends its path rather
than jumping to the loop exit; exception edges into ``except``
handlers merge the try-entry and try-exit states.  Anything the
analysis cannot see (lanes passed through untracked expressions) is
skipped, never guessed at.
"""

import ast
from dataclasses import dataclass, field, replace

from repro.analysis.callgraph import dotted
from repro.analysis.concurrency import model
from repro.analysis.concurrency.atomicity import (
    _line_anchor,
    _raising_sites,
    shallow_walk,
)
from repro.analysis.concurrency.shared_state import (
    build_inventory,
    owner_of,
    stale_sensitive_keys,
)
from repro.analysis.effects import effect_analysis


# --- The analysis object ------------------------------------------------------


@dataclass
class YieldAnalysis:
    """Everything the yield/lane rules and the contract report consume."""

    graph: object
    #: qualname -> [(node, kind)] own suspension sites, source order;
    #: kind is ``yield`` | ``yield from`` | ``await`` | ``wait-construct``.
    own_sites: dict = field(default_factory=dict)
    #: qualname -> one-line reason it is in the transitive may-yield set.
    may_yield: dict = field(default_factory=dict)
    #: qualname -> one-line reason it is a *task* generator.
    task_generators: dict = field(default_factory=dict)
    #: task generators spawned with ``daemon=True``.
    daemons: frozenset = frozenset()
    #: qualname -> {id(ast.Call): (resolved target qualnames,)}.
    resolved: dict = field(default_factory=dict)


def _wait_call_kind(graph, caller, resolved_map, node):
    """Wait-instruction kind a call constructs (non-ambiguous), or None."""
    for target in resolved_map.get(id(node), ()):
        kind = model.wait_kind(target)
        if kind is not None and (caller, target) not in graph.ambiguous_edges:
            return kind
    return None


def _spawn_keyword(node, name):
    for keyword in node.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


def _collect_own_sites(graph, qualname, info, resolved_map):
    sites = []
    for node in shallow_walk(info.node):
        if isinstance(node, ast.Yield):
            sites.append((node, "yield"))
        elif isinstance(node, ast.YieldFrom):
            sites.append((node, "yield from"))
        elif isinstance(node, ast.Await):
            sites.append((node, "await"))
        elif isinstance(node, ast.Call):
            if _wait_call_kind(graph, qualname, resolved_map, node):
                sites.append((node, "wait-construct"))
    sites.sort(key=lambda item: (item[0].lineno, item[0].col_offset))
    return sites


def yield_analysis(project):
    """Build (and cache) the yield analysis for a project."""

    def build():
        analysis = effect_analysis(project)
        graph = analysis.graph
        out = YieldAnalysis(graph=graph)
        for qualname, info in graph.functions.items():
            resolved_map = {
                id(node): tuple(targets)
                for node, targets in graph.calls.get(qualname, ())
            }
            out.resolved[qualname] = resolved_map
            sites = _collect_own_sites(graph, qualname, info, resolved_map)
            if sites:
                out.own_sites[qualname] = sites

        # Transitive may-yield: seed with own sites, propagate to
        # callers through non-ambiguous edges only (a dynamic-dispatch
        # guess that a function suspends belongs in the unresolved
        # report, not in the contract).
        for qualname in sorted(out.own_sites):
            node, kind = out.own_sites[qualname][0]
            out.may_yield[qualname] = "own %s at line %d" % (
                kind, node.lineno
            )
        callers_of = {}
        for caller, callees in graph.edges.items():
            for callee in callees:
                if (caller, callee) in graph.ambiguous_edges:
                    continue
                callers_of.setdefault(callee, []).append(caller)
        frontier = sorted(out.may_yield)
        while frontier:
            fresh = []
            for callee in frontier:
                for caller in sorted(callers_of.get(callee, ())):
                    if caller not in out.may_yield:
                        out.may_yield[caller] = "calls %s" % callee
                        fresh.append(caller)
            frontier = sorted(fresh)

        # Task generators: (1) spawned onto the loop; (2) yielding
        # wait-instruction constructions; (3) delegated to via
        # ``yield from`` by another task generator (closure).
        daemons = set()
        for caller in sorted(graph.functions):
            resolved_map = out.resolved[caller]
            for node, targets in graph.calls.get(caller, ()):
                if not any(q in model.SPAWN_QUALNAMES for q in targets):
                    continue
                arg = (
                    node.args[0]
                    if node.args
                    else _spawn_keyword(node, "gen")
                )
                if not isinstance(arg, ast.Call):
                    continue
                for target in resolved_map.get(id(arg), ()):
                    if target not in graph.functions:
                        continue
                    out.task_generators.setdefault(
                        target, "spawned as a task by %s" % caller
                    )
                    flag = _spawn_keyword(node, "daemon")
                    if (
                        isinstance(flag, ast.Constant)
                        and flag.value is True
                    ):
                        daemons.add(target)
        for qualname in sorted(out.own_sites):
            if qualname in out.task_generators:
                continue
            for node, kind in out.own_sites[qualname]:
                if kind != "yield" or not isinstance(node.value, ast.Call):
                    continue
                if _wait_call_kind(
                    graph, qualname, out.resolved[qualname], node.value
                ):
                    out.task_generators[qualname] = (
                        "yields wait instructions"
                    )
                    break
        changed = True
        while changed:
            changed = False
            for qualname in sorted(out.task_generators):
                for node, kind in out.own_sites.get(qualname, ()):
                    if kind != "yield from" or not isinstance(
                        node.value, ast.Call
                    ):
                        continue
                    for target in out.resolved[qualname].get(
                        id(node.value), ()
                    ):
                        if (
                            target in graph.functions
                            and target not in out.task_generators
                        ):
                            out.task_generators[target] = (
                                "delegated to by %s" % qualname
                            )
                            changed = True
        out.daemons = frozenset(daemons)
        return out

    return project.cached("yield_analysis", build)


# --- Flow state ---------------------------------------------------------------


@dataclass(frozen=True)
class _Taint:
    """One local derived from staleness-sensitive shared state."""

    owner: str
    attr: str
    line: int  # capture site
    held: frozenset  # lane keys held at capture
    stale_line: object = None  # yield line that staled it, or None


class _State:
    """Abstract state at one program point (may-semantics on merge)."""

    __slots__ = ("taints", "held", "live")

    def __init__(self, taints=None, held=None, live=True):
        self.taints = taints if taints is not None else {}
        self.held = held if held is not None else {}
        self.live = live

    def copy(self):
        return _State(dict(self.taints), dict(self.held), self.live)

    def become(self, other):
        self.taints = other.taints
        self.held = other.held
        self.live = other.live


def _merge(a, b):
    """Join two path states: stale-wins, may-held union."""
    if not a.live:
        return b.copy()
    if not b.live:
        return a.copy()
    taints = dict(a.taints)
    for name, taint in b.taints.items():
        mine = taints.get(name)
        if mine is None:
            taints[name] = taint
        elif mine.stale_line is None and taint.stale_line is not None:
            taints[name] = taint
    held = dict(b.held)
    held.update(a.held)  # keep a's (earlier) acquire sites on conflict
    return _State(taints, held, True)


_HANDLERS = ("handlers",)  # sentinel frame on the protection stack


# --- Per-task-generator scan --------------------------------------------------


class _TaskScan:
    """Staleness + lane discipline over one task generator's body."""

    def __init__(self, analysis, yanal, info, sensitive):
        self.analysis = analysis
        self.graph = analysis.graph
        self.info = info
        self.sensitive = sensitive
        self.resolved = yanal.resolved.get(info.qualname, {})
        self.stale = set()  # (line, col, message)
        self.leaks = set()
        self.doubles = set()
        self.edges = {}  # (held_key, acquired_key) -> line
        self.local_names = self._local_names()
        self.raising_lines = frozenset(
            line for line, _exc, _via in _raising_sites(analysis, info)
        )

    def _local_names(self):
        names = set()
        args = self.info.node.args
        for arg in (
            args.posonlyargs + args.args + args.kwonlyargs
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        ):
            names.add(arg.arg)
        for node in shallow_walk(self.info.node):
            if isinstance(node, ast.Name) and isinstance(
                node.ctx, (ast.Store, ast.Del)
            ):
                names.add(node.id)
        return names

    # -- keys and classification --

    def _lane_key(self, expr):
        """(key, is_global) for a lane expression, or None if untracked."""
        if isinstance(expr, ast.Attribute):
            owner = owner_of(self.graph, self.info, expr.value)
            if owner is not None:
                return ("%s.%s" % (owner, expr.attr), True)
            chain = dotted(expr)
            if chain:
                return (
                    "%s:%s" % (self.info.qualname, ".".join(chain)),
                    False,
                )
            return None
        if isinstance(expr, ast.Name):
            if expr.id not in self.local_names:
                # Module-level lane object: global across this module.
                return (
                    "%s.%s" % (self.info.module.module, expr.id),
                    True,
                )
            return ("%s:%s" % (self.info.qualname, expr.id), False)
        return None

    def _wait_kind(self, call):
        return _wait_call_kind(
            self.graph, self.info.qualname, self.resolved, call
        )

    def _sensitive_loads(self, expr):
        out = []
        for node in shallow_walk(expr):
            if isinstance(node, ast.Attribute) and isinstance(
                node.ctx, ast.Load
            ):
                owner = owner_of(self.graph, self.info, node.value)
                if owner is not None and (owner, node.attr) in self.sensitive:
                    out.append((owner, node.attr, node.lineno))
        return sorted(out)

    # -- driving --

    def run(self):
        state = _State()
        self._block(self.info.node.body, state, ())
        if state.live:
            anchor = _line_anchor(self.info.node.lineno)
            self._exit_check(state, anchor, (), "falls off the end")

    def _block(self, stmts, state, protection):
        for stmt in stmts:
            if not state.live:
                break
            self._stmt(stmt, state, protection)

    def _stmt(self, stmt, state, protection):
        if isinstance(stmt, ast.If):
            self._expr_effects(stmt.test, state, protection)
            then_state = state.copy()
            else_state = state.copy()
            self._block(stmt.body, then_state, protection)
            self._block(stmt.orelse, else_state, protection)
            state.become(_merge(then_state, else_state))
        elif isinstance(stmt, (ast.While, ast.For)):
            self._loop(stmt, state, protection)
        elif isinstance(stmt, ast.Try):
            self._try(stmt, state, protection)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                self._expr_effects(item.context_expr, state, protection)
                if item.optional_vars is not None:
                    self._clear_targets([item.optional_vars], state)
            self._block(stmt.body, state, protection)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._expr_effects(stmt.value, state, protection)
            self._exit_check(
                state, _line_anchor(stmt.lineno, stmt.col_offset + 1),
                protection, "returns",
            )
            state.live = False
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._expr_effects(stmt.exc, state, protection)
            self._raise_check(stmt.lineno, state, protection)
            state.live = False
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            state.live = False
        elif isinstance(
            stmt,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
             ast.Global, ast.Nonlocal, ast.Import, ast.ImportFrom,
             ast.Pass),
        ):
            return
        else:
            self._linear(stmt, state, protection)

    def _loop(self, stmt, state, protection):
        if isinstance(stmt, ast.For):
            self._expr_effects(stmt.iter, state, protection)
            loads = self._sensitive_loads(stmt.iter)
        else:
            self._expr_effects(stmt.test, state, protection)
            loads = []
        # Two passes so loop-carried state (a taint captured in
        # iteration N, staled and used in iteration N+1) is seen;
        # findings are sets, so re-scanning cannot duplicate them.
        merged = state.copy()
        for _ in range(2):
            body_state = merged.copy()
            if isinstance(stmt, ast.For):
                self._assign_targets([stmt.target], loads, body_state)
            self._block(stmt.body, body_state, protection)
            merged = _merge(merged, body_state)
        if stmt.orelse:
            self._block(stmt.orelse, merged, protection)
        if self._loops_forever(stmt):
            merged.live = False
        state.become(merged)

    def _loops_forever(self, stmt):
        if not isinstance(stmt, ast.While):
            return False
        test = stmt.test
        if not (isinstance(test, ast.Constant) and bool(test.value)):
            return False
        return not any(
            isinstance(node, ast.Break)
            for body_stmt in stmt.body
            for node in shallow_walk(body_stmt)
        )

    def _try(self, stmt, state, protection):
        release_keys = self._release_keys(stmt.finalbody)
        entry = state.copy()
        body_protection = protection
        if stmt.finalbody:
            body_protection += (("finally", release_keys),)
        if stmt.handlers:
            body_protection += (_HANDLERS,)
        self._block(stmt.body, state, body_protection)
        handler_entry = _merge(entry, state)
        handler_states = []
        for handler in stmt.handlers:
            handler_state = handler_entry.copy()
            if handler.name:
                handler_state.taints.pop(handler.name, None)
            self._block(handler.body, handler_state, protection)
            handler_states.append(handler_state)
        if stmt.orelse and state.live:
            self._block(stmt.orelse, state, protection)
        merged = state
        for handler_state in handler_states:
            merged = _merge(merged, handler_state)
        if stmt.finalbody:
            self._block(stmt.finalbody, merged, protection)
        state.become(merged)

    def _release_keys(self, stmts):
        """Lane keys released by ``yield Release(...)`` in a suite."""
        keys = set()
        for stmt in stmts:
            for node in shallow_walk(stmt):
                if not isinstance(node, ast.Yield):
                    continue
                value = node.value
                if not isinstance(value, ast.Call):
                    continue
                if self._wait_kind(value) != "release":
                    continue
                lane = (
                    value.args[0]
                    if value.args
                    else _spawn_keyword(value, "lane")
                )
                key_info = self._lane_key(lane) if lane is not None else None
                if key_info is not None:
                    keys.add(key_info[0])
        return frozenset(keys)

    # -- linear statements --

    def _linear(self, stmt, state, protection):
        self._expr_effects(stmt, state, protection)
        if isinstance(stmt, ast.Assign):
            self._assign_targets(
                stmt.targets, self._sensitive_loads(stmt.value), state,
                alias=stmt.value,
            )
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._assign_targets(
                [stmt.target], self._sensitive_loads(stmt.value), state,
                alias=stmt.value,
            )
        elif isinstance(stmt, ast.AugAssign):
            loads = self._sensitive_loads(stmt.value)
            if loads and isinstance(stmt.target, ast.Name):
                self._assign_targets([stmt.target], loads, state)
        elif isinstance(stmt, ast.Delete):
            self._clear_targets(stmt.targets, state)

    def _expr_effects(self, node, state, protection):
        """Raise check, stale-use check, then yields, for one node."""
        self._raising_check(node, state, protection)
        self._check_uses(node, state)
        yields = [
            inner
            for inner in shallow_walk(node)
            if isinstance(inner, (ast.Yield, ast.YieldFrom, ast.Await))
        ]
        yields.sort(key=lambda n: (n.lineno, n.col_offset))
        for inner in yields:
            self._yield_point(inner, state)

    def _raising_check(self, node, state, protection):
        if not state.held:
            return
        lo = getattr(node, "lineno", None)
        if lo is None:
            return
        hi = getattr(node, "end_lineno", None) or lo
        lines = [l for l in self.raising_lines if lo <= l <= hi]
        if lines:
            self._raise_check(min(lines), state, protection)

    def _raise_check(self, line, state, protection):
        if _HANDLERS in protection:
            return  # the except-handler paths are analyzed on their own
        protected = set()
        for frame in protection:
            if frame is not _HANDLERS and frame[0] == "finally":
                protected |= frame[1]
        for key in sorted(state.held):
            if key in protected:
                continue
            acquired_line, _is_global = state.held[key]
            self.leaks.add(
                (
                    line,
                    1,
                    "lane `%s` (acquired at line %d) leaks if line %d "
                    "raises; release it in a `finally`, or catch the "
                    "exception before it escapes %s"
                    % (key, acquired_line, line, self.info.qualname),
                )
            )

    def _exit_check(self, state, anchor, protection, how):
        protected = set()
        for frame in protection:
            if frame is not _HANDLERS and frame[0] == "finally":
                protected |= frame[1]
        for key in sorted(state.held):
            if key in protected:
                continue
            acquired_line, _is_global = state.held[key]
            self.leaks.add(
                (
                    anchor.line,
                    anchor.col,
                    "task generator %s %s still holding lane `%s` "
                    "(acquired at line %d); the loop raises "
                    "SchedulerError for held lanes at task exit — "
                    "yield Release on every path"
                    % (self.info.qualname, how, key, acquired_line),
                )
            )

    def _check_uses(self, node, state):
        for inner in shallow_walk(node):
            if not isinstance(inner, ast.Name):
                continue
            if not isinstance(inner.ctx, ast.Load):
                continue
            taint = state.taints.get(inner.id)
            if taint is None or taint.stale_line is None:
                continue
            self.stale.add(
                (
                    inner.lineno,
                    inner.col_offset + 1,
                    "local '%s' (read from %s.%s at line %d) is used "
                    "after the task may have been suspended at line "
                    "%d; re-read it after the wait, hold the "
                    "protecting lane across it, or suppress with a "
                    "written reason"
                    % (
                        inner.id,
                        taint.owner,
                        taint.attr,
                        taint.line,
                        taint.stale_line,
                    ),
                )
            )
            del state.taints[inner.id]  # one finding per staleness episode

    def _yield_point(self, node, state):
        value = node.value
        kind = None
        key_info = None
        if isinstance(node, ast.Yield) and isinstance(value, ast.Call):
            kind = self._wait_kind(value)
            if kind in ("acquire", "release"):
                lane = (
                    value.args[0]
                    if value.args
                    else _spawn_keyword(value, "lane")
                )
                if lane is not None:
                    key_info = self._lane_key(lane)
        if kind == "release" and key_info is not None:
            key, _is_global = key_info
            if key in state.held:
                del state.held[key]
            else:
                self.leaks.add(
                    (
                        node.lineno,
                        node.col_offset + 1,
                        "%s yields Release for lane `%s` it does not "
                        "hold on this path; the loop raises "
                        "SchedulerError at runtime"
                        % (self.info.qualname, key),
                    )
                )
        self._mark_stale(state, node.lineno)
        if kind == "acquire" and key_info is not None:
            key, is_global = key_info
            if key in state.held:
                first_line, _g = state.held[key]
                self.doubles.add(
                    (
                        node.lineno,
                        node.col_offset + 1,
                        "%s acquires lane `%s` again at line %d while "
                        "already holding it (acquired at line %d); the "
                        "task would wait on itself forever"
                        % (self.info.qualname, key, node.lineno,
                           first_line),
                    )
                )
            else:
                for held_key in sorted(state.held):
                    self.edges.setdefault(
                        (held_key, key), node.lineno
                    )
                state.held[key] = (node.lineno, is_global)

    def _mark_stale(self, state, line):
        for name in sorted(state.taints):
            taint = state.taints[name]
            if taint.stale_line is not None:
                continue
            if taint.held and taint.held & set(state.held):
                continue  # a protecting lane is still held
            state.taints[name] = replace(taint, stale_line=line)

    # -- assignments --

    def _target_names(self, target):
        if isinstance(target, ast.Name):
            return [target.id]
        if isinstance(target, (ast.Tuple, ast.List)):
            names = []
            for elt in target.elts:
                names.extend(self._target_names(elt))
            return names
        if isinstance(target, ast.Starred):
            return self._target_names(target.value)
        return []

    def _assign_targets(self, targets, loads, state, alias=None):
        for target in targets:
            names = self._target_names(target)
            for name in names:
                if loads:
                    owner, attr, line = loads[0]
                    state.taints[name] = _Taint(
                        owner, attr, line, frozenset(state.held)
                    )
                elif (
                    alias is not None
                    and isinstance(alias, ast.Name)
                    and alias.id in state.taints
                    and len(names) == 1
                ):
                    state.taints[name] = state.taints[alias.id]
                else:
                    state.taints.pop(name, None)

    def _clear_targets(self, targets, state):
        for target in targets:
            for name in self._target_names(target):
                state.taints.pop(name, None)


# --- Discipline findings ------------------------------------------------------


@dataclass
class Discipline:
    """The per-tree result of scanning every task generator."""

    stale: list = field(default_factory=list)
    leaks: list = field(default_factory=list)
    doubles: list = field(default_factory=list)
    cycles: list = field(default_factory=list)
    #: (held_key, acquired_key) -> (module, line) — the lane-order graph.
    order_edges: dict = field(default_factory=dict)


def _canonical_cycle(path):
    pivot = path.index(min(path))
    return tuple(path[pivot:] + path[:pivot])


def _find_cycles(adjacency):
    cycles = set()
    for start in sorted(adjacency):
        stack = [(start, [start])]
        while stack:
            node, path = stack.pop()
            for nxt in sorted(adjacency.get(node, ())):
                if nxt == start:
                    cycles.add(_canonical_cycle(path))
                elif nxt not in path and len(path) < 16:
                    stack.append((nxt, path + [nxt]))
    return sorted(cycles)


def lane_discipline(project):
    """Scan every task generator once; cache the combined findings."""

    def build():
        analysis = effect_analysis(project)
        yanal = yield_analysis(project)
        sensitive = stale_sensitive_keys(project)
        out = Discipline()
        for qualname in sorted(yanal.task_generators):
            info = analysis.graph.functions.get(qualname)
            if info is None:
                continue
            scan = _TaskScan(analysis, yanal, info, sensitive)
            scan.run()
            module = info.module
            for line, col, message in sorted(scan.stale):
                out.stale.append(
                    (module, _line_anchor(line, col), message)
                )
            for line, col, message in sorted(scan.leaks):
                out.leaks.append(
                    (module, _line_anchor(line, col), message)
                )
            for line, col, message in sorted(scan.doubles):
                out.doubles.append(
                    (module, _line_anchor(line, col), message)
                )
            for pair, line in scan.edges.items():
                out.order_edges.setdefault(pair, (module, line))
        adjacency = {}
        for held_key, acquired_key in out.order_edges:
            adjacency.setdefault(held_key, set()).add(acquired_key)
        for cycle in _find_cycles(adjacency):
            first = (cycle[0], cycle[(1) % len(cycle)])
            module, line = out.order_edges[first]
            chain = " -> ".join(cycle + (cycle[0],))
            out.cycles.append(
                (
                    module,
                    _line_anchor(line),
                    "lanes are acquired in a cycle: %s; two tasks "
                    "running these paths can deadlock — pick one "
                    "global acquisition order" % chain,
                )
            )
        return out

    return project.cached("lane_discipline", build)


# --- Rule engines -------------------------------------------------------------


def stale_read_findings(project):
    return lane_discipline(project).stale


def lane_leak_findings(project):
    return lane_discipline(project).leaks


def lane_double_acquire_findings(project):
    return lane_discipline(project).doubles


def lane_order_cycle_findings(project):
    return lane_discipline(project).cycles


def bad_yield_findings(project):
    """Yields of non-instruction values inside task generators."""
    yanal = yield_analysis(project)
    graph = yanal.graph
    findings = []
    for qualname in sorted(yanal.task_generators):
        info = graph.functions.get(qualname)
        if info is None:
            continue
        aliases = set()
        for node in shallow_walk(info.node):
            if not isinstance(node, ast.Assign):
                continue
            if not isinstance(node.value, ast.Call):
                continue
            if not _wait_call_kind(
                graph, qualname, yanal.resolved[qualname], node.value
            ):
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    aliases.add(target.id)
        for node, kind in yanal.own_sites.get(qualname, ()):
            if kind == "yield":
                value = node.value
                if value is None:
                    findings.append(
                        (
                            info.module,
                            node,
                            "bare `yield` in task generator %s; the "
                            "loop rejects non-instruction values with "
                            "SchedulerError — yield a wait instruction "
                            "(Delay/At/Acquire/Release/Join)" % qualname,
                        )
                    )
                    continue
                if isinstance(value, ast.Call) and _wait_call_kind(
                    graph, qualname, yanal.resolved[qualname], value
                ):
                    continue
                if isinstance(value, ast.Name) and value.id in aliases:
                    continue
                findings.append(
                    (
                        info.module,
                        node,
                        "task generator %s yields %s, which is not a "
                        "wait instruction; the loop rejects it with "
                        "SchedulerError at runtime"
                        % (qualname, _describe_value(value)),
                    )
                )
            elif kind == "yield from":
                value = node.value
                targets = (
                    yanal.resolved[qualname].get(id(value), ())
                    if isinstance(value, ast.Call)
                    else ()
                )
                if any(t in yanal.task_generators for t in targets):
                    continue
                findings.append(
                    (
                        info.module,
                        node,
                        "`yield from` in task generator %s delegates "
                        "to %s, which the analysis cannot identify as "
                        "a task generator; delegate only to generators "
                        "that yield wait instructions"
                        % (qualname, _describe_value(value)),
                    )
                )
    return findings


def _describe_value(value):
    chain = dotted(value)
    if chain:
        return "`%s`" % ".".join(chain)
    if isinstance(value, ast.Call):
        chain = dotted(value.func)
        if chain:
            return "`%s(...)`" % ".".join(chain)
        return "a call result"
    if isinstance(value, ast.Constant):
        return repr(value.value)
    return "a %s value" % type(value).__name__.lower()


def return_in_daemon_findings(project):
    """``return`` statements inside daemon task generators."""
    yanal = yield_analysis(project)
    graph = yanal.graph
    findings = []
    for qualname in sorted(yanal.daemons):
        info = graph.functions.get(qualname)
        if info is None:
            continue
        for node in shallow_walk(info.node):
            if isinstance(node, ast.Return):
                findings.append(
                    (
                        info.module,
                        node,
                        "daemon task generator %s returns; a daemon "
                        "that finishes stops its background service "
                        "silently — loop forever, or spawn it as a "
                        "non-daemon task whose completion is joined"
                        % qualname,
                    )
                )
    return findings


# --- Contract-report helpers --------------------------------------------------


def site_summary(sites):
    """Deterministic one-cell summary of a function's own yield sites."""
    by_kind = {}
    for node, kind in sites:
        by_kind.setdefault(kind, []).append(node.lineno)
    parts = []
    for kind in sorted(by_kind):
        lines = sorted(set(by_kind[kind]))
        shown = ", ".join(str(line) for line in lines[:4])
        if len(lines) > 4:
            shown += ", +%d more" % (len(lines) - 4)
        parts.append(
            "%s (line%s %s)"
            % (kind, "s" if len(lines) > 1 else "", shown)
        )
    return "; ".join(parts)


def root_yield_points(project):
    """Per schedulable root: the may-yield functions in its reach.

    Returns ``{root name: (own, transitive)}`` where ``own`` is a
    sorted list of ``(qualname, summary)`` for reached functions with
    their own suspension sites and ``transitive`` is the sorted list of
    reached functions that may suspend only through callees.
    """
    yanal = yield_analysis(project)
    inventory = build_inventory(project)
    out = {}
    for root in model.schedulable_roots():
        reach = inventory.reach.get(root.name)
        if reach is None:
            continue
        own = []
        transitive = []
        for qualname in reach:
            if qualname in yanal.own_sites:
                own.append(
                    (qualname, site_summary(yanal.own_sites[qualname]))
                )
            elif qualname in yanal.may_yield:
                transitive.append(qualname)
        out[root.name] = (own, transitive)
    return out
