"""The shared-mutable-state inventory.

Walks the call graph from every task root (all categories) and records,
per owner class (family root) and attribute — or per module global —
which roots read it and which write it.  The inventory is keyed on
*written* state only: an attribute no root ever writes cannot be an
interleaving hazard.

Access classification (pure ``ast``):

* ``self.attr`` — owner is the base-most class of the method's family,
  so ``TimeSSD`` and ``BaseSSD`` accesses of the same attribute group
  together (they share one instance).
* ``self.field.attr`` — typed through the call graph's attribute-type
  inference (``self.field = Cls(...)`` anywhere in the family).
* ``<name>.attr`` — parameter/local receivers resolve through the
  :data:`~repro.analysis.concurrency.model.STATE_OWNERS` naming
  conventions (recovery's ``ssd``, the GC's ``self._ssd`` alias).
* module globals — an assignment to a name declared ``global``.

A write is a Store/Del/AugAssign of the attribute, a subscript store
whose base is the attribute, or a builtin container mutator
(``.append``/``.update``/...) called on it.  ``__init__`` bodies are
skipped: construction initializes private state before the object is
published to any other task.

Every written (owner, attr) is joined against the declared
:data:`~repro.analysis.concurrency.model.POLICIES`; an attribute
written by two or more *schedulable* roots with no policy is the
``concurrency-unclassified-shared-state`` finding.  Exclusive roots
(recovery) never count toward that writer set.  Policies that match
nothing are themselves flagged (``concurrency-stale-policy``) so the
table cannot rot.
"""

import ast
from dataclasses import dataclass, field

from repro.analysis.callgraph import dotted
from repro.analysis.concurrency import model
from repro.analysis.concurrency.atomicity import _walk
from repro.analysis.effects import effect_analysis


@dataclass
class StateRecord:
    """One shared attribute: who reads it, who writes it, its policy."""

    owner: str
    attr: str
    readers: set = field(default_factory=set)  # root names
    writers: set = field(default_factory=set)
    #: root name -> (module, line) of the first write site seen
    first_write: dict = field(default_factory=dict)
    policy: object = None  # SharedStatePolicy or None


@dataclass
class Inventory:
    """The full inventory plus which declared policies were exercised."""

    records: list = field(default_factory=list)  # sorted StateRecords
    used_policies: set = field(default_factory=set)  # (owner, attr) patterns
    #: root name -> sorted list of reached qualnames (for the report)
    reach: dict = field(default_factory=dict)


def _family_root(graph, class_qualname):
    """The base-most in-project ancestor (instance-shape owner)."""
    return graph.mro(class_qualname)[-1]


def owner_of(graph, info, receiver):
    """Owner qualname for an attribute receiver expression, or None.

    The one receiver-resolution convention of the concurrency tier,
    shared by the inventory scan here and the staleness/lane tracking
    in :mod:`.yields`: ``self``/``cls`` resolve to the method's family
    root, ``self.field`` through the call graph's attribute typing, and
    bare parameter/local names through the
    :data:`~repro.analysis.concurrency.model.STATE_OWNERS` conventions.
    """
    if isinstance(receiver, ast.Name):
        if receiver.id in ("self", "cls") and info.is_method:
            return _family_root(graph, info.class_qualname)
        return model.STATE_OWNERS.get(receiver.id)
    chain = dotted(receiver)
    if chain and len(chain) == 2 and chain[0] == "self" and info.is_method:
        types = graph.attr_types_for(info.class_qualname, chain[1])
        if types:
            return _family_root(graph, sorted(types)[0])
        return model.STATE_OWNERS.get(chain[1])
    return None


class _AccessScan(ast.NodeVisitor):
    """Collect (owner, attr, is_write, line) accesses in one function."""

    def __init__(self, graph, info):
        self._graph = graph
        self._info = info
        self._globals = set()
        self.accesses = []  # (owner, attr, is_write, line)
        for node in ast.walk(info.node):
            if isinstance(node, ast.Global):
                self._globals.update(node.names)

    def _record(self, receiver, attr, is_write, line):
        owner = owner_of(self._graph, self._info, receiver)
        if owner is not None:
            self.accesses.append((owner, attr, is_write, line))

    # -- visitors --

    def visit_Attribute(self, node):
        is_write = isinstance(node.ctx, (ast.Store, ast.Del))
        self._record(node.value, node.attr, is_write, node.lineno)
        self.generic_visit(node)

    def visit_Subscript(self, node):
        # self._table[k] = v writes _table even though the inner
        # Attribute load context says "read".
        if isinstance(node.ctx, (ast.Store, ast.Del)) and isinstance(
            node.value, ast.Attribute
        ):
            self._record(
                node.value.value, node.value.attr, True, node.lineno
            )
        self.generic_visit(node)

    def visit_AugAssign(self, node):
        # Targets parse with Store ctx, but visit explicitly so the
        # read-modify-write counts as both a read and a write.
        target = node.target
        if isinstance(target, ast.Attribute):
            self._record(target.value, target.attr, True, node.lineno)
            self._record(target.value, target.attr, False, node.lineno)
        elif isinstance(target, ast.Subscript) and isinstance(
            target.value, ast.Attribute
        ):
            self._record(
                target.value.value, target.value.attr, True, node.lineno
            )
        self.generic_visit(node.value)

    def visit_Call(self, node):
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in model.MUTATING_METHOD_NAMES
            and isinstance(func.value, ast.Attribute)
        ):
            self._record(
                func.value.value, func.value.attr, True, func.value.lineno
            )
        self.generic_visit(node)

    def visit_Name(self, node):
        if node.id in self._globals and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            self.accesses.append(
                (self._info.module.module, node.id, True, node.lineno)
            )
        self.generic_visit(node)


def _scan_function(analysis, qualname):
    info = analysis.graph.functions.get(qualname)
    if info is None or info.node.name == "__init__":
        return []
    scan = _AccessScan(analysis.graph, info)
    scan.visit(info.node)
    return scan.accesses


def build_inventory(project):
    """Build (and cache) the shared-state inventory for a project."""

    def build():
        analysis = effect_analysis(project)
        graph = analysis.graph
        table = {}  # (owner, attr) -> StateRecord
        reach = {}
        for root in model.TASK_ROOTS:
            present = [q for q in root.qualnames if q in graph.functions]
            if not present:
                continue
            parent = _walk(graph, present)
            reach[root.name] = sorted(parent)
            for qualname in parent:
                for owner, attr, is_write, line in _scan_function(
                    analysis, qualname
                ):
                    record = table.setdefault(
                        (owner, attr), StateRecord(owner=owner, attr=attr)
                    )
                    if is_write:
                        record.writers.add(root.name)
                        record.first_write.setdefault(
                            root.name,
                            (graph.functions[qualname].module, line),
                        )
                    else:
                        record.readers.add(root.name)
        inventory = Inventory(reach=reach)
        for key in sorted(table):
            record = table[key]
            if not record.writers:
                continue  # never-written state cannot race
            record.policy = model.policy_for(record.owner, record.attr)
            if record.policy is not None:
                inventory.used_policies.add(
                    (record.policy.owner, record.policy.attr)
                )
            inventory.records.append(record)
        return inventory

    return project.cached("shared_state_inventory", build)


def stale_sensitive_keys(project):
    """(owner, attr) pairs whose derived locals can go stale at a yield.

    Exactly the written inventory minus the policies that declare
    interleaving-tolerance (:data:`model.STALE_TOLERANT_POLICIES`):
    turnstile state is consistent only *between* atomic sections, so a
    local captured from it before a suspension may describe a world
    that no longer exists after — which is what
    ``concurrency-stale-read-after-yield`` (:mod:`.yields`) checks.
    Unpolicied written state counts as sensitive too; the inventory
    rules decide separately whether it also needs a policy.
    """

    def build():
        keys = set()
        for record in build_inventory(project).records:
            policy = record.policy
            if (
                policy is not None
                and policy.policy in model.STALE_TOLERANT_POLICIES
            ):
                continue
            keys.add((record.owner, record.attr))
        return frozenset(keys)

    return project.cached("stale_sensitive_keys", build)


def _schedulable_names():
    return {root.name for root in model.schedulable_roots()}


def unclassified_findings(project):
    """(module, anchor, message) per unpolicied multi-writer attribute."""
    inventory = build_inventory(project)
    schedulable = _schedulable_names()
    findings = []
    for record in inventory.records:
        contending = sorted(record.writers & schedulable)
        if len(contending) < 2 or record.policy is not None:
            continue
        anchor_root = contending[0]
        module, line = record.first_write[anchor_root]
        findings.append(
            (
                module,
                _Line(line),
                "%s.%s is written by task roots %s with no declared "
                "interleaving policy; add a SharedStatePolicy (or make "
                "one task the owner) before the scheduler lands"
                % (record.owner, record.attr, ", ".join(contending)),
            )
        )
    return findings


def stale_policy_findings(project):
    """Policies that matched nothing: stale entries rot the contract."""
    inventory = build_inventory(project)
    module = _model_module(project)
    if module is None:
        return []
    declared = {(p.owner, p.attr): p for p in model.POLICIES}
    findings = []
    for key in sorted(declared):
        if key in inventory.used_policies:
            continue
        findings.append(
            (
                module,
                _Line(1),
                "policy (%s, %s) matches no inventoried shared state; "
                "delete it or fix its pattern" % key,
            )
        )
    return findings


def _model_module(project):
    return project.by_module.get("repro.analysis.concurrency.model")


class _Line:
    def __init__(self, line, col=1):
        self.line = line
        self.col = col
