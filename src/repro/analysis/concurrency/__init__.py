"""Concurrency-preflight tier: the machine-checked interleaving contract.

ROADMAP item 1 replaces the synchronous request path with a
discrete-event scheduler that interleaves foreground serving with
background GC, delta compression and bloom expiration.  Every FTL
invariant today is maintained by straight-line code nothing can
interrupt; this subpackage makes that assumption explicit *before* the
refactor introduces yield points:

:mod:`repro.analysis.concurrency.model`
    The task-root taxonomy (which functions become schedulable tasks),
    the shared-state owner conventions, and the declared interleaving
    policies.
:mod:`repro.analysis.concurrency.atomicity`
    Detection of ``@atomic_section`` annotations plus the atomicity
    rules: flash mutations must sit inside a section, sections must not
    re-enter a competing task root, must not yield, and must follow
    mutations-last discipline unless they declare ``restores_state``.
:mod:`repro.analysis.concurrency.shared_state`
    The shared-mutable-state inventory: which task roots read and write
    each ``self.attr``/module global, joined against the policy table.
:mod:`repro.analysis.concurrency.report`
    The deterministic ``docs/interleaving-contract.md`` emitter.

Everything here is pure ``ast`` over the PR 5 call graph and effect
analysis; analyzed code is never imported.
"""

from repro.analysis.concurrency.model import (
    SCHEDULABLE_CATEGORIES,
    TASK_ROOTS,
    TaskRoot,
)

__all__ = ["TASK_ROOTS", "TaskRoot", "SCHEDULABLE_CATEGORIES"]
