"""Task roots, state-owner conventions, and declared interleaving policies.

This module is the *declarative* half of the concurrency tier: plain
tables the passes in :mod:`atomicity` and :mod:`shared_state` interpret.
Changing what counts as a task, who owns a piece of state, or why a
shared attribute is safe happens here — not in analysis code.

Categories
----------

``foreground``
    Host-visible serve path.  Under the PR 7 scheduler each request is
    one task that may be suspended at yield points.
``background``
    Device-internal maintenance (GC, delta compression, retention/bloom
    expiration).  Runs interleaved with foreground tasks.
``interposed``
    Runs *inside* another task at a fixed interposition point (fault
    hooks fire within flash primitives).  Never scheduled on its own,
    so it cannot interleave — but it shares the task's state view.
``exclusive``
    Runs while nothing else does (crash recovery executes before any
    service resumes).  Appears in the inventory for completeness; its
    writes do not create interleaving hazards.

Only ``foreground`` and ``background`` roots are *schedulable*: those
are the tasks the atomicity rules defend against each other.
"""

from dataclasses import dataclass

#: Categories whose roots can be suspended/resumed by the PR 7 scheduler.
SCHEDULABLE_CATEGORIES = frozenset({"foreground", "background"})


@dataclass(frozen=True)
class TaskRoot:
    """One schedulable (or interposed/exclusive) task entry point."""

    name: str  # stable short name used in reports and policies
    category: str  # foreground | background | interposed | exclusive
    qualnames: tuple  # entry functions (virtual dispatch covers overrides)
    description: str


TASK_ROOTS = (
    TaskRoot(
        name="host-serve",
        category="foreground",
        qualnames=(
            "repro.ftl.ssd.BaseSSD.write",
            "repro.ftl.ssd.BaseSSD.read",
            "repro.ftl.ssd.BaseSSD.trim",
            "repro.ftl.ssd.BaseSSD.write_range",
            "repro.ftl.ssd.BaseSSD.read_range",
            "repro.ftl.ssd.BaseSSD.serve_write_at",
            "repro.ftl.ssd.BaseSSD.serve_trim_at",
            "repro.ftl.ssd.BaseSSD.serve_read_at",
            "repro.nvme.engine.AsyncNVMeEngine._slot_worker",
            "repro.timessd.ssd.TimeSSD.version_chain",
        ),
        description=(
            "host request service: one task per NVMe command; subclass "
            "overrides (TimeSSD, FlashGuardSSD) are reached by virtual "
            "dispatch from these base entries; the async engine's slot "
            "workers are the scheduled form of the same root"
        ),
    ),
    TaskRoot(
        name="background-gc",
        category="background",
        qualnames=(
            "repro.ftl.ssd.BaseSSD._background_collect",
            "repro.sched.tasks.background_gc_task",
        ),
        description=(
            "idle-window garbage collection: victim selection, valid-page "
            "migration, erase, release"
        ),
    ),
    TaskRoot(
        name="background-compression",
        category="background",
        qualnames=(
            "repro.timessd.ssd.TimeSSD._background_compress",
            "repro.sched.tasks.background_compress_task",
        ),
        description=(
            "TimeSSD delta compression of cold version chains during "
            "idle windows (paper §3.2)"
        ),
    ),
    TaskRoot(
        name="background-scrub",
        category="background",
        qualnames=(
            "repro.ftl.scrub.PatrolScrubber.run",
            "repro.sched.tasks.background_scrub_task",
        ),
        description=(
            "idle-window patrol scrubbing: ladder-reads sealed blocks "
            "oldest-programmed-first, refreshes at-risk pages before "
            "they exceed the ECC budget, retires grown-bad blocks and "
            "applies the degraded-mode heal policy"
        ),
    ),
    TaskRoot(
        name="retention-expiry",
        category="background",
        qualnames=(
            "repro.timessd.ssd.TimeSSD._shrink_retention",
            "repro.sched.tasks.retention_expiry_task",
        ),
        description=(
            "bloom/retention-window expiration: drops the oldest time "
            "segment and erases its delta blocks when GC overhead "
            "exceeds the paper's threshold"
        ),
    ),
    TaskRoot(
        name="fault-hooks",
        category="interposed",
        qualnames=(
            "repro.faults.hooks.FaultHooks.on_read",
            "repro.faults.hooks.FaultHooks.on_program",
            "repro.faults.hooks.FaultHooks.on_erase",
        ),
        description=(
            "fault injection: interposed at the flash pre-commit points "
            "inside whichever task issued the flash op"
        ),
    ),
    TaskRoot(
        name="recovery",
        category="exclusive",
        qualnames=(
            "repro.ftl.recovery.rebuild_from_flash",
            "repro.timessd.recovery.rebuild_from_flash",
        ),
        description=(
            "crash recovery: rebuilds volatile FTL state from flash "
            "before any host service resumes"
        ),
    ),
)


def roots_by_name():
    return {root.name: root for root in TASK_ROOTS}


def schedulable_roots():
    return tuple(
        root for root in TASK_ROOTS if root.category in SCHEDULABLE_CATEGORIES
    )


#: Wait-instruction constructors by kind.  A task generator yields an
#: instance of one of these classes; the loop interprets it.  The kind
#: names are what the yield analysis (:mod:`.yields`) dispatches on:
#: ``acquire``/``release`` drive the lane-discipline rules, everything
#: is a suspension point for the staleness rule.
WAIT_INSTRUCTION_KINDS = {
    "repro.sched.core.Delay": "delay",
    "repro.sched.core.At": "at",
    "repro.sched.core.Acquire": "acquire",
    "repro.sched.core.Release": "release",
    "repro.sched.core.Join": "join",
}

#: Functions that suspend the running task under the event-loop
#: scheduler (``repro.sched``).  Constructing a wait instruction is the
#: yield: tasks build one and ``yield`` it to the loop, so any call to
#: these constructors inside an ``@atomic_section`` means the section
#: can be suspended mid-flight — which ``concurrency-yield-in-atomic``
#: rejects.  Both the class and ``__init__`` qualnames appear because
#: the call graph records class-constructor edges in either form.
#: ``await`` expressions are always treated as yields regardless.
SCHEDULER_YIELD_QUALNAMES = frozenset(
    qualname
    for base in WAIT_INSTRUCTION_KINDS
    for qualname in (base, base + ".__init__")
)


def wait_kind(qualname):
    """The wait-instruction kind a constructor qualname builds, or None."""
    if qualname.endswith(".__init__"):
        qualname = qualname[: -len(".__init__")]
    return WAIT_INSTRUCTION_KINDS.get(qualname)


#: Spawn entry points: a generator passed (as first argument) to one of
#: these becomes a scheduled task, which is how the yield analysis
#: identifies *task* generators as opposed to plain data generators
#: (``scan_oob`` yields pages to its consumer, not instructions to the
#: loop — the task-generator protocol rules must not apply to it).
SPAWN_QUALNAMES = frozenset({"repro.sched.core.EventLoop.spawn"})

#: Policies whose derived values stay meaningful across a suspension.
#: ``monotonic`` state tolerates any interleaving by declaration and
#: ``owner-task`` state has exactly one writer at a time, so a local
#: captured from either cannot go stale in a way that matters.  A local
#: captured from ``turnstile`` state (or from written shared state with
#: no declared policy at all) *can*: another task may run a whole
#: atomic section between the capture and the use.
STALE_TOLERANT_POLICIES = frozenset({"monotonic", "owner-task"})


#: Receiver-name conventions for cross-object state access.  When a
#: function reads/writes ``<name>.attr`` and ``<name>`` is a parameter
#: or local alias the call graph cannot type, these conventions assign
#: the owner (recovery writes ``ssd._retained_per_block[...]``; the GC
#: aliases ``ssd = self._ssd``).  Owners are class-family roots.
STATE_OWNERS = {
    "ssd": "repro.ftl.ssd.BaseSSD",
    "_ssd": "repro.ftl.ssd.BaseSSD",
    "bm": "repro.ftl.block_manager.BlockManager",
    "block_manager": "repro.ftl.block_manager.BlockManager",
    "device": "repro.flash.device.FlashDevice",
    "mapping": "repro.ftl.mapping.AddressMappingTable",
    "index": "repro.timessd.index.TimeTravelIndex",
    "blooms": "repro.timessd.bloom.TimeSegmentedBlooms",
    "deltas": "repro.timessd.delta.DeltaManager",
}


#: Builtin container mutators: a call ``<owner>.attr.<one of these>(...)``
#: is a write to ``attr`` even though the call itself resolves to no
#: project function.
MUTATING_METHOD_NAMES = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "reverse",
        "setdefault",
        "sort",
        "update",
    }
)


@dataclass(frozen=True)
class SharedStatePolicy:
    """Why one shared attribute is safe under task interleaving.

    ``owner``/``attr`` may end with ``*`` to match a prefix.  ``policy``
    is one of:

    ``turnstile``
        Multi-step transitions are confined to ``@atomic_section``
        regions; between sections every observer sees a consistent
        value.  The PR 7 scheduler must not yield inside sections, which
        rule ``concurrency-yield-in-atomic`` enforces.
    ``monotonic``
        Counter/gauge-style state: any interleaving of increments is
        acceptable; no invariant couples it to other state.
    ``owner-task``
        Written by several roots today but logically owned by one task
        at a time (the write sites are mutually exclusive by mode or by
        the idle-window admission gate).
    """

    owner: str
    attr: str
    policy: str
    why: str

    def matches(self, owner, attr):
        return _glob(self.owner, owner) and _glob(self.attr, attr)


def _glob(pattern, value):
    if pattern.endswith("*"):
        return value.startswith(pattern[:-1])
    return value == pattern


POLICIES = (
    SharedStatePolicy(
        owner="repro.ftl.ssd.BaseSSD",
        attr="*",
        policy="turnstile",
        why=(
            "FTL top-level state (mapping/back-pointer bookkeeping, GC "
            "and degraded-mode flags, retention census) transitions only "
            "inside atomic sections or single assignments; foreground "
            "and background roots hand off at the idle-window gate"
        ),
    ),
    SharedStatePolicy(
        owner="repro.ftl.block_manager.BlockManager",
        attr="*",
        policy="turnstile",
        why=(
            "allocation pools, validity bitmaps and stream state mutate "
            "only inside atomic allocate/release/seal sequences reached "
            "from the roots' atomic sections"
        ),
    ),
    SharedStatePolicy(
        owner="repro.ftl.mapping.AddressMappingTable",
        attr="*",
        policy="turnstile",
        why=(
            "L2P entries and the demand-cache simulation update in one "
            "atomic step per translation (update/invalidate are atomic "
            "sections)"
        ),
    ),
    SharedStatePolicy(
        owner="repro.ftl.wear_leveling.WearLeveler",
        attr="*",
        policy="turnstile",
        why=(
            "wear accounting advances only from on_erase, which runs "
            "inside the erase-holding atomic sections of GC/expiry"
        ),
    ),
    SharedStatePolicy(
        owner="repro.timessd.index.TimeTravelIndex",
        attr="*",
        policy="turnstile",
        why=(
            "IMT/PRT chains are rewritten only by atomic compress/clear "
            "sections; readers between sections always see a complete "
            "chain"
        ),
    ),
    SharedStatePolicy(
        owner="repro.timessd.delta.DeltaCodec",
        attr="*",
        policy="monotonic",
        why=(
            "the compression memo is a pure cache: compress() is a pure "
            "function of its two byte-string arguments, so any "
            "interleaving of lookups, insertions and LRU evictions "
            "(plus the hit/miss counters) yields the same results — a "
            "lost update costs one recomputation, never a wrong answer"
        ),
    ),
    SharedStatePolicy(
        owner="repro.timessd.delta.DeltaManager",
        attr="*",
        policy="turnstile",
        why=(
            "delta buffers flush and segments drop inside atomic "
            "sections; partially-built segments are never visible at a "
            "section boundary"
        ),
    ),
    SharedStatePolicy(
        owner="repro.timessd.bloom.TimeSegmentedBlooms",
        attr="*",
        policy="turnstile",
        why=(
            "bloom segments roll and record inside single calls; "
            "expiration drops whole segments in the retention-expiry "
            "root's atomic section"
        ),
    ),
    SharedStatePolicy(
        owner="repro.timessd.retention.GCOverheadEstimator",
        attr="*",
        policy="monotonic",
        why=(
            "op counters feeding the overshoot ratio; the ratio is a "
            "heuristic and tolerates any interleaving of increments"
        ),
    ),
    SharedStatePolicy(
        owner="repro.timessd.retention.RetentionManager",
        attr="*",
        policy="turnstile",
        why=(
            "the retention window shrinks one segment at a time inside "
            "the retention-expiry atomic section"
        ),
    ),
    SharedStatePolicy(
        owner="repro.flash.device.FlashDevice",
        attr="*",
        policy="turnstile",
        why=(
            "media state mutates only through program/erase primitives, "
            "each of which is one indivisible flash command under the "
            "PR 7 scheduler (commands never span a yield)"
        ),
    ),
    SharedStatePolicy(
        owner="repro.flash.*",
        attr="*",
        policy="turnstile",
        why=(
            "block/page state below FlashDevice shares the primitive-"
            "command granularity of the media model"
        ),
    ),
    SharedStatePolicy(
        owner="repro.nvme.queues.QueuePair",
        attr="*",
        policy="turnstile",
        why=(
            "ring push/fetch/post are each one statement between yields; "
            "slot workers of one pair interleave only at their own "
            "wait instructions, never mid-ring-operation"
        ),
    ),
    SharedStatePolicy(
        owner="repro.nvme.engine.AsyncNVMeEngine",
        attr="*",
        policy="turnstile",
        why=(
            "engine counters (inflight, high-water mark) mutate in "
            "single statements; every slot worker re-reads them after "
            "its wait instead of caching across a yield"
        ),
    ),
    SharedStatePolicy(
        owner="repro.obs.*",
        attr="*",
        policy="monotonic",
        why=(
            "metrics, gauges and trace buffers are observability-only: "
            "no simulator invariant reads them back"
        ),
    ),
    SharedStatePolicy(
        owner="repro.faults.*",
        attr="*",
        policy="owner-task",
        why=(
            "fault-plan bookkeeping mutates only inside the interposed "
            "hooks, which run within whichever task issued the flash op"
        ),
    ),
    SharedStatePolicy(
        owner="repro.ftl.scrub.PatrolScrubber",
        attr="*",
        policy="monotonic",
        why=(
            "the at-risk queue and patrol cursor are advisory scrub "
            "inputs: a read on any root may enqueue, the scrub run "
            "drains, and every entry is re-validated against firmware "
            "state before a refresh — a stale or interleaved entry "
            "costs at most one wasted patrol read"
        ),
    ),
    SharedStatePolicy(
        owner="repro.timessd.gc.TimeSSDGarbageCollector",
        attr="*",
        policy="turnstile",
        why=(
            "collector scratch state lives within reclaim/compress "
            "atomic sections"
        ),
    ),
    SharedStatePolicy(
        owner="repro.common.stats.*",
        attr="*",
        policy="monotonic",
        why="latency/mean accumulators tolerate interleaved appends",
    ),
    SharedStatePolicy(
        owner="repro.common.idle.IdlePredictor",
        attr="*",
        policy="monotonic",
        why=(
            "inter-arrival history is a heuristic input to idle-window "
            "sizing; stale or interleaved updates only mis-size windows"
        ),
    ),
    SharedStatePolicy(
        owner="repro.common.clock.SimClock",
        attr="*",
        policy="turnstile",
        why=(
            "simulated time advances monotonically in single "
            "assignments; under PR 7 the event loop owns the clock"
        ),
    ),
)


def policy_for(owner, attr):
    """First matching policy, or None (declaration order wins)."""
    for policy in POLICIES:
        if policy.matches(owner, attr):
            return policy
    return None
