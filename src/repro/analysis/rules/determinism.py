"""Determinism rules: no wall clocks, no shared global RNG.

A trace replay must give bit-identical results run-to-run; the two ways
code silently breaks that are reading host time (``time.time()``,
``datetime.now()``) and drawing from implicitly-seeded randomness (the
``random`` module's global functions, or ``random.Random()`` with no
seed).  Simulated time comes from :class:`repro.common.clock.SimClock`;
randomness comes from an explicit ``random.Random(seed)`` threaded
through constructors.
"""

import ast

from repro.analysis.core import LintRule, register

#: ``time`` attributes that read or depend on the host clock.
_TIME_ATTRS = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
        "sleep",
        "localtime",
        "gmtime",
    }
)

#: ``datetime``/``date`` constructors that read the host clock.
_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})


def _dotted(node):
    """``a.b.c`` attribute chain as a list of names, or ``None``."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return None


def _import_aliases(tree, target_module):
    """Local names bound to ``target_module`` by plain imports."""
    aliases = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == target_module:
                    aliases.add(alias.asname or target_module)
    return aliases


def _from_imports(tree, target_module):
    """Local name -> original name, for ``from target_module import ...``."""
    bound = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == target_module:
            for alias in node.names:
                bound[alias.asname or alias.name] = alias.name
    return bound


@register
class WallClockRule(LintRule):
    rule_id = "determinism-wallclock"
    pack = "determinism"
    description = (
        "forbid wall-clock reads (time.time, datetime.now, ...); "
        "simulated time comes from repro.common.clock.SimClock"
    )

    def check(self, module, project):
        tree = module.tree
        time_aliases = _import_aliases(tree, "time")
        dt_module_aliases = _import_aliases(tree, "datetime")
        from_time = {
            local: orig
            for local, orig in _from_imports(tree, "time").items()
            if orig in _TIME_ATTRS
        }
        from_datetime = _from_imports(tree, "datetime")
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _dotted(node.func)
            if not chain:
                continue
            message = self._forbidden(
                chain, time_aliases, dt_module_aliases, from_time, from_datetime
            )
            if message:
                yield self.violation(module, node, message)

    def _forbidden(
        self, chain, time_aliases, dt_module_aliases, from_time, from_datetime
    ):
        head, tail = chain[0], chain[1:]
        suggestion = "; use the shared SimClock (repro.common.clock)"
        # time.time(), time.sleep(), t.monotonic() with `import time as t`
        if head in time_aliases and len(tail) == 1 and tail[0] in _TIME_ATTRS:
            return "wall-clock call time.%s()%s" % (tail[0], suggestion)
        # from time import time / monotonic ...
        if head in from_time and not tail:
            return "wall-clock call time.%s()%s" % (from_time[head], suggestion)
        # datetime.datetime.now(), datetime.date.today()
        if (
            head in dt_module_aliases
            and len(tail) == 2
            and tail[1] in _DATETIME_ATTRS
        ):
            return "wall-clock call datetime.%s.%s()%s" % (
                tail[0],
                tail[1],
                suggestion,
            )
        # from datetime import datetime; datetime.now()
        if (
            head in from_datetime
            and len(tail) == 1
            and tail[0] in _DATETIME_ATTRS
        ):
            return "wall-clock call %s.%s()%s" % (
                from_datetime[head],
                tail[0],
                suggestion,
            )
        return None


@register
class GlobalRandomRule(LintRule):
    rule_id = "determinism-global-random"
    pack = "determinism"
    description = (
        "forbid the random module's global functions (random.random, "
        "random.randrange, ...); draw from an explicit random.Random(seed)"
    )

    def check(self, module, project):
        tree = module.tree
        aliases = _import_aliases(tree, "random")
        for node in ast.walk(tree):
            # `from random import randrange` smuggles the global RNG in
            # under a bare name: flag the import itself.
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                for alias in node.names:
                    if alias.name != "Random":
                        yield self.violation(
                            module,
                            node,
                            "from random import %s binds the shared global "
                            "RNG; import random and use an explicit "
                            "random.Random(seed)" % alias.name,
                        )
                continue
            if not isinstance(node, ast.Call):
                continue
            chain = _dotted(node.func)
            if (
                chain
                and len(chain) == 2
                and chain[0] in aliases
                and chain[1] != "Random"
                and chain[1] != "SystemRandom"
            ):
                yield self.violation(
                    module,
                    node,
                    "random.%s() draws from the shared global RNG; use an "
                    "explicit random.Random(seed) instance" % chain[1],
                )


@register
class UnseededRngRule(LintRule):
    rule_id = "determinism-unseeded-rng"
    pack = "determinism"
    description = (
        "random.Random() with no seed argument is nondeterministic; "
        "pass an explicit seed"
    )

    def check(self, module, project):
        tree = module.tree
        aliases = _import_aliases(tree, "random")
        from_random = _from_imports(tree, "random")
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _dotted(node.func)
            if not chain:
                continue
            is_ctor = (
                len(chain) == 2 and chain[0] in aliases and chain[1] == "Random"
            ) or (
                len(chain) == 1 and from_random.get(chain[0]) == "Random"
            )
            if is_ctor and not node.args and not node.keywords:
                yield self.violation(
                    module,
                    node,
                    "random.Random() without a seed is seeded from the OS; "
                    "pass an explicit per-workload seed",
                )


@register
class LatencyStatsRngRule(LintRule):
    rule_id = "determinism-latencystats-rng"
    pack = "determinism"
    description = (
        "LatencyStats() must receive a seeded random.Random for reservoir "
        "sampling; a missing rng makes percentiles nondeterministic"
    )

    def check(self, module, project):
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _dotted(node.func)
            if not chain or chain[-1] != "LatencyStats":
                continue
            has_rng = bool(node.args) or any(
                kw.arg == "rng" or kw.arg is None for kw in node.keywords
            )
            if not has_rng:
                yield self.violation(
                    module,
                    node,
                    "LatencyStats() without an rng argument; pass a seeded "
                    "random.Random so reservoir eviction is deterministic",
                )
