"""Deep rule: the metric catalog must match the code (both ways).

docs/OBSERVABILITY.md carries the metric catalog — the named contract
every experiment table and identity check is written against.  The
catalog is prose, so nothing stops it rotting: a counter renamed in
code keeps its old row, a new gauge ships uncataloged.  This rule
cross-checks the two surfaces:

* every ``metrics.counter("...")`` / ``gauge`` / ``histogram`` name in
  the analyzed tree must match a catalog row, and
* every catalog row must still be referenced somewhere in the tree.

Dynamic name segments meet their placeholders structurally: an emission
``"nvme.op.%s" % opcode`` normalizes to the template ``nvme.op.*``,
catalog placeholders (``<OPCODE>``, a trailing ``.N``) normalize the
same way, and templates compare segment-wise.  A name built from an
expression the analysis cannot read (no literal skeleton at all) is
skipped, never guessed at.

The catalog is discovered by walking up from the analyzed files to the
nearest ``docs/OBSERVABILITY.md``; no catalog means no findings (the
rule only ever judges a tree that carries the contract).  Because the
findings depend on a file outside the analyzed tree, the result cache
folds the catalog content into its signature
(:func:`catalog_fingerprint`) so editing only the docs still
invalidates cached results.
"""

import ast
import hashlib
import os
import re

from repro.analysis.callgraph import dotted
from repro.analysis.core import LintRule, register

#: Registry factory methods whose first argument names a metric.
METRIC_FACTORIES = frozenset({"counter", "gauge", "histogram"})

CATALOG_RELPATH = os.path.join("docs", "OBSERVABILITY.md")
CATALOG_HEADING = "## Metric catalog"

#: Module that owns the registry — direction-2 findings anchor here,
#: because a rotted row's fix is in code-or-docs, not at any one site.
REGISTRY_MODULE = "repro.obs.metrics"


def _template(name):
    """Normalize a metric name to a segment template (``*`` wildcards).

    Handles catalog placeholders (``<OPCODE>`` anywhere, a bare ``N``
    segment) and emission skeletons (``%s``/``%d`` from ``%``-format).
    """
    out = re.sub(r"<[^<>]+>", "*", name)
    out = re.sub(r"%[sdxr]", "*", out)
    parts = [
        "*" if part == "N" else part for part in out.split(".")
    ]
    out = ".".join(parts)
    # Collapse wildcard runs inside one segment: `*_*` etc. stay as-is;
    # only adjacent duplicates collapse so equality is canonical.
    return re.sub(r"\*+", "*", out)


def _covers(template, name):
    """True when a wildcard template matches a concrete-or-equal name."""
    if template == name:
        return True
    if "*" not in template:
        return False
    pattern = "^%s$" % re.escape(template).replace(
        "\\*", "[A-Za-z0-9_]+"
    )
    return re.match(pattern, name) is not None


def _literal_skeleton(node):
    """The literal template of a metric-name expression, or None."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return _template(node.value)
    if (
        isinstance(node, ast.BinOp)
        and isinstance(node.op, ast.Mod)
        and isinstance(node.left, ast.Constant)
        and isinstance(node.left.value, str)
    ):
        return _template(node.left.value)
    if isinstance(node, ast.JoinedStr):
        parts = []
        for value in node.values:
            if isinstance(value, ast.Constant):
                parts.append(str(value.value))
            else:
                parts.append("*")
        return _template("".join(parts))
    return None


def emitted_templates(module):
    """(template, node) per readable metric reference in one module."""
    if module.tree is None:
        return
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call) or not node.args:
            continue
        func = node.func
        if (
            not isinstance(func, ast.Attribute)
            or func.attr not in METRIC_FACTORIES
        ):
            continue
        chain = dotted(func.value)
        if chain is None or "metrics" not in chain:
            continue
        template = _literal_skeleton(node.args[0])
        if template is not None:
            yield template, node


def parse_catalog(text):
    """(name, line) per backticked name in the catalog table."""
    names = []
    in_catalog = False
    for lineno, line in enumerate(text.splitlines(), 1):
        stripped = line.strip()
        if stripped.startswith("## "):
            in_catalog = stripped == CATALOG_HEADING
            continue
        if not in_catalog or not stripped.startswith("|"):
            continue
        cells = [cell.strip() for cell in stripped.strip("|").split("|")]
        if not cells or set(cells[0]) <= {"-", " "}:
            continue
        for match in re.finditer(r"`([^`]+)`", cells[0]):
            names.append((match.group(1), lineno))
    return names


def find_catalog(start):
    """Nearest ``docs/OBSERVABILITY.md`` at or above ``start``."""
    directory = os.path.abspath(start)
    if not os.path.isdir(directory):
        directory = os.path.dirname(directory)
    while True:
        candidate = os.path.join(directory, CATALOG_RELPATH)
        if os.path.isfile(candidate):
            return candidate
        parent = os.path.dirname(directory)
        if parent == directory:
            return None
        directory = parent


def catalog_fingerprint(paths):
    """Content hash of the catalog the analyzed paths resolve to.

    Folded into the result-cache signature so a docs-only edit still
    invalidates cached ``obs-uncataloged-metric`` results.
    """
    digest = hashlib.sha256()
    seen = set()
    for path in sorted(os.fspath(p) for p in paths):
        catalog = find_catalog(path)
        if catalog is None or catalog in seen:
            continue
        seen.add(catalog)
        with open(catalog, "rb") as handle:
            digest.update(handle.read())
    if not seen:
        return "no-catalog"
    return digest.hexdigest()[:16]


class _Line:
    def __init__(self, line, col=1):
        self.line = line
        self.col = col


@register
class UncatalogedMetricRule(LintRule):
    rule_id = "obs-uncataloged-metric"
    pack = "obs"
    deep = True
    description = (
        "every emitted metric name must have a catalog row in "
        "docs/OBSERVABILITY.md, and every catalog row must still be "
        "referenced in code"
    )

    def check(self, module, project):
        findings = project.cached(
            "obs_catalog_findings", lambda: self._evaluate(project)
        )
        for found_module, anchor, message in findings:
            if found_module is module:
                yield self.violation(module, anchor, message)

    def _evaluate(self, project):
        modules = [m for m in project.modules if m.tree is not None]
        if not modules:
            return []
        catalog_path = find_catalog(sorted(m.path for m in modules)[0])
        if catalog_path is None:
            return []
        with open(catalog_path, "r", encoding="utf-8") as handle:
            rows = parse_catalog(handle.read())
        catalog = [(_template(name), name, line) for name, line in rows]
        emitted = []
        for module in modules:
            for template, node in emitted_templates(module):
                emitted.append((template, module, node))

        findings = []
        catalog_templates = [entry[0] for entry in catalog]
        for template, module, node in emitted:
            if any(_covers(c, template) for c in catalog_templates):
                continue
            findings.append(
                (
                    module,
                    node,
                    "metric `%s` is not in the docs/OBSERVABILITY.md "
                    "catalog; add a row (or rename to a cataloged "
                    "name)" % template,
                )
            )

        registry = project.by_module.get(REGISTRY_MODULE)
        if registry is not None:
            emitted_templates_all = {entry[0] for entry in emitted}
            for template, name, line in catalog:
                if any(
                    _covers(e, template) or _covers(template, e)
                    for e in emitted_templates_all
                ):
                    continue
                findings.append(
                    (
                        registry,
                        _Line(1),
                        "catalog row `%s` (docs/OBSERVABILITY.md line "
                        "%d) matches no metric referenced in the "
                        "analyzed tree; delete the row or restore the "
                        "metric" % (name, line),
                    )
                )
        return findings
