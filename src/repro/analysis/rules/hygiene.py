"""Hygiene rules: the small sins that turn into silent fidelity bugs.

* mutable default arguments alias state across every call — in a
  simulator that means state leaking between supposedly-independent
  experiment runs;
* bare ``except:`` swallows the typed error taxonomy in
  :mod:`repro.common.errors` (and ``KeyboardInterrupt``);
* ``print()`` in a library module corrupts experiment table output —
  results go through return values or the stats helpers (the CLI and
  the lint runner are the terminal surface, and are exempt);
* arithmetic mixing ``*_us`` with ``*_ms`` (or bytes with KiB) operands
  is how unit bugs slip past review — all simulated time is integer
  microseconds, all sizes are bytes.
"""

import ast

from repro.analysis.core import LintRule, register

#: Modules whose job is terminal output.
PRINT_EXEMPT_MODULES = frozenset(
    {
        "repro.cli",
        "repro.__main__",
        "repro.analysis.runner",
        "repro.analysis.__main__",
    }
)

#: Identifier suffix -> canonical unit.  Time units are distinct from
#: one another and from size units; multiplying is how you convert, so
#: only +/-/comparisons are checked.
UNIT_SUFFIXES = {
    "_ns": "ns",
    "_us": "us",
    "_ms": "ms",
    "_bytes": "bytes",
    "_kib": "KiB",
    "_mib": "MiB",
    "_gib": "GiB",
}

_MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray"})


@register
class MutableDefaultRule(LintRule):
    rule_id = "hygiene-mutable-default"
    pack = "hygiene"
    description = "mutable default argument ([], {}, set()) aliases state across calls"

    def check(self, module, project):
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._mutable(default):
                    yield self.violation(
                        module,
                        default,
                        "mutable default argument in %s(); default to None "
                        "and construct inside the body" % node.name,
                    )

    @staticmethod
    def _mutable(node):
        if isinstance(node, (ast.List, ast.Dict, ast.Set)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _MUTABLE_CALLS
            and not node.args
            and not node.keywords
        )


@register
class BareExceptRule(LintRule):
    rule_id = "hygiene-bare-except"
    pack = "hygiene"
    description = "bare except swallows KeyboardInterrupt and the typed error taxonomy"

    def check(self, module, project):
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.violation(
                    module,
                    node,
                    "bare except:; catch a repro.common.errors type (or at "
                    "least Exception)",
                )


@register
class PrintRule(LintRule):
    rule_id = "hygiene-print"
    pack = "hygiene"
    description = "print() in a library module; return values or use stats helpers"

    def check(self, module, project):
        if module.module in PRINT_EXEMPT_MODULES:
            return
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield self.violation(
                    module,
                    node,
                    "print() in a library module; return the value (only the "
                    "CLI surface prints)",
                )


@register
class UnitMixRule(LintRule):
    rule_id = "hygiene-unit-mix"
    pack = "hygiene"
    description = (
        "adding/comparing operands with different unit suffixes "
        "(us vs ms, bytes vs KiB)"
    )

    def check(self, module, project):
        for node in ast.walk(module.tree):
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                pairs = [(node.left, node.right)]
            elif isinstance(node, ast.Compare):
                operands = [node.left] + list(node.comparators)
                pairs = list(zip(operands, operands[1:]))
            else:
                continue
            for left, right in pairs:
                lunit = self._unit_of(left)
                runit = self._unit_of(right)
                if lunit and runit and lunit != runit:
                    yield self.violation(
                        module,
                        node,
                        "mixed units: %s (%s) combined with %s (%s); convert "
                        "explicitly (see repro.common.units)"
                        % (self._name_of(left), lunit, self._name_of(right), runit),
                    )

    @staticmethod
    def _name_of(node):
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute):
            return node.attr
        return "<expr>"

    @classmethod
    def _unit_of(cls, node):
        name = cls._name_of(node).lower()
        for suffix, unit in UNIT_SUFFIXES.items():
            if name.endswith(suffix):
                return unit
        return None
