"""Deep rules: call-graph hygiene and the effect contract table.

These rules need the whole-program call graph, so they carry
``deep = True`` and only run under ``--deep`` (or when selected
explicitly).  Each contract in :data:`repro.analysis.contracts.CONTRACTS`
is materialised as one lint rule, so contract ids work with
``--select``, suppressions and every reporter, and adding a contract to
the table requires no rule code.

All whole-program work is computed once per run (cached on the
project); each module's ``check`` then yields only the violations
anchored in that module, which keeps the per-line suppression
machinery working unchanged.
"""

from repro.analysis import contracts as contract_table
from repro.analysis.core import LintRule, register
from repro.analysis.effects import effect_analysis
from repro.analysis.imports import subpackage


def _chain_text(chain):
    return " -> ".join(part.rsplit(".", 2)[-1] for part in chain) or chain


class _Anchor:
    """A (line, col) pair usable by ``LintRule.violation``."""

    def __init__(self, line, col=1):
        self.line = line
        self.col = col


def _def_anchor(analysis, qualname):
    info = analysis.graph.functions.get(qualname)
    if info is None:
        return _Anchor(1)
    return _Anchor(info.node.lineno, info.node.col_offset + 1)


def _is_private_name(qualname):
    short = qualname.rsplit(".", 1)[-1]
    return short.startswith("_") and not short.startswith("__")


def _definition_root(graph, candidates):
    """Collapse one call's candidate set to its base-most definition.

    Virtual dispatch yields every override as a candidate; when all of
    them sit in one class family the call is *to the base definition*
    and should be judged (and reported) once, there.  Candidates from
    unrelated families are a genuinely dynamic call — return None and
    leave it to the unresolved report.
    """
    if len(candidates) == 1:
        return candidates[0]
    infos = [graph.functions.get(qual) for qual in candidates]
    if any(info is None or info.class_qualname is None for info in infos):
        return None
    for info in infos:
        if all(
            info.class_qualname in graph.mro(other.class_qualname)
            for other in infos
        ):
            return info.qualname
    return None


@register
class PrivateCrossPackageCallRule(LintRule):
    rule_id = "callgraph-private-cross-package"
    pack = "callgraph"
    deep = True
    description = (
        "a _private function/method may only be called from its own "
        "repro subpackage (self/super dispatch within a class family "
        "is exempt)"
    )

    def check(self, module, project):
        if module.module is None or module.tree is None:
            return
        analysis = effect_analysis(project)
        graph = analysis.graph
        caller_pkg = subpackage(module.module)
        if caller_pkg is None:
            return
        seen = set()
        for caller in sorted(graph.calls):
            info = graph.functions.get(caller)
            if info is None or info.module is not module:
                continue
            caller_family = (
                set(graph.family(info.class_qualname))
                if info.class_qualname
                else set()
            )
            for node, targets in graph.calls[caller]:
                private = [t for t in targets if _is_private_name(t)]
                if not private:
                    continue
                # self/super dispatch: a candidate inside the caller's own
                # class family makes this an intra-family private call.
                if any(
                    (lambda t_info: t_info is not None
                     and t_info.class_qualname in caller_family)(
                        graph.functions.get(target)
                    )
                    for target in private
                ):
                    continue
                root = _definition_root(graph, private)
                if root is None:
                    continue  # multi-family dynamic call: unresolved report
                callee_pkg = subpackage(root)
                if callee_pkg is None or callee_pkg == caller_pkg:
                    continue
                key = (node.lineno, node.col_offset, root)
                if key in seen:
                    continue
                seen.add(key)
                yield self.violation(
                    module,
                    node,
                    "%s calls private %s across the %s -> %s package "
                    "boundary; use (or add) a public API"
                    % (caller, root, caller_pkg, callee_pkg),
                )


class _ContractRule(LintRule):
    """Base: findings computed once per run, emitted per module."""

    deep = True
    contract = None

    def check(self, module, project):
        analysis = effect_analysis(project)
        findings = project.cached(
            ("contract_findings", self.rule_id),
            lambda: list(self._evaluate(analysis)),
        )
        for found_module, anchor, message in findings:
            if found_module is module:
                yield self.violation(module, anchor, message)

    def _evaluate(self, analysis):
        raise NotImplementedError

    def _anchored(self, analysis, qualname, message):
        info = analysis.graph.functions.get(qualname)
        if info is None:
            return None
        return (info.module, _def_anchor(analysis, qualname), message)


class _ReachContractRule(_ContractRule):
    def _evaluate(self, analysis):
        contract = self.contract
        roots = []
        for root in contract.roots:
            if root.endswith("."):
                roots.extend(
                    qual
                    for qual in sorted(analysis.graph.functions)
                    if qual.startswith(root)
                )
            else:
                roots.append(root)
        waived = contract.waived_qualnames()
        for root in roots:
            paths = analysis.find_effect_paths(
                root, contract.effect, waived
            )
            for chain, site in paths:
                message = (
                    "%s: %s reaches %r via %s (intrinsic at %s:%d)"
                    % (
                        contract.description,
                        root,
                        contract.effect,
                        _chain_text(chain),
                        site[0] if site else "?",
                        site[1] if site else 0,
                    )
                )
                anchored = self._anchored(analysis, root, message)
                if anchored is not None:
                    yield anchored


class _CallerContractRule(_ContractRule):
    def _evaluate(self, analysis):
        contract = self.contract
        allowed = set(contract.allowed_callers)
        for callee in contract.callees:
            callers = analysis.callers_of(callee, confident_only=True)
            for caller, (line, col) in sorted(callers.items()):
                if caller in allowed:
                    continue
                info = analysis.graph.functions.get(caller)
                if info is None:
                    continue
                yield (
                    info.module,
                    _Anchor(line, col),
                    "%s: %s may not call %s (allowed: %s)"
                    % (
                        contract.description,
                        caller,
                        callee,
                        ", ".join(contract.allowed_callers),
                    ),
                )


class _RaiseContractRule(_ContractRule):
    def _evaluate(self, analysis):
        contract = self.contract
        allowed = contract.allowed
        for qualname in sorted(analysis.effects):
            if not qualname.startswith(contract.scope):
                continue
            for atom in sorted(analysis.effects_of(qualname)):
                raised = _atom_exception(atom)
                if raised is None:
                    continue
                if raised != "*" and any(
                    analysis.hierarchy.is_caught_by(raised, {allow})
                    for allow in allowed
                ):
                    continue
                message = (
                    "%s: %s may raise %s (allowed: %s)"
                    % (
                        contract.description,
                        qualname,
                        raised,
                        ", ".join(allowed),
                    )
                )
                anchored = self._anchored(analysis, qualname, message)
                if anchored is not None:
                    yield anchored


def _atom_exception(atom):
    from repro.analysis.effects import atom_exception

    return atom_exception(atom)


_SHAPES = {
    contract_table.ReachContract: _ReachContractRule,
    contract_table.CallerContract: _CallerContractRule,
    contract_table.RaiseContract: _RaiseContractRule,
}

for _contract in contract_table.CONTRACTS:
    register(
        type(
            "Contract_%s" % _contract.rule_id.replace("-", "_"),
            (_SHAPES[type(_contract)],),
            {
                "rule_id": _contract.rule_id,
                "pack": "effects",
                "description": _contract.description,
                "contract": _contract,
            },
        )
    )
