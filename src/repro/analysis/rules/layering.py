"""Layering rules: the DESIGN.md import order and the FTL flash monopoly.

The flash device model must not know about FTLs; substrates must not
reach into the firmware; and nothing outside the two FTL packages may
program or erase raw flash pages (the erase-before-write and OOB
back-pointer invariants live entirely inside the FTL — a stray
``device.program_page`` elsewhere bypasses both).
"""

import ast

from repro.analysis.core import LintRule, register
from repro.analysis.imports import (
    LAYER_OF,
    LAYER_ORDER,
    cyclic_packages,
    module_imports,
    package_graph,
    subpackage,
)

#: Only these subpackages may call the raw flash program/erase APIs.
FLASH_WRITERS = frozenset({"flash", "ftl", "timessd"})

#: The only subpackages repro.obs may import: the observer must sit
#: below everything it observes (the observed layers hold a Scope and
#: push into it; obs never reaches up).
OBS_ALLOWED_IMPORTS = frozenset({"common", "obs"})

#: Flash device / block mutation entry points (see repro.flash.device).
FLASH_API_ATTRS = frozenset({"program_page", "erase_block"})


@register
class LayerOrderRule(LintRule):
    rule_id = "layering-order"
    pack = "layering"
    description = (
        "repro packages may import their own layer or below "
        "(common -> flash -> ftl/timessd -> fs/nvme/timekits -> apps)"
    )

    def check(self, module, project):
        src = subpackage(module.module)
        if src is None:  # not a repro subpackage (or the exempt root)
            return
        if src not in LAYER_OF:
            yield self.violation(
                module,
                module.tree,
                "package repro.%s has no layer assignment; add it to "
                "repro.analysis.imports.LAYER_ORDER" % src,
            )
            return
        for imported in module_imports(module):
            dst = subpackage(imported.module)
            if dst is None or dst == src:
                continue
            if dst not in LAYER_OF:
                yield self.violation(
                    module,
                    imported,
                    "import of repro.%s, which has no layer assignment in "
                    "repro.analysis.imports.LAYER_ORDER" % dst,
                )
                continue
            if LAYER_OF[dst] > LAYER_OF[src]:
                yield self.violation(
                    module,
                    imported,
                    "upward import: repro.%s (layer %d: %s) must not import "
                    "repro.%s (layer %d: %s)"
                    % (
                        src,
                        LAYER_OF[src],
                        "/".join(LAYER_ORDER[LAYER_OF[src]]),
                        dst,
                        LAYER_OF[dst],
                        "/".join(LAYER_ORDER[LAYER_OF[dst]]),
                    ),
                )

@register
class FlashApiRule(LintRule):
    rule_id = "layering-flash-api"
    pack = "layering"
    description = (
        "only flash/ftl/timessd may call raw flash program/erase APIs "
        "(program_page, erase_block)"
    )

    def check(self, module, project):
        src = subpackage(module.module)
        if src is None or src in FLASH_WRITERS:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in FLASH_API_ATTRS
            ):
                yield self.violation(
                    module,
                    node,
                    "%s() is an FTL-only flash API; repro.%s must go through "
                    "an SSD's read/write/trim interface" % (func.attr, src),
                )


@register
class ObsIsolationRule(LintRule):
    rule_id = "layering-obs-isolated"
    pack = "layering"
    description = (
        "repro.obs may import only repro.common (and itself): the "
        "observability substrate must never know about flash/FTL layers"
    )

    def check(self, module, project):
        if subpackage(module.module) != "obs":
            return
        for imported in module_imports(module):
            dst = subpackage(imported.module)
            if dst is not None and dst not in OBS_ALLOWED_IMPORTS:
                yield self.violation(
                    module,
                    imported,
                    "repro.obs must stay below every observed layer; it "
                    "cannot import repro.%s — the observed code pushes "
                    "metrics into a Scope instead" % dst,
                )


@register
class ImportCycleRule(LintRule):
    rule_id = "layering-cycle"
    pack = "layering"
    description = "repro subpackages must not form import cycles"

    def check(self, module, project):
        src = subpackage(module.module)
        if src is None:
            return
        cyclic = cyclic_packages(project)
        if src not in cyclic:
            return
        graph = package_graph(project)
        for imported in module_imports(module):
            dst = subpackage(imported.module)
            if (
                dst is not None
                and dst != src
                and dst in cyclic
                and dst in graph.get(src, ())
                and src in _reachable(graph, dst)
            ):
                yield self.violation(
                    module,
                    imported,
                    "import of repro.%s completes a package cycle "
                    "(%s)" % (dst, " <-> ".join(sorted(cyclic & {src, dst}))),
                )
                break


def _reachable(graph, start):
    seen = {start}
    frontier = [start]
    while frontier:
        node = frontier.pop()
        for succ in graph.get(node, ()):
            if succ not in seen:
                seen.add(succ)
                frontier.append(succ)
    return seen
