"""Deep rules: the concurrency tier (interleaving contract).

Each rule wraps one engine from :mod:`repro.analysis.concurrency`.
Findings are computed once per run (cached on the project) and emitted
per module, so suppressions, SARIF and the cache behave exactly like
every other deep pack.
"""

from repro.analysis.concurrency import atomicity, shared_state
from repro.analysis.core import LintRule, register
from repro.analysis.effects import effect_analysis


class _ConcurrencyRule(LintRule):
    """Base: one cached findings list, yielded per module."""

    pack = "concurrency"
    deep = True

    def check(self, module, project):
        findings = project.cached(
            ("concurrency_findings", self.rule_id),
            lambda: list(self._evaluate(project)),
        )
        for found_module, anchor, message in findings:
            if found_module is module:
                yield self.violation(module, anchor, message)

    def _evaluate(self, project):
        raise NotImplementedError


@register
class UnclassifiedSharedStateRule(_ConcurrencyRule):
    rule_id = "concurrency-unclassified-shared-state"
    description = (
        "an attribute written by two or more schedulable task roots "
        "must carry a declared interleaving policy"
    )

    def _evaluate(self, project):
        return shared_state.unclassified_findings(project)


@register
class StalePolicyRule(_ConcurrencyRule):
    rule_id = "concurrency-stale-policy"
    description = (
        "a declared SharedStatePolicy must match at least one "
        "inventoried attribute; stale entries rot the contract"
    )

    def _evaluate(self, project):
        return shared_state.stale_policy_findings(project)


@register
class UnannotatedFlashMutatorRule(_ConcurrencyRule):
    rule_id = "concurrency-unannotated-flash-mutator"
    description = (
        "every flash-mutating site reachable from a schedulable task "
        "root must sit inside an @atomic_section"
    )

    def _evaluate(self, project):
        analysis = effect_analysis(project)
        index = atomicity.atomic_index(project)
        return atomicity.unannotated_mutator_findings(analysis, index)


@register
class ReentrantAtomicRule(_ConcurrencyRule):
    rule_id = "concurrency-reentrant-atomic"
    description = (
        "no call out of an atomic section may reach a competing "
        "schedulable task root (re-entrancy)"
    )

    def _evaluate(self, project):
        analysis = effect_analysis(project)
        index = atomicity.atomic_index(project)
        return atomicity.reentrancy_findings(analysis, index)


@register
class YieldInAtomicRule(_ConcurrencyRule):
    rule_id = "concurrency-yield-in-atomic"
    description = (
        "await/scheduler-yield must not appear inside an atomic "
        "section or anything it calls"
    )

    def _evaluate(self, project):
        analysis = effect_analysis(project)
        index = atomicity.atomic_index(project)
        return atomicity.yield_findings(analysis, index)


@register
class RaiseAfterMutateRule(_ConcurrencyRule):
    rule_id = "concurrency-atomic-raise-after-mutate"
    description = (
        "an atomic section that can raise partway through must keep "
        "its mutations last or declare restores_state=True"
    )

    def _evaluate(self, project):
        analysis = effect_analysis(project)
        index = atomicity.atomic_index(project)
        return atomicity.raise_after_mutate_findings(analysis, index)


@register
class MalformedAtomicRule(_ConcurrencyRule):
    rule_id = "concurrency-malformed-atomic"
    description = (
        "@atomic_section must be called with a literal non-empty "
        "reason string (and a literal bool restores_state)"
    )

    def _evaluate(self, project):
        effect_analysis(project)  # builds the graph the index reads
        index = atomicity.atomic_index(project)
        return list(index.malformed)
