"""Deep rules: the concurrency tier (interleaving contract).

Each rule wraps one engine from :mod:`repro.analysis.concurrency`.
Findings are computed once per run (cached on the project) and emitted
per module, so suppressions, SARIF and the cache behave exactly like
every other deep pack.
"""

from repro.analysis.concurrency import atomicity, shared_state, yields
from repro.analysis.core import LintRule, register
from repro.analysis.effects import effect_analysis


class _ConcurrencyRule(LintRule):
    """Base: one cached findings list, yielded per module."""

    pack = "concurrency"
    deep = True

    def check(self, module, project):
        findings = project.cached(
            ("concurrency_findings", self.rule_id),
            lambda: list(self._evaluate(project)),
        )
        for found_module, anchor, message in findings:
            if found_module is module:
                yield self.violation(module, anchor, message)

    def _evaluate(self, project):
        raise NotImplementedError


@register
class UnclassifiedSharedStateRule(_ConcurrencyRule):
    rule_id = "concurrency-unclassified-shared-state"
    description = (
        "an attribute written by two or more schedulable task roots "
        "must carry a declared interleaving policy"
    )

    def _evaluate(self, project):
        return shared_state.unclassified_findings(project)


@register
class StalePolicyRule(_ConcurrencyRule):
    rule_id = "concurrency-stale-policy"
    description = (
        "a declared SharedStatePolicy must match at least one "
        "inventoried attribute; stale entries rot the contract"
    )

    def _evaluate(self, project):
        return shared_state.stale_policy_findings(project)


@register
class UnannotatedFlashMutatorRule(_ConcurrencyRule):
    rule_id = "concurrency-unannotated-flash-mutator"
    description = (
        "every flash-mutating site reachable from a schedulable task "
        "root must sit inside an @atomic_section"
    )

    def _evaluate(self, project):
        analysis = effect_analysis(project)
        index = atomicity.atomic_index(project)
        return atomicity.unannotated_mutator_findings(analysis, index)


@register
class ReentrantAtomicRule(_ConcurrencyRule):
    rule_id = "concurrency-reentrant-atomic"
    description = (
        "no call out of an atomic section may reach a competing "
        "schedulable task root (re-entrancy)"
    )

    def _evaluate(self, project):
        analysis = effect_analysis(project)
        index = atomicity.atomic_index(project)
        return atomicity.reentrancy_findings(analysis, index)


@register
class YieldInAtomicRule(_ConcurrencyRule):
    rule_id = "concurrency-yield-in-atomic"
    description = (
        "await/scheduler-yield must not appear inside an atomic "
        "section or anything it calls"
    )

    def _evaluate(self, project):
        analysis = effect_analysis(project)
        index = atomicity.atomic_index(project)
        task_generators = frozenset(
            yields.yield_analysis(project).task_generators
        )
        return atomicity.yield_findings(
            analysis, index, task_generators=task_generators
        )


@register
class RaiseAfterMutateRule(_ConcurrencyRule):
    rule_id = "concurrency-atomic-raise-after-mutate"
    description = (
        "an atomic section that can raise partway through must keep "
        "its mutations last or declare restores_state=True"
    )

    def _evaluate(self, project):
        analysis = effect_analysis(project)
        index = atomicity.atomic_index(project)
        return atomicity.raise_after_mutate_findings(analysis, index)


@register
class MalformedAtomicRule(_ConcurrencyRule):
    rule_id = "concurrency-malformed-atomic"
    description = (
        "@atomic_section must be called with a literal non-empty "
        "reason string (and a literal bool restores_state)"
    )

    def _evaluate(self, project):
        effect_analysis(project)  # builds the graph the index reads
        index = atomicity.atomic_index(project)
        return list(index.malformed)


@register
class StaleReadAfterYieldRule(_ConcurrencyRule):
    rule_id = "concurrency-stale-read-after-yield"
    description = (
        "a local derived from policy-classified shared state must be "
        "re-read after the task may have been suspended"
    )

    def _evaluate(self, project):
        return yields.stale_read_findings(project)


@register
class LaneLeakRule(_ConcurrencyRule):
    rule_id = "concurrency-lane-leak"
    description = (
        "every Acquire must be matched by a Release on every path out "
        "of the task generator, exception edges included"
    )

    def _evaluate(self, project):
        return yields.lane_leak_findings(project)


@register
class LaneDoubleAcquireRule(_ConcurrencyRule):
    rule_id = "concurrency-lane-double-acquire"
    description = (
        "re-acquiring a lane the task already holds deadlocks the "
        "task on itself (lanes are unit-capacity and non-reentrant)"
    )

    def _evaluate(self, project):
        return yields.lane_double_acquire_findings(project)


@register
class LaneOrderCycleRule(_ConcurrencyRule):
    rule_id = "concurrency-lane-order-cycle"
    description = (
        "the static holds-while-acquiring graph over lanes must be "
        "acyclic; a cycle is cross-task deadlock potential"
    )

    def _evaluate(self, project):
        return yields.lane_order_cycle_findings(project)


@register
class BadYieldValueRule(_ConcurrencyRule):
    rule_id = "concurrency-bad-yield-value"
    description = (
        "a task generator may only yield wait instructions "
        "(Delay/At/Acquire/Release/Join) or delegate to another task "
        "generator"
    )

    def _evaluate(self, project):
        return yields.bad_yield_findings(project)


@register
class ReturnInDaemonRule(_ConcurrencyRule):
    rule_id = "concurrency-return-in-daemon"
    description = (
        "a daemon task generator must not return; a finished daemon "
        "stops its background service silently"
    )

    def _evaluate(self, project):
        return yields.return_in_daemon_findings(project)
