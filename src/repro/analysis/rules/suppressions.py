"""The ``unused-suppression`` rule.

The class below exists so the id shows up in ``--list-rules`` and can
be ``--select``-ed; the actual detection lives in the driver
(:func:`repro.analysis.core._unused_suppressions`), which is the only
place that knows which suppressions filtered a violation during the
run.  The driver also refuses to let a blanket ``# almanac: ignore``
hide this rule — a stale waiver cannot waive its own staleness.
"""

from repro.analysis.core import (
    UNUSED_SUPPRESSION_RULE,
    LintRule,
    register,
)


@register
class UnusedSuppressionRule(LintRule):
    rule_id = UNUSED_SUPPRESSION_RULE
    pack = "hygiene"
    description = (
        "an '# almanac: ignore[...]' comment suppressed nothing this "
        "run; stale waivers must expire, not accumulate"
    )

    def check(self, module, project):
        return iter(())  # driver-implemented; see core._unused_suppressions
