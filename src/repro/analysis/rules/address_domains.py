"""Deep rules: the address-domain dataflow findings.

Three rule ids share one per-module flow-sensitive pass
(:mod:`repro.analysis.domains`); the pass result is cached on the
project so selecting all three costs one walk.
"""

from repro.analysis.core import LintRule, register
from repro.analysis.domains import domain_findings


class _DomainRule(LintRule):
    pack = "domains"
    deep = True

    def check(self, module, project):
        if module.tree is None:
            return
        for finding in domain_findings(module, project):
            if finding.rule_id == self.rule_id:
                yield self.violation(module, finding, finding.message)


@register
class CrossAssignRule(_DomainRule):
    rule_id = "domains-cross-assign"
    description = (
        "assignment stores a value from one address domain (LBA/PPA/"
        "block-id/t-us/bytes/pages) into a name seeded as another"
    )


@register
class CrossCompareRule(_DomainRule):
    rule_id = "domains-cross-compare"
    description = (
        "comparison or +/- arithmetic mixes two address domains"
    )


@register
class CrossArgRule(_DomainRule):
    rule_id = "domains-cross-arg"
    description = (
        "argument's address domain contradicts the callee parameter's "
        "seeded domain"
    )
