"""Built-in rule packs.  Importing this package registers every rule."""

from repro.analysis.rules import (  # noqa: F401  (import-for-effect)
    address_domains,
    concurrency,
    determinism,
    hygiene,
    layering,
    observability,
    suppressions,
    whole_program,
)
