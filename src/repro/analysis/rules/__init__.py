"""Built-in rule packs.  Importing this package registers every rule."""

from repro.analysis.rules import determinism, hygiene, layering  # noqa: F401
