"""Lint framework core: rules, registry, suppressions, and the driver.

A :class:`SourceModule` is one parsed file (source text, AST, dotted
module name, per-line suppressions).  A :class:`Project` is every module
of one run plus shared caches (the import graph, package SCCs).  Rules
subclass :class:`LintRule`, register themselves with :func:`register`,
and yield :class:`Violation` objects from ``check(module, project)``.

Suppression syntax, checked per physical line::

    t0 = time.time()          # almanac: ignore[determinism-wallclock]
    legacy_shim()             # almanac: ignore          (all rules)
    a_us + b_ms               # almanac: ignore[hygiene-unit-mix, other-id]

The driver never imports the code under analysis — everything is pure
``ast``, so linting a broken tree cannot execute it.
"""

import ast
import os
import re
from dataclasses import dataclass

#: Pseudo rule id reported when a file does not parse at all.
PARSE_ERROR_RULE = "parse-error"

_SUPPRESS_RE = re.compile(
    r"#\s*almanac:\s*ignore(?:\[(?P<ids>[A-Za-z0-9_,\s-]*)\])?"
)


@dataclass(frozen=True)
class Violation:
    """One finding: where it is, which rule, and why it matters."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str

    def __str__(self):
        return "%s:%d:%d: [%s] %s" % (
            self.path,
            self.line,
            self.col,
            self.rule_id,
            self.message,
        )

    def sort_key(self):
        return (self.path, self.line, self.col, self.rule_id)


class LintRule:
    """Base class for one rule.  Subclasses set the class attributes and
    implement :meth:`check` as a generator of :class:`Violation`."""

    #: Stable kebab-case identifier, used in reports and suppressions.
    rule_id = None
    #: Rule family: ``determinism``, ``layering`` or ``hygiene``.
    pack = None
    #: One-line human description (shown by ``--list-rules``).
    description = ""

    def check(self, module, project):
        raise NotImplementedError

    def violation(self, module, node, message):
        """Build a :class:`Violation` anchored at an AST node (``lineno`` /
        ``col_offset``) or any object with 1-based ``line`` / ``col``."""
        line = getattr(node, "lineno", None)
        if line is not None:
            col = getattr(node, "col_offset", 0) + 1
        else:
            line = getattr(node, "line", 1)
            col = getattr(node, "col", 1)
        return Violation(
            rule_id=self.rule_id,
            path=module.path,
            line=line,
            col=col,
            message=message,
        )


_REGISTRY = {}


def register(cls):
    """Class decorator: instantiate the rule and add it to the registry."""
    rule = cls()
    if not rule.rule_id or not rule.pack:
        raise ValueError("rule %s must define rule_id and pack" % cls.__name__)
    if rule.rule_id in _REGISTRY:
        raise ValueError("duplicate rule id %r" % rule.rule_id)
    _REGISTRY[rule.rule_id] = rule
    return cls


def all_rules():
    """Every registered rule, sorted by (pack, rule_id)."""
    _load_rule_packs()
    return sorted(_REGISTRY.values(), key=lambda r: (r.pack, r.rule_id))


def rules_by_id(rule_ids):
    """Resolve a list of rule ids (or pack names) to rule instances."""
    _load_rule_packs()
    chosen = []
    for rule_id in rule_ids:
        if rule_id in _REGISTRY:
            chosen.append(_REGISTRY[rule_id])
            continue
        pack = [r for r in _REGISTRY.values() if r.pack == rule_id]
        if not pack:
            raise KeyError(
                "unknown rule or pack %r (try --list-rules)" % rule_id
            )
        chosen.extend(pack)
    return sorted(set(chosen), key=lambda r: r.rule_id)


def _load_rule_packs():
    # Importing the package registers every built-in rule exactly once.
    from repro.analysis import rules  # noqa: F401  (import-for-effect)


def _parse_suppressions(source):
    """Map 1-based line number -> set of suppressed rule ids ('*' = all)."""
    table = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        ids = match.group("ids")
        if ids is None:
            table[lineno] = {"*"}
        else:
            names = {part.strip() for part in ids.split(",") if part.strip()}
            table[lineno] = names or {"*"}
    return table


def _module_name_for(path):
    """Dotted module name, found by ascending through ``__init__.py`` dirs.

    Returns ``None`` for a file that is not part of a package — such a
    file is still linted, but layering (which needs a position in the
    ``repro`` tree) skips it.
    """
    path = os.path.abspath(path)
    directory, filename = os.path.split(path)
    parts = []
    base = os.path.splitext(filename)[0]
    if base != "__init__":
        parts.append(base)
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        directory, pkg = os.path.split(directory)
        parts.append(pkg)
        if not pkg:  # filesystem root; give up rather than loop
            break
    if not parts:
        return None
    if not os.path.isfile(
        os.path.join(os.path.dirname(path), "__init__.py")
    ):
        return None
    return ".".join(reversed(parts))


class SourceModule:
    """One parsed source file."""

    def __init__(self, path, source, display_path=None):
        self.path = display_path or path
        self.source = source
        self.module = _module_name_for(path)
        self.suppressions = _parse_suppressions(source)
        self.parse_error = None
        try:
            self.tree = ast.parse(source, filename=self.path)
        except SyntaxError as exc:
            self.tree = None
            self.parse_error = exc

    @classmethod
    def from_path(cls, path, display_path=None):
        with open(path, "r", encoding="utf-8") as handle:
            return cls(path, handle.read(), display_path=display_path)

    def is_suppressed(self, violation):
        names = self.suppressions.get(violation.line)
        if not names:
            return False
        return "*" in names or violation.rule_id in names


class Project:
    """All modules of one lint run plus shared per-run caches."""

    def __init__(self, modules):
        self.modules = list(modules)
        self.by_module = {
            m.module: m for m in self.modules if m.module is not None
        }
        self.cache = {}

    def cached(self, key, build):
        if key not in self.cache:
            self.cache[key] = build()
        return self.cache[key]


def collect_files(paths):
    """Expand files/directories into a sorted list of ``.py`` files.

    A path that does not exist raises ``FileNotFoundError`` — a typo'd
    CI invocation must fail loudly, not report a clean empty run.
    """
    found = []
    for path in paths:
        if os.path.isfile(path):
            found.append(path)
            continue
        if not os.path.isdir(path):
            raise FileNotFoundError("no such file or directory: %r" % path)
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d
                for d in dirnames
                if not d.startswith(".") and d != "__pycache__"
            )
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    found.append(os.path.join(dirpath, filename))
    return sorted(set(found))


def analyze_paths(paths, rules=None):
    """Lint ``paths`` (files or directories) and return sorted violations."""
    if rules is None:
        rules = all_rules()
    modules = [SourceModule.from_path(p) for p in collect_files(paths)]
    project = Project(modules)
    violations = []
    for module in modules:
        if module.parse_error is not None:
            exc = module.parse_error
            violations.append(
                Violation(
                    rule_id=PARSE_ERROR_RULE,
                    path=module.path,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1),
                    message="file does not parse: %s" % exc.msg,
                )
            )
            continue
        for rule in rules:
            for violation in rule.check(module, project):
                if not module.is_suppressed(violation):
                    violations.append(violation)
    return sorted(violations, key=Violation.sort_key)
