"""Lint framework core: rules, registry, suppressions, and the driver.

A :class:`SourceModule` is one parsed file (source text, AST, dotted
module name, per-line suppressions).  A :class:`Project` is every module
of one run plus shared caches (the import graph, package SCCs).  Rules
subclass :class:`LintRule`, register themselves with :func:`register`,
and yield :class:`Violation` objects from ``check(module, project)``.

Suppression syntax, checked per physical line::

    t0 = time.time()          # almanac: ignore[determinism-wallclock]
    legacy_shim()             # almanac: ignore          (all rules)
    a_us + b_ms               # almanac: ignore[hygiene-unit-mix, other-id]

The driver never imports the code under analysis — everything is pure
``ast``, so linting a broken tree cannot execute it.
"""

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass

#: Pseudo rule id reported when a file does not parse at all.
PARSE_ERROR_RULE = "parse-error"

#: Rule id for suppressions that no longer suppress anything.  The rule
#: class (rules/suppressions.py) exists for --list-rules/--select; the
#: detection itself lives in the driver, which knows which suppressions
#: filtered a violation.  Deliberately NOT filterable by a blanket
#: ignore comment — a stale waiver must not hide its own staleness.
UNUSED_SUPPRESSION_RULE = "unused-suppression"

_SUPPRESS_RE = re.compile(
    r"#\s*almanac:\s*ignore(?:\[(?P<ids>[A-Za-z0-9_,\s-]*)\])?"
)


@dataclass(frozen=True)
class Violation:
    """One finding: where it is, which rule, and why it matters."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str

    def __str__(self):
        return "%s:%d:%d: [%s] %s" % (
            self.path,
            self.line,
            self.col,
            self.rule_id,
            self.message,
        )

    def sort_key(self):
        return (self.path, self.line, self.col, self.rule_id)


class LintRule:
    """Base class for one rule.  Subclasses set the class attributes and
    implement :meth:`check` as a generator of :class:`Violation`."""

    #: Stable kebab-case identifier, used in reports and suppressions.
    rule_id = None
    #: Rule family: ``determinism``, ``layering``, ``hygiene``,
    #: ``callgraph``, ``effects`` or ``domains``.
    pack = None
    #: One-line human description (shown by ``--list-rules``).
    description = ""
    #: Deep rules need the whole-program call graph; they run only under
    #: ``--deep`` or when selected explicitly.
    deep = False

    def check(self, module, project):
        raise NotImplementedError

    def violation(self, module, node, message):
        """Build a :class:`Violation` anchored at an AST node (``lineno`` /
        ``col_offset``) or any object with 1-based ``line`` / ``col``."""
        line = getattr(node, "lineno", None)
        if line is not None:
            col = getattr(node, "col_offset", 0) + 1
        else:
            line = getattr(node, "line", 1)
            col = getattr(node, "col", 1)
        return Violation(
            rule_id=self.rule_id,
            path=module.path,
            line=line,
            col=col,
            message=message,
        )


_REGISTRY = {}


def register(cls):
    """Class decorator: instantiate the rule and add it to the registry."""
    rule = cls()
    if not rule.rule_id or not rule.pack:
        raise ValueError("rule %s must define rule_id and pack" % cls.__name__)
    if rule.rule_id in _REGISTRY:
        raise ValueError("duplicate rule id %r" % rule.rule_id)
    _REGISTRY[rule.rule_id] = rule
    return cls


def all_rules():
    """Every registered rule, sorted by (pack, rule_id)."""
    _load_rule_packs()
    return sorted(_REGISTRY.values(), key=lambda r: (r.pack, r.rule_id))


def default_rules():
    """The fast selection: every rule except the deep (whole-program)
    passes.  ``--deep`` or an explicit ``--select`` widens this."""
    return [rule for rule in all_rules() if not rule.deep]


def rules_by_id(rule_ids):
    """Resolve a list of rule ids (or pack names) to rule instances."""
    _load_rule_packs()
    chosen = []
    for rule_id in rule_ids:
        if rule_id in _REGISTRY:
            chosen.append(_REGISTRY[rule_id])
            continue
        pack = [r for r in _REGISTRY.values() if r.pack == rule_id]
        if not pack:
            raise KeyError(
                "unknown rule or pack %r (try --list-rules)" % rule_id
            )
        chosen.extend(pack)
    return sorted(set(chosen), key=lambda r: r.rule_id)


def _load_rule_packs():
    # Importing the package registers every built-in rule exactly once.
    from repro.analysis import rules  # noqa: F401  (import-for-effect)


def _parse_suppressions(source):
    """Map 1-based line number -> set of suppressed rule ids ('*' = all).

    Tokenized so only *real* comments count — a docstring or string
    literal that mentions ``# almanac: ignore[...]`` (this framework's
    own documentation does) must neither suppress anything nor be
    reported as an unused suppression.
    """
    table = {}
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(token.string)
            if match is None:
                continue
            ids = match.group("ids")
            if ids is None:
                table[token.start[0]] = {"*"}
            else:
                names = {
                    part.strip() for part in ids.split(",") if part.strip()
                }
                table[token.start[0]] = names or {"*"}
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass  # unparseable tail: keep what tokenized; rules won't run anyway
    return table


def _module_name_for(path):
    """Dotted module name, found by ascending through ``__init__.py`` dirs.

    Returns ``None`` for a file that is not part of a package — such a
    file is still linted, but layering (which needs a position in the
    ``repro`` tree) skips it.
    """
    path = os.path.abspath(path)
    directory, filename = os.path.split(path)
    parts = []
    base = os.path.splitext(filename)[0]
    if base != "__init__":
        parts.append(base)
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        directory, pkg = os.path.split(directory)
        parts.append(pkg)
        if not pkg:  # filesystem root; give up rather than loop
            break
    if not parts:
        return None
    if not os.path.isfile(
        os.path.join(os.path.dirname(path), "__init__.py")
    ):
        return None
    return ".".join(reversed(parts))


class SourceModule:
    """One parsed source file."""

    def __init__(self, path, source, display_path=None):
        self.path = display_path or path
        self.source = source
        self.module = _module_name_for(path)
        self.suppressions = _parse_suppressions(source)
        self.parse_error = None
        try:
            self.tree = ast.parse(source, filename=self.path)
        except SyntaxError as exc:
            self.tree = None
            self.parse_error = exc

    @classmethod
    def from_path(cls, path, display_path=None):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
        except (UnicodeDecodeError, ValueError) as exc:
            # A file the reader cannot decode is reported like a syntax
            # error, never crashed on: the runner must survive any input.
            module = cls(path, "", display_path=display_path)
            module.tree = None
            module.parse_error = _DecodeError(str(exc))
            return module
        return cls(path, source, display_path=display_path)

    def is_suppressed(self, violation):
        names = self.suppressions.get(violation.line)
        if not names:
            return False
        return "*" in names or violation.rule_id in names


class _DecodeError:
    """Stand-in for SyntaxError when a file is not valid UTF-8 text."""

    lineno = None
    offset = None

    def __init__(self, msg):
        self.msg = msg


class Project:
    """All modules of one lint run plus shared per-run caches."""

    def __init__(self, modules):
        self.modules = list(modules)
        self.by_module = {
            m.module: m for m in self.modules if m.module is not None
        }
        self.cache = {}

    def cached(self, key, build):
        if key not in self.cache:
            self.cache[key] = build()
        return self.cache[key]


def collect_files(paths):
    """Expand files/directories into a sorted list of ``.py`` files.

    A path that does not exist raises ``FileNotFoundError`` — a typo'd
    CI invocation must fail loudly, not report a clean empty run.
    """
    found = []
    for path in paths:
        if os.path.isfile(path):
            found.append(path)
            continue
        if not os.path.isdir(path):
            raise FileNotFoundError("no such file or directory: %r" % path)
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d
                for d in dirnames
                if not d.startswith(".") and d != "__pycache__"
            )
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    found.append(os.path.join(dirpath, filename))
    return sorted(set(found))


def _check_module(module, rules, project):
    """Run ``rules`` over one module.

    Returns ``(violations, used)`` where ``used`` is the set of
    ``(line, name)`` suppression entries that filtered a violation
    (``name`` is a rule id, or ``"*"`` for a blanket ignore).
    """
    violations = []
    used = set()
    for rule in rules:
        if rule.rule_id == UNUSED_SUPPRESSION_RULE:
            continue  # driver-implemented below
        for violation in rule.check(module, project):
            names = module.suppressions.get(violation.line)
            if names and violation.rule_id in names:
                used.add((violation.line, violation.rule_id))
            elif names and "*" in names:
                used.add((violation.line, "*"))
            else:
                violations.append(violation)
    return violations, used


def _unused_suppressions(modules, used_by_path, selected_ids):
    """Driver phase for the ``unused-suppression`` rule.

    An id-ful suppression is unused when its id was selected this run
    and filtered nothing on its line.  A blanket ignore is judged only
    when the full registry ran (a subset run cannot prove it stale).
    This check deliberately bypasses suppression filtering.
    """
    check_blanket = selected_ids >= {r.rule_id for r in all_rules()}
    violations = []
    for module in modules:
        if module.parse_error is not None:
            continue
        used = used_by_path.get(module.path, set())
        for line in sorted(module.suppressions):
            for name in sorted(module.suppressions[line]):
                if name == "*":
                    if check_blanket and (line, "*") not in used:
                        violations.append(
                            Violation(
                                rule_id=UNUSED_SUPPRESSION_RULE,
                                path=module.path,
                                line=line,
                                col=1,
                                message=(
                                    "blanket '# almanac: ignore' "
                                    "suppressed nothing; remove it"
                                ),
                            )
                        )
                elif (
                    name in selected_ids
                    and name != UNUSED_SUPPRESSION_RULE
                    and (line, name) not in used
                ):
                    violations.append(
                        Violation(
                            rule_id=UNUSED_SUPPRESSION_RULE,
                            path=module.path,
                            line=line,
                            col=1,
                            message=(
                                "suppression of %r no longer fires; "
                                "remove the stale waiver" % name
                            ),
                        )
                    )
    return violations


def analyze_paths(paths, rules=None, cache=None):
    """Lint ``paths`` (files or directories) and return sorted violations.

    ``rules=None`` means *every* registered rule, deep passes included.
    ``cache`` is an optional :class:`repro.analysis.cache.ResultCache`;
    shallow results are reused per unchanged file, deep results per
    unchanged tree.
    """
    if rules is None:
        rules = all_rules()
    selected_ids = {rule.rule_id for rule in rules}
    shallow = [rule for rule in rules if not rule.deep]
    deep = [rule for rule in rules if rule.deep]
    modules = [SourceModule.from_path(p) for p in collect_files(paths)]
    project = Project(modules)
    violations = []
    used_by_path = {}
    for module in modules:
        if module.parse_error is not None:
            exc = module.parse_error
            violations.append(
                Violation(
                    rule_id=PARSE_ERROR_RULE,
                    path=module.path,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1),
                    message="file does not parse: %s" % exc.msg,
                )
            )
            continue
        entry = cache.lookup_file(module) if cache is not None else None
        if entry is None:
            found, used = _check_module(module, shallow, project)
            if cache is not None:
                cache.store_file(module, found, used)
        else:
            found, used = entry
        violations.extend(found)
        if used:
            used_by_path.setdefault(module.path, set()).update(used)
    if deep:
        entry = cache.lookup_deep(modules) if cache is not None else None
        if entry is None:
            deep_violations = []
            deep_used = {}
            for module in modules:
                if module.parse_error is not None:
                    continue
                found, used = _check_module(module, deep, project)
                deep_violations.extend(found)
                if used:
                    deep_used[module.path] = used
            if cache is not None:
                cache.store_deep(modules, deep_violations, deep_used)
        else:
            deep_violations, deep_used = entry
        violations.extend(deep_violations)
        for path, used in deep_used.items():
            used_by_path.setdefault(path, set()).update(used)
    if UNUSED_SUPPRESSION_RULE in selected_ids:
        violations.extend(
            _unused_suppressions(modules, used_by_path, selected_ids)
        )
    if cache is not None:
        cache.save()
    return sorted(violations, key=Violation.sort_key)
