"""Effect inference over the whole-program call graph.

Every function gets a set of *effect atoms*:

``mutates-flash``
    Transitively reaches a flash-array mutation primitive
    (``Block.program``/``Block.erase`` or the ``FlashDevice``
    ``program_page``/``erase_block`` wrappers).
``advances-clock``
    Transitively reaches ``SimClock.advance``/``advance_to``.
``consumes-rng``
    Draws from a random generator (an ``rng``-named receiver calling a
    ``random.Random`` method).
``emits-metrics``
    Transitively calls into ``repro.obs``.
``raises:<qualname>``
    May let that exception escape.  ``raises:*`` means "something we
    could not resolve".  ``raise`` sites inside a ``try`` whose handlers
    catch the exception (per the project + builtin exception hierarchy)
    are absorbed, and so are exceptions propagating from a call guarded
    the same way.

Intrinsic atoms are assigned from each function's own AST, then
propagated bottom-up to a fixpoint.  The per-call-site try/except
context recorded during the scan filters ``raises:`` atoms as they
flow upward; all other atoms propagate unconditionally.
"""

import ast
import builtins

from repro.analysis.callgraph import (
    ClassInfo,
    build_call_graph,
    dotted,
)

MUTATES_FLASH = "mutates-flash"
ADVANCES_CLOCK = "advances-clock"
CONSUMES_RNG = "consumes-rng"
EMITS_METRICS = "emits-metrics"
RAISES_PREFIX = "raises:"
RAISES_ANY = "raises:*"

#: Functions that ARE a flash mutation (the leaves of the effect).
FLASH_MUTATOR_QUALNAMES = frozenset(
    {
        "repro.flash.block.Block.program",
        "repro.flash.block.Block.erase",
        "repro.flash.device.FlashDevice.program_page",
        "repro.flash.device.FlashDevice.erase_block",
    }
)

#: Attribute names that mean flash mutation even when the receiver could
#: not be typed (mirrors the layering pack's FLASH_API_ATTRS).
FLASH_MUTATOR_ATTRS = frozenset({"program_page", "erase_block"})

#: Functions that ARE a clock advance.
CLOCK_ADVANCE_QUALNAMES = frozenset(
    {
        "repro.common.clock.SimClock.advance",
        "repro.common.clock.SimClock.advance_to",
    }
)

#: ``random.Random`` draw methods: calling one of these on an
#: rng-looking receiver is an intrinsic ``consumes-rng``.
RNG_METHODS = frozenset(
    {
        "betavariate",
        "choice",
        "choices",
        "expovariate",
        "gauss",
        "getrandbits",
        "lognormvariate",
        "normalvariate",
        "paretovariate",
        "randbytes",
        "randint",
        "random",
        "randrange",
        "sample",
        "shuffle",
        "triangular",
        "uniform",
        "vonmisesvariate",
        "weibullvariate",
    }
)


def _rng_receiver(chain):
    """Does this dotted receiver chain look like a random generator?"""
    if not chain:
        return False
    tail = chain[-1].lower()
    return "rng" in tail or "random" in tail


def atom_exception(atom):
    """``raises:repro.common.errors.ReproError`` -> the qualname part."""
    if atom.startswith(RAISES_PREFIX):
        return atom[len(RAISES_PREFIX):]
    return None


class ExceptionHierarchy:
    """Subclass queries across project exception classes and builtins.

    Project classes are named by qualname (``repro.common.errors.X``);
    builtins by ``builtins.ValueError``.  ``"*"`` is the unknown
    exception: only ``Exception``/``BaseException`` handlers absorb it.
    """

    def __init__(self, graph):
        self._graph = graph

    def is_caught_by(self, raised, caught_set):
        for caught in caught_set:
            if self._matches(raised, caught):
                return True
        return False

    def _matches(self, raised, caught):
        if caught in ("builtins.Exception", "builtins.BaseException"):
            return True
        if raised == "*":
            return False  # only the blanket handlers above absorb it
        if raised == caught:
            return True
        if raised.startswith("builtins."):
            return self._builtin_subclass(
                raised.split(".", 1)[1], caught
            )
        # Project class: walk the in-project MRO, checking each level's
        # unresolved (builtin) base names as well.
        for qual in self._graph.mro(raised):
            if qual == caught:
                return True
            info = self._graph.classes.get(qual)
            if info is None:
                continue
            for base_chain in info.base_names:
                if not base_chain:
                    continue
                base_name = base_chain[-1]
                if self._builtin_subclass(base_name, caught):
                    return True
        return False

    def _builtin_subclass(self, name, caught):
        if not caught.startswith("builtins."):
            return False
        raised_cls = getattr(builtins, name, None)
        caught_cls = getattr(builtins, caught.split(".", 1)[1], None)
        if not (
            isinstance(raised_cls, type)
            and issubclass(raised_cls, BaseException)
            and isinstance(caught_cls, type)
            and issubclass(caught_cls, BaseException)
        ):
            return False
        return issubclass(raised_cls, caught_cls)


class EffectAnalysis:
    """Intrinsic effect scan + bottom-up fixpoint over the call graph."""

    def __init__(self, project):
        self.project = project
        self.graph = build_call_graph(project)
        self.hierarchy = ExceptionHierarchy(self.graph)
        #: qualname -> {atom: (path, line) of the introducing site}
        self.intrinsic = {}
        #: qualname -> [(callee qualname, frozenset absorbed, line)]
        self.call_records = {}
        #: qualname -> final atom set (fixpoint)
        self.effects = {}
        for func in self.graph.functions.values():
            self._scan_function(func)
        self._propagate()

    # --- Intrinsic scan ------------------------------------------------------

    def _scan_function(self, func):
        qual = func.qualname
        self.intrinsic[qual] = {}
        self.call_records[qual] = []
        self._targets_by_node = {
            id(node): targets
            for node, targets in self.graph.calls.get(qual, ())
        }
        if qual.startswith("repro.obs."):
            self._add_intrinsic(
                func, EMITS_METRICS, func.node, "defined in repro.obs"
            )
        for stmt in func.node.body:
            self._visit(func, stmt, guards=(), handler_types=None)

    def _add_intrinsic(self, func, atom, node, _why=""):
        table = self.intrinsic[func.qualname]
        if atom not in table:
            table[atom] = (func.module.path, node.lineno)

    def _visit(self, func, node, guards, handler_types):
        if isinstance(node, ast.Try):
            caught = frozenset(self._handler_types(func, node.handlers))
            for child in node.body:
                self._visit(func, child, guards + (caught,), handler_types)
            for handler in node.handlers:
                htypes = frozenset(self._handler_types(func, [handler]))
                for child in handler.body:
                    self._visit(func, child, guards, htypes or handler_types)
            for child in node.orelse:
                self._visit(func, child, guards, handler_types)
            for child in node.finalbody:
                self._visit(func, child, guards, handler_types)
            return
        if isinstance(node, ast.Raise):
            self._record_raise(func, node, guards, handler_types)
            # Still scan the constructor expression for calls.
            for child in ast.iter_child_nodes(node):
                self._visit(func, child, guards, handler_types)
            return
        if isinstance(node, ast.Call):
            self._record_call(func, node, guards)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node is not func.node:
                # A nested def's body runs when *called*; our graph
                # attributes its calls to the enclosing function, so keep
                # walking, but its try-context is its own: reset guards.
                guards = ()
                handler_types = None
        for child in ast.iter_child_nodes(node):
            self._visit(func, child, guards, handler_types)

    def _handler_types(self, func, handlers):
        """Exception qualnames caught by these ``except`` clauses."""
        out = []
        for handler in handlers:
            if handler.type is None:  # bare except catches everything
                out.append("builtins.BaseException")
                continue
            exprs = (
                handler.type.elts
                if isinstance(handler.type, ast.Tuple)
                else [handler.type]
            )
            for expr in exprs:
                out.append(self._exception_name(func, expr))
        return out

    def _exception_name(self, func, expr):
        """Best-effort qualname for an exception expression, or ``*``."""
        chain = dotted(expr)
        if chain is None:
            return "*"
        found = self.graph.resolve_symbol(func.module.module, chain)
        if isinstance(found, ClassInfo):
            return found.qualname
        if len(chain) == 1 and hasattr(builtins, chain[0]):
            return "builtins.%s" % chain[0]
        return "*"

    def _record_raise(self, func, node, guards, handler_types):
        if node.exc is None:
            # Bare re-raise: raises whatever the enclosing handler caught.
            raised_names = sorted(handler_types) if handler_types else ["*"]
        else:
            target = node.exc
            if isinstance(target, ast.Call):
                target = target.func
            raised_names = [self._exception_name(func, target)]
        for raised in raised_names:
            absorbed = any(
                self.hierarchy.is_caught_by(raised, caught)
                for caught in guards
            )
            if absorbed:
                continue
            atom = RAISES_PREFIX + raised
            self._add_intrinsic(func, atom, node)

    def _record_call(self, func, node, guards):
        qual = func.qualname
        targets = self._targets_by_node.get(id(node), ())
        flat_guards = frozenset().union(*guards) if guards else frozenset()
        for callee in targets:
            self.call_records[qual].append((callee, flat_guards, node.lineno))
        # Intrinsic atoms recognisable at the call expression itself.
        callee_expr = node.func
        if isinstance(callee_expr, ast.Attribute):
            attr = callee_expr.attr
            chain = dotted(callee_expr.value)
            if attr in RNG_METHODS and _rng_receiver(chain):
                self._add_intrinsic(func, CONSUMES_RNG, node)
            if attr in FLASH_MUTATOR_ATTRS and not targets:
                # Untypeable receiver, but the name is the flash API.
                self._add_intrinsic(func, MUTATES_FLASH, node)
        for callee in targets:
            if callee in FLASH_MUTATOR_QUALNAMES:
                self._add_intrinsic(func, MUTATES_FLASH, node)
            if callee in CLOCK_ADVANCE_QUALNAMES:
                self._add_intrinsic(func, ADVANCES_CLOCK, node)

    # --- Propagation ---------------------------------------------------------

    def _propagate(self):
        effects = {
            qual: set(table) for qual, table in self.intrinsic.items()
        }
        # Flash mutators and clock advancers carry their own atoms even
        # if their bodies mutate state directly rather than via a call.
        for qual in FLASH_MUTATOR_QUALNAMES:
            if qual in effects:
                effects[qual].add(MUTATES_FLASH)
        for qual in CLOCK_ADVANCE_QUALNAMES:
            if qual in effects:
                effects[qual].add(ADVANCES_CLOCK)
        changed = True
        while changed:
            changed = False
            for qual, records in self.call_records.items():
                mine = effects[qual]
                before = len(mine)
                for callee, absorbed, _line in records:
                    theirs = effects.get(callee)
                    if not theirs:
                        continue
                    for atom in theirs:
                        if atom in mine:
                            continue
                        raised = atom_exception(atom)
                        if raised is not None and self.hierarchy.is_caught_by(
                            raised, absorbed
                        ):
                            continue
                        mine.add(atom)
                if len(mine) != before:
                    changed = True
        self.effects = effects

    # --- Queries -------------------------------------------------------------

    def effects_of(self, qualname):
        return self.effects.get(qualname, set())

    def intrinsic_site(self, qualname, atom):
        """(path, line) where ``atom`` is introduced in ``qualname``."""
        return self.intrinsic.get(qualname, {}).get(atom)

    def find_effect_paths(self, root, atom, waived=()):
        """Shortest call chains from ``root`` to intrinsic ``atom`` sites.

        Traversal never descends through a qualname in ``waived``.
        Returns a list of (chain, site) where ``chain`` is the qualname
        path ``[root, ..., sink]`` and ``site`` is the (path, line) of
        the intrinsic effect.
        """
        waived = set(waived)
        parent = {root: None}
        order = [root]
        found = []
        seen_sinks = set()
        index = 0
        while index < len(order):
            current = order[index]
            index += 1
            if atom in self.intrinsic.get(current, {}):
                if current not in seen_sinks:
                    seen_sinks.add(current)
                    chain = []
                    walk = current
                    while walk is not None:
                        chain.append(walk)
                        walk = parent[walk]
                    found.append(
                        (
                            list(reversed(chain)),
                            self.intrinsic_site(current, atom),
                        )
                    )
                continue  # no need to look past the first sink on a path
            for callee in sorted(self.graph.edges.get(current, ())):
                if callee in parent or callee in waived:
                    continue
                parent[callee] = current
                order.append(callee)
        return found

    def callers_of(self, qualname, confident_only=False):
        """Caller qualname -> (line, col) of the first call site.

        With ``confident_only`` edges that exist solely via the
        dynamic-dispatch fallback are skipped (they are listed in the
        unresolved-call report instead).
        """
        out = {}
        for caller, sites in self.graph.edges.items():
            if qualname not in sites:
                continue
            if (
                confident_only
                and (caller, qualname) in self.graph.ambiguous_edges
            ):
                continue
            out[caller] = sites[qualname]
        return out


def effect_analysis(project):
    """Build (and cache on the project) the effect analysis."""
    return project.cached("effect_analysis", lambda: EffectAnalysis(project))
