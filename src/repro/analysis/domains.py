"""Flow-sensitive intraprocedural address-domain dataflow.

The paper's §3 bugs (OOB back-pointer, reverse index) are cross-domain
confusions: an LBA stored where a PPA belongs is still just an ``int``.
This pass assigns every integer-ish expression an *address domain* —

    LBA        logical page address          (``lpa``, ``slba``, ``Lba``)
    PPA        physical page address         (``ppa``, ``Ppa``)
    block-id   flat physical block address   (``pba``, ``BlockId``)
    t-us       simulated time                (``t``, ``now_us``, ``TimeUs``)
    bytes      byte count                    (``nbytes``, ``ByteCount``)
    pages      page count                    (``npages``, ``PageCount``)

— seeded from two sources: *names* (parameter/variable/attribute
naming conventions below) and *annotations* (the ``NewType`` aliases in
:mod:`repro.common.units`).  A name seed is authoritative: assigning a
PPA-domain value to a name spelled ``lpa`` is reported even though the
assignment would re-type a fresh variable.

Checked (one rule id each):

``domains-cross-assign``
    Assignment (incl. augmented, attributes, returns) whose value's
    domain contradicts the target's seeded domain.
``domains-cross-compare``
    Comparison or additive arithmetic (``+``/``-``) mixing two
    address/time domains (counts may offset anything, but ``bytes`` vs
    ``pages`` is itself a mix).
``domains-cross-arg``
    Argument whose domain contradicts the seeded domain of the resolved
    callee's parameter (confident call-graph edges only).

The analysis is flow-sensitive per function: branch arms are walked on
copies of the environment and joined (disagreement -> unknown).
Multiplicative/floor-division arithmetic deliberately launders domains
(``ppa // pages_per_block`` *is* the conversion idiom).
"""

import ast
from dataclasses import dataclass

from repro.analysis.callgraph import build_call_graph, dotted

LBA = "LBA"
PPA = "PPA"
BLOCK = "block-id"
TIME = "t-us"
BYTES = "bytes"
PAGES = "pages"

#: Counts may legally offset addresses/times; only count-vs-count
#: disagreement (bytes where pages belong) is a mix.
COUNTS = frozenset({BYTES, PAGES})

#: ``NewType`` alias -> domain (see ``repro.common.units``).
NEWTYPE_DOMAINS = {
    "Lba": LBA,
    "Ppa": PPA,
    "BlockId": BLOCK,
    "TimeUs": TIME,
    "ByteCount": BYTES,
    "PageCount": PAGES,
}

_EXACT_NAMES = {
    "lpa": LBA,
    "lba": LBA,
    "slba": LBA,
    "ppa": PPA,
    "back_pointer": PPA,
    "null_ppa": PPA,
    "pba": BLOCK,
    "block_id": BLOCK,
    "t": TIME,
    "t2": TIME,
    "ts": TIME,
    "now": TIME,
    "arrival": TIME,
    "deadline": TIME,
    "timestamp": TIME,
    "nbytes": BYTES,
    "npages": PAGES,
    "nlb": PAGES,
    "num_pages": PAGES,
    "page_count": PAGES,
}

_SUFFIXES = (
    ("_lpa", LBA),
    ("_lba", LBA),
    ("_ppa", PPA),
    ("_pba", BLOCK),
    ("_us", TIME),
    ("_ts", TIME),
    ("_bytes", BYTES),
    ("_npages", PAGES),
    ("_pages", PAGES),
)


def seed_for_name(name):
    """The domain a bare identifier claims by its spelling, or None."""
    lowered = name.lower().lstrip("_")
    if lowered in _EXACT_NAMES:
        return _EXACT_NAMES[lowered]
    padded = "_" + lowered
    for suffix, domain in _SUFFIXES:
        if padded.endswith(suffix):
            return domain
    return None


def annotation_domain(annotation):
    """Domain named by an annotation expression, or None."""
    if isinstance(annotation, ast.Name):
        return NEWTYPE_DOMAINS.get(annotation.id)
    if isinstance(annotation, ast.Attribute):
        return NEWTYPE_DOMAINS.get(annotation.attr)
    return None


def incompatible(a, b):
    if a is None or b is None or a == b:
        return False
    if a in COUNTS or b in COUNTS:
        return a in COUNTS and b in COUNTS
    return True


def combine(a, b):
    """Domain of ``a (+|-) b`` (assuming the pair is compatible)."""
    if a is None:
        return b
    if b is None:
        return a
    if a == b:
        return a
    if a in COUNTS:
        return b
    if b in COUNTS:
        return a
    return None


@dataclass(frozen=True)
class Finding:
    rule_id: str
    line: int
    col: int
    message: str


class _FunctionPass:
    """One function's flow-sensitive walk."""

    def __init__(self, owner, node, qualname):
        self.owner = owner  # DomainAnalysis
        self.node = node
        self.qualname = qualname
        self.annotated = {}  # local name -> annotation-seeded domain
        self.return_domain = annotation_domain(node.returns)
        self.targets_by_node = owner.call_targets(qualname)
        env = {}
        args = node.args
        for arg in (
            args.posonlyargs + args.args + args.kwonlyargs
        ):
            domain = annotation_domain(arg.annotation)
            if domain is not None:
                self.annotated[arg.arg] = domain
        self._exec_block(node.body, env)

    # -- statement level ------------------------------------------------------

    def _exec_block(self, stmts, env):
        for stmt in stmts:
            self._exec(stmt, env)

    def _exec(self, stmt, env):
        if isinstance(stmt, ast.Assign):
            self._do_assign(stmt, env)
        elif isinstance(stmt, ast.AnnAssign):
            domain = annotation_domain(stmt.annotation)
            if domain is not None and isinstance(stmt.target, ast.Name):
                self.annotated[stmt.target.id] = domain
            if stmt.value is not None:
                value_domain = self._eval(stmt.value, env)
                self._assign_target(
                    stmt.target, value_domain, env, stmt
                )
        elif isinstance(stmt, ast.AugAssign):
            target_domain = self._eval(stmt.target, env)
            value_domain = self._eval(stmt.value, env)
            if isinstance(stmt.op, (ast.Add, ast.Sub)) and incompatible(
                target_domain, value_domain
            ):
                self._report(
                    "domains-cross-assign",
                    stmt,
                    "augmented assignment mixes %s and %s"
                    % (target_domain, value_domain),
                )
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                domain = self._eval(stmt.value, env)
                if incompatible(self.return_domain, domain):
                    self._report(
                        "domains-cross-assign",
                        stmt,
                        "returns %s value from a function annotated %s"
                        % (domain, self.return_domain),
                    )
        elif isinstance(stmt, ast.If):
            self._eval(stmt.test, env)
            then_env = dict(env)
            else_env = dict(env)
            self._exec_block(stmt.body, then_env)
            self._exec_block(stmt.orelse, else_env)
            env.clear()
            env.update(_merge(then_env, else_env))
        elif isinstance(stmt, (ast.While,)):
            self._eval(stmt.test, env)
            body_env = dict(env)
            self._exec_block(stmt.body, body_env)
            self._exec_block(stmt.orelse, body_env)
            env.clear()
            env.update(_merge(env, body_env) or body_env)
        elif isinstance(stmt, ast.For):
            self._eval(stmt.iter, env)
            body_env = dict(env)
            self._assign_target(stmt.target, None, body_env, stmt)
            self._exec_block(stmt.body, body_env)
            self._exec_block(stmt.orelse, body_env)
            env.clear()
            env.update(_merge(env, body_env) or body_env)
        elif isinstance(stmt, ast.Try):
            body_env = dict(env)
            self._exec_block(stmt.body, body_env)
            envs = [body_env]
            for handler in stmt.handlers:
                handler_env = dict(env)
                self._exec_block(handler.body, handler_env)
                envs.append(handler_env)
            merged = envs[0]
            for other in envs[1:]:
                merged = _merge(merged, other)
            self._exec_block(stmt.orelse, merged)
            self._exec_block(stmt.finalbody, merged)
            env.clear()
            env.update(merged)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                self._eval(item.context_expr, env)
                if item.optional_vars is not None:
                    self._assign_target(item.optional_vars, None, env, stmt)
            self._exec_block(stmt.body, env)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.owner.check_function(stmt, qualname=None)
        elif isinstance(stmt, ast.ClassDef):
            pass  # nested classes: out of scope for this pass
        else:
            # Expr / Raise / Assert / Delete / Global / ...: evaluate any
            # embedded expressions for compare/arg checks.
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._eval(child, env)
                elif isinstance(child, ast.stmt):
                    self._exec(child, env)

    def _do_assign(self, stmt, env):
        # Element-wise when both sides are literal tuples of equal arity.
        if (
            len(stmt.targets) == 1
            and isinstance(stmt.targets[0], (ast.Tuple, ast.List))
            and isinstance(stmt.value, (ast.Tuple, ast.List))
            and len(stmt.targets[0].elts) == len(stmt.value.elts)
        ):
            for target, value in zip(
                stmt.targets[0].elts, stmt.value.elts
            ):
                domain = self._eval(value, env)
                self._assign_target(target, domain, env, value)
            return
        domain = self._eval(stmt.value, env)
        for target in stmt.targets:
            self._assign_target(target, domain, env, stmt)

    def _assign_target(self, target, domain, env, node):
        if isinstance(target, ast.Name):
            authority = self._name_authority(target.id)
            if incompatible(authority, domain):
                self._report(
                    "domains-cross-assign",
                    node,
                    "assigns %s value to %s name %r"
                    % (domain, authority, target.id),
                )
            env[target.id] = authority if authority is not None else domain
        elif isinstance(target, ast.Attribute):
            authority = seed_for_name(target.attr)
            if incompatible(authority, domain):
                self._report(
                    "domains-cross-assign",
                    node,
                    "assigns %s value to %s attribute %r"
                    % (domain, authority, target.attr),
                )
            self._eval(target.value, env)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._assign_target(element, None, env, node)
        elif isinstance(target, ast.Starred):
            self._assign_target(target.value, None, env, node)
        elif isinstance(target, ast.Subscript):
            self._eval(target.value, env)
            self._eval(target.slice, env)

    # -- expression level -----------------------------------------------------

    def _name_authority(self, name):
        if name in self.annotated:
            return self.annotated[name]
        return seed_for_name(name)

    def _eval(self, expr, env):
        if isinstance(expr, ast.Name):
            authority = self._name_authority(expr.id)
            if authority is not None:
                return authority
            return env.get(expr.id)
        if isinstance(expr, ast.Attribute):
            self._eval(expr.value, env)
            return seed_for_name(expr.attr)
        if isinstance(expr, ast.Constant):
            return None
        if isinstance(expr, ast.BinOp):
            left = self._eval(expr.left, env)
            right = self._eval(expr.right, env)
            if isinstance(expr.op, (ast.Add, ast.Sub)):
                if incompatible(left, right):
                    self._report(
                        "domains-cross-compare",
                        expr,
                        "arithmetic mixes %s and %s" % (left, right),
                    )
                    return None
                return combine(left, right)
            # *, //, %, ... legitimately convert between domains.
            return None
        if isinstance(expr, ast.Compare):
            left_domain = self._eval(expr.left, env)
            for comparator in expr.comparators:
                right_domain = self._eval(comparator, env)
                if incompatible(left_domain, right_domain):
                    self._report(
                        "domains-cross-compare",
                        expr,
                        "compares %s with %s"
                        % (left_domain, right_domain),
                    )
                left_domain = right_domain
            return None
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, env)
        if isinstance(expr, ast.BoolOp):
            for value in expr.values:
                self._eval(value, env)
            return None
        if isinstance(expr, ast.UnaryOp):
            return self._eval(expr.operand, env)
        if isinstance(expr, ast.IfExp):
            self._eval(expr.test, env)
            then_domain = self._eval(expr.body, env)
            else_domain = self._eval(expr.orelse, env)
            return then_domain if then_domain == else_domain else None
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            for element in expr.elts:
                self._eval(element, env)
            return None
        if isinstance(expr, ast.Dict):
            for key in expr.keys:
                if key is not None:
                    self._eval(key, env)
            for value in expr.values:
                self._eval(value, env)
            return None
        if isinstance(expr, ast.Subscript):
            self._eval(expr.value, env)
            self._eval(expr.slice, env)
            return None
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.DictComp,
                             ast.GeneratorExp)):
            inner = dict(env)
            for gen in expr.generators:
                self._eval(gen.iter, inner)
                self._assign_target(gen.target, None, inner, expr)
                for cond in gen.ifs:
                    self._eval(cond, inner)
            if isinstance(expr, ast.DictComp):
                self._eval(expr.key, inner)
                self._eval(expr.value, inner)
            else:
                self._eval(expr.elt, inner)
            return None
        if isinstance(expr, ast.Starred):
            return self._eval(expr.value, env)
        if isinstance(expr, ast.Lambda):
            return None  # params unknown; skip the body
        if isinstance(expr, ast.JoinedStr):
            for value in expr.values:
                self._eval(value, env)
            return None
        if isinstance(expr, ast.FormattedValue):
            self._eval(expr.value, env)
            return None
        return None

    def _eval_call(self, expr, env):
        arg_domains = [self._eval(arg, env) for arg in expr.args]
        keyword_domains = {}
        for keyword in expr.keywords:
            domain = self._eval(keyword.value, env)
            if keyword.arg is not None:
                keyword_domains[keyword.arg] = domain
        if isinstance(expr.func, ast.Attribute):
            self._eval(expr.func.value, env)
        self._check_args(expr, arg_domains, keyword_domains)
        return self._call_result_domain(expr)

    def _check_args(self, expr, arg_domains, keyword_domains):
        targets = self.targets_by_node.get(id(expr))
        if not targets:
            return
        has_starred = any(
            isinstance(arg, ast.Starred) for arg in expr.args
        )
        for target in targets:
            info = self.owner.function_info(target)
            if info is None:
                continue
            if self.owner.is_ambiguous_edge(self.qualname, target):
                continue
            params = info.param_names()
            seeds = self.owner.param_seeds(info)
            if info.is_method and params and params[0] in ("self", "cls"):
                params = params[1:]
            if not has_starred:
                for position, domain in enumerate(arg_domains):
                    if position >= len(params):
                        break
                    expected = seeds.get(params[position])
                    if incompatible(expected, domain):
                        self._report(
                            "domains-cross-arg",
                            expr.args[position],
                            "argument %d of %s() expects %s, got %s"
                            % (
                                position + 1,
                                target.rsplit(".", 1)[-1],
                                expected,
                                domain,
                            ),
                        )
            for name, domain in keyword_domains.items():
                expected = seeds.get(name)
                if incompatible(expected, domain):
                    self._report(
                        "domains-cross-arg",
                        expr,
                        "keyword %r of %s() expects %s, got %s"
                        % (
                            name,
                            target.rsplit(".", 1)[-1],
                            expected,
                            domain,
                        ),
                    )

    def _call_result_domain(self, expr):
        targets = self.targets_by_node.get(id(expr))
        if targets:
            domains = set()
            for target in targets:
                info = self.owner.function_info(target)
                if info is not None:
                    domains.add(annotation_domain(info.node.returns))
            if len(domains) == 1:
                (domain,) = domains
                if domain is not None:
                    return domain
        # Fallback: the called name's own spelling (clock.now_us(), ...).
        chain = dotted(expr.func)
        if chain:
            return seed_for_name(chain[-1])
        return None

    def _report(self, rule_id, node, message):
        self.owner.findings.append(
            Finding(
                rule_id=rule_id,
                line=node.lineno,
                col=node.col_offset + 1,
                message=message,
            )
        )


def _merge(env_a, env_b):
    out = {}
    for key in set(env_a) | set(env_b):
        if key in env_a and key in env_b:
            out[key] = env_a[key] if env_a[key] == env_b[key] else None
        else:
            out[key] = env_a.get(key, env_b.get(key))
    return out


class DomainAnalysis:
    """Domain findings for one module (uses the project call graph)."""

    def __init__(self, module, project):
        self.module = module
        self.project = project
        self.graph = build_call_graph(project)
        self.findings = []
        self._param_seed_cache = {}
        self._walk_module()

    def _walk_module(self):
        if self.module.tree is None:
            return
        prefix = self.module.module
        for node in self.module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = (
                    "%s.%s" % (prefix, node.name) if prefix else None
                )
                self.check_function(node, qualname)
            elif isinstance(node, ast.ClassDef):
                class_qual = (
                    "%s.%s" % (prefix, node.name) if prefix else None
                )
                for item in node.body:
                    if isinstance(
                        item, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        qualname = (
                            "%s.%s" % (class_qual, item.name)
                            if class_qual
                            else None
                        )
                        self.check_function(item, qualname)

    def check_function(self, node, qualname):
        _FunctionPass(self, node, qualname)

    # -- call graph adapters --------------------------------------------------

    def call_targets(self, qualname):
        """id(ast.Call) -> [callee qualnames] for one function."""
        if qualname is None:
            return {}
        return {
            id(node): targets
            for node, targets in self.graph.calls.get(qualname, ())
            if targets
        }

    def function_info(self, qualname):
        return self.graph.functions.get(qualname)

    def is_ambiguous_edge(self, caller, callee):
        if caller is None:
            return True
        return (caller, callee) in self.graph.ambiguous_edges

    def param_seeds(self, info):
        """Parameter name -> domain for a callee (annotation wins)."""
        cached = self._param_seed_cache.get(info.qualname)
        if cached is not None:
            return cached
        seeds = {}
        args = info.node.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            domain = annotation_domain(arg.annotation)
            if domain is None:
                domain = seed_for_name(arg.arg)
            if domain is not None:
                seeds[arg.arg] = domain
        self._param_seed_cache[info.qualname] = seeds
        return seeds


def domain_findings(module, project):
    """Findings for one module, cached on the project."""

    def build():
        return DomainAnalysis(module, project).findings

    return project.cached(("domain_findings", module.path), build)
