"""almanac-lint: repo-specific static analysis for the simulator.

The paper's correctness argument rests on discipline the code can
silently break: all time flows through the simulated clock (never
wall-clock), all randomness is explicitly seeded per workload, and only
the FTL layer may touch raw flash program/erase APIs.  The runtime fsck
(:mod:`repro.timessd.verify`) catches the *consequences* of a violation
after a long replay; this package catches the violation itself, at the
source line, before anything runs.

Three rule packs (see ``docs/ANALYSIS.md``):

* **determinism** — no wall-clock reads, no shared global RNG, no
  unseeded ``random.Random()``;
* **layering** — the DESIGN.md layer order for ``repro.*`` imports,
  no flash program/erase calls outside the FTL, no package cycles;
* **hygiene** — mutable default arguments, bare ``except``, ``print()``
  in library modules, mixed unit suffixes in arithmetic.

Run it with ``python -m repro.analysis src/repro`` or ``repro lint``;
suppress a finding in place with ``# almanac: ignore[rule-id]``.
"""

from repro.analysis.core import (
    LintRule,
    Project,
    SourceModule,
    Violation,
    all_rules,
    analyze_paths,
    register,
)

__all__ = [
    "LintRule",
    "Project",
    "SourceModule",
    "Violation",
    "all_rules",
    "analyze_paths",
    "register",
]
