"""``python -m repro.analysis`` — run almanac-lint over source trees.

Exit status: 0 clean, 1 violations found, 2 usage error.  The same
entry point backs the ``repro lint`` CLI subcommand.

The default selection is every *shallow* rule; ``--deep`` adds the
whole-program passes (call graph, effect contracts, address domains).
``--select``/``--ignore`` filter by rule id or pack name.  Results are
cached under ``--cache-dir`` (default ``.almanac-cache/``) keyed on
file content and analyzer version; ``--no-cache`` disables it.
"""

import argparse
import sys

from repro.analysis.core import (
    Project,
    SourceModule,
    all_rules,
    analyze_paths,
    collect_files,
    default_rules,
    rules_by_id,
)
from repro.analysis.reporting import format_json, format_sarif, format_text


def build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "almanac-lint/deepcheck: determinism, layering, hygiene and "
            "whole-program effect/domain checks for the simulator "
            "(see docs/ANALYSIS.md)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        "--rules",
        dest="select",
        help="comma-separated rule ids or pack names to run "
        "(default: every shallow rule; every rule with --deep)",
    )
    parser.add_argument(
        "--ignore",
        help="comma-separated rule ids or pack names to drop from the "
        "selection",
    )
    parser.add_argument(
        "--deep",
        action="store_true",
        help="include the whole-program passes (call-graph, effect "
        "contracts, address-domain dataflow)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    parser.add_argument(
        "--show-unresolved",
        action="store_true",
        help="print the call-graph unresolved-call report to stderr "
        "(implies building the call graph)",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print per-rule finding counts and cache hit/miss rates "
        "to stderr after the run",
    )
    parser.add_argument(
        "--emit-interleaving",
        nargs="?",
        const="docs/interleaving-contract.md",
        default=None,
        metavar="PATH",
        help="write the interleaving contract (task roots, atomic "
        "sections, shared-state inventory) to PATH (default: "
        "docs/interleaving-contract.md)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="cache directory (default: .almanac-cache)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk result cache for this run",
    )
    return parser


def _split_ids(text):
    return [part.strip() for part in text.split(",") if part.strip()]


def _select_rules(args):
    if args.select:
        rules = rules_by_id(_split_ids(args.select))
    elif args.deep:
        rules = all_rules()
    else:
        rules = default_rules()
    if args.ignore:
        dropped = set(_split_ids(args.ignore))
        rules = [
            rule
            for rule in rules
            if rule.rule_id not in dropped and rule.pack not in dropped
        ]
    return rules


def _make_cache(args, rules):
    if args.no_cache:
        return None
    from repro.analysis.cache import DEFAULT_CACHE_DIR, ResultCache
    from repro.analysis.rules.observability import catalog_fingerprint

    directory = args.cache_dir or DEFAULT_CACHE_DIR
    return ResultCache(
        directory,
        [rule.rule_id for rule in rules],
        # The obs pack reads docs/OBSERVABILITY.md, which file shas
        # cannot see — fold its content into the signature.
        extra=catalog_fingerprint(args.paths),
    )


def _print_unresolved(paths):
    from repro.analysis.callgraph import build_call_graph

    modules = [SourceModule.from_path(p) for p in collect_files(paths)]
    graph = build_call_graph(Project(modules))
    print(
        "unresolved calls: %d" % len(graph.unresolved), file=sys.stderr
    )
    for entry in sorted(
        graph.unresolved, key=lambda u: (u.path, u.line, u.col)
    ):
        print("  %s" % entry, file=sys.stderr)


def _emit_interleaving(paths, out_path):
    from repro.analysis.concurrency.report import render_report

    modules = [SourceModule.from_path(p) for p in collect_files(paths)]
    text = render_report(Project(modules))
    with open(out_path, "w", encoding="utf-8") as handle:
        handle.write(text)
    print("wrote %s" % out_path, file=sys.stderr)


def _print_stats(violations, rules, cache):
    counts = {}
    for violation in violations:
        counts[violation.rule_id] = counts.get(violation.rule_id, 0) + 1
    print("findings by rule:", file=sys.stderr)
    if not counts:
        print("  (none)", file=sys.stderr)
    for rule_id in sorted(counts):
        print("  %-36s %d" % (rule_id, counts[rule_id]), file=sys.stderr)
    print("rules run: %d" % len(rules), file=sys.stderr)
    if cache is None:
        print("cache: disabled", file=sys.stderr)
        return
    for tier, hits, misses in (
        ("shallow", cache.shallow_hits, cache.shallow_misses),
        ("deep", cache.deep_hits, cache.deep_misses),
    ):
        total = hits + misses
        rate = " (%.0f%% hit)" % (100.0 * hits / total) if total else ""
        print(
            "cache %s: %d hit / %d miss%s" % (tier, hits, misses, rate),
            file=sys.stderr,
        )


def main(argv=None):
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in all_rules():
            marker = " [deep]" if rule.deep else ""
            print(
                "%-28s %-12s %s%s"
                % (rule.rule_id, rule.pack, rule.description, marker)
            )
        return 0
    try:
        rules = _select_rules(args)
    except KeyError as exc:
        print("error: %s" % exc.args[0], file=sys.stderr)
        return 2
    cache = _make_cache(args, rules)
    try:
        violations = analyze_paths(args.paths, rules, cache=cache)
        if args.show_unresolved:
            _print_unresolved(args.paths)
        if args.emit_interleaving:
            _emit_interleaving(args.paths, args.emit_interleaving)
    except (FileNotFoundError, IsADirectoryError) as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    if args.stats:
        _print_stats(violations, rules, cache)
    if args.format == "json":
        print(format_json(violations))
    elif args.format == "sarif":
        print(format_sarif(violations, rules))
    else:
        print(format_text(violations))
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
