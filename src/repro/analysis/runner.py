"""``python -m repro.analysis`` — run almanac-lint over source trees.

Exit status: 0 clean, 1 violations found, 2 usage error.  The same
entry point backs the ``repro lint`` CLI subcommand.
"""

import argparse
import sys

from repro.analysis.core import all_rules, analyze_paths, rules_by_id
from repro.analysis.reporting import format_json, format_text


def build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "almanac-lint: determinism, layering and hygiene checks for "
            "the simulator (see docs/ANALYSIS.md)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--rules",
        help="comma-separated rule ids or pack names "
        "(default: every registered rule)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in all_rules():
            print("%-28s %-12s %s" % (rule.rule_id, rule.pack, rule.description))
        return 0
    if args.rules:
        try:
            rules = rules_by_id(
                [part.strip() for part in args.rules.split(",") if part.strip()]
            )
        except KeyError as exc:
            print("error: %s" % exc.args[0], file=sys.stderr)
            return 2
    else:
        rules = all_rules()
    try:
        violations = analyze_paths(args.paths, rules)
    except FileNotFoundError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    if args.format == "json":
        print(format_json(violations))
    else:
        print(format_text(violations))
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
