"""Real-world case studies from the paper's §5.5."""

from repro.casestudies.file_revert import FileRevertStudy, KERNEL_FILES

__all__ = ["FileRevertStudy", "KERNEL_FILES"]
