"""Reversing file changes — the paper's §5.5.2 / Figure 11 case study.

The paper replays the 1,000 most recent Linux-kernel commits against the
checked-out tree, then reverts individual source files to one minute
earlier with 1/2/4 recovery threads.  We synthesize an equivalent commit
stream: each commit patches a few files by mutating a fraction of their
pages, exactly the write pattern `git am` produces at block level.
"""

import random
from dataclasses import dataclass, field

from repro.common.units import MINUTE_US
from repro.timekits.api import TimeKits, pick_as_of
from repro.workloads.content import ContentFactory

# The ten kernel source files of Figure 11.
KERNEL_FILES = (
    "mmap.c",
    "mprotect.c",
    "slab.c",
    "swap.c",
    "aio.c",
    "inode.c",
    "iomap.c",
    "iov.c",
    "of.c",
    "pci.c",
)


@dataclass
class RevertOutcome:
    name: str
    threads: int
    elapsed_us: int
    pages: int
    verified: bool


@dataclass
class CommitLogEntry:
    commit_id: int
    timestamp_us: int
    files: list = field(default_factory=list)


class FileRevertStudy:
    """Synthesizes commits over kernel-like files and reverts them."""

    def __init__(self, fs, files=KERNEL_FILES, pages_per_file=12, seed=0):
        self.fs = fs
        self.files = list(files)
        self.pages_per_file = pages_per_file
        self._rng = random.Random(seed)
        self._content = ContentFactory(fs.page_size, self._rng, mutation_fraction=0.06)
        #: name -> {timestamp_us: {page: bytes}} — ground truth history.
        self.history = {}
        self.commit_log = []

    def setup(self):
        """Create the tree with initial content."""
        for name in self.files:
            self.fs.create(name)
            snapshot = {}
            for page in range(self.pages_per_file):
                data = self._content.fresh((name, page))
                self.fs.write_pages(name, page, 1, [data])
                snapshot[page] = data
            self.history[name] = {self.fs.ssd.clock.now_us: snapshot}
            self.fs.ssd.clock.advance(2000)

    def replay_commits(self, commits=1000, commits_per_minute=100):
        """Apply a stream of synthetic patches (paper: 100/minute)."""
        if not self.history:
            self.setup()
        gap_us = int(MINUTE_US / commits_per_minute)
        for commit_id in range(commits):
            touched = self._rng.sample(self.files, self._rng.randrange(1, 4))
            entry = CommitLogEntry(commit_id, self.fs.ssd.clock.now_us, touched)
            for name in touched:
                pages = self._rng.sample(
                    range(self.pages_per_file),
                    self._rng.randrange(1, max(2, self.pages_per_file // 3)),
                )
                stamp = self.fs.ssd.clock.now_us
                snapshot = dict(self._latest_snapshot(name))
                for page in sorted(pages):
                    data = self._content.mutate((name, page))
                    self.fs.write_pages(name, page, 1, [data])
                    snapshot[page] = data
                self.history[name][stamp] = snapshot
            self.commit_log.append(entry)
            self.fs.ssd.clock.advance(gap_us)
        return self.commit_log

    def _latest_snapshot(self, name):
        stamps = sorted(self.history[name])
        return self.history[name][stamps[-1]]

    def snapshot_as_of(self, name, t):
        """Ground-truth file content at time ``t`` (for verification)."""
        stamps = [s for s in sorted(self.history[name]) if s <= t]
        if not stamps:
            stamps = sorted(self.history[name])[:1]
        return self.history[name][stamps[-1]]

    def revert_file(self, name, t, threads=1, verify=True):
        """Roll one file back to its state at ``t``; returns RevertOutcome.

        Uses TimeKits chain walks with ``threads`` simulated recovery
        threads, then writes the recovered pages back through the file
        system — the same procedure as the paper's revert tool.
        """
        ssd = self.fs.ssd
        kits = TimeKits(ssd)
        lpas = self.fs.file_lpas(name)
        start = ssd.clock.now_us
        chains, _elapsed = kits.walk_many(lpas, threads, until_ts=t)
        recovered = []
        writes = []
        for page_index, lpa in enumerate(lpas):
            version = pick_as_of(chains.get(lpa, []), t)
            recovered.append(version.data if version else None)
            if version is not None:
                writes.append((lpa, version.data))
        # PlainFS places pages in-place, so device-level restore writes
        # land exactly where the file system expects the content.
        kits.restore_many(writes, threads)
        elapsed = ssd.clock.now_us - start
        verified = True
        if verify:
            expected = self.snapshot_as_of(name, t)
            for page_index in range(self.pages_per_file):
                want = expected.get(page_index)
                got = self.fs.read_pages(name, page_index, 1)[0]
                if want is not None and got != want:
                    verified = False
                    break
        return RevertOutcome(name, threads, elapsed, len(lpas), verified)
