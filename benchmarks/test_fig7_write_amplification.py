"""Figure 7 — write amplification, TimeSSD vs regular SSD.

Paper result: TimeSSD increases WA by 10.1% on average at 50% usage and
15.3% at 80%.  Reproduction claim (shape): WA increase is bounded, and
larger at 80% than at 50% on average.
"""

import pytest

from repro.bench.tables import format_table
from repro.bench.trace_experiments import write_amplification_rows

from benchmarks.conftest import emit, run_once

DAYS = 14
HEADERS = ("volume", "regular WA", "TimeSSD WA", "increase (%)")


def _mean_increase(rows):
    return sum(r[3] for r in rows) / len(rows)


@pytest.mark.benchmark(group="fig7")
def test_fig7a_write_amplification_50(benchmark):
    rows = run_once(
        benchmark, lambda: write_amplification_rows(usage=0.5, days=DAYS)
    )
    emit(
        format_table(HEADERS, rows, title="Figure 7a: write amplification @ 50% usage"),
        "fig7a_write_amplification_50",
    )
    assert all(row[2] >= row[1] * 0.98 for row in rows)  # TimeSSD never cheaper
    assert _mean_increase(rows) < 40.0
    benchmark.extra_info["mean_increase_pct"] = _mean_increase(rows)


@pytest.mark.benchmark(group="fig7")
def test_fig7b_write_amplification_80(benchmark):
    rows_80 = run_once(
        benchmark, lambda: write_amplification_rows(usage=0.8, days=DAYS)
    )
    emit(
        format_table(HEADERS, rows_80, title="Figure 7b: write amplification @ 80% usage"),
        "fig7b_write_amplification_80",
    )
    rows_50 = write_amplification_rows(usage=0.5, days=DAYS)  # memoized
    assert _mean_increase(rows_80) >= _mean_increase(rows_50)
    benchmark.extra_info["mean_increase_pct"] = _mean_increase(rows_80)
