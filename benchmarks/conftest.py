"""Shared helpers for the paper-reproduction benchmark suite.

Every ``test_fig*``/``test_table*`` bench regenerates one table or
figure from the paper's §5.  Each prints its table and persists it under
``benchmarks/results/`` so the numbers survive the pytest run.
"""

import pytest


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiments are deterministic simulations — repeating them only
    repeats identical work, so a single round is the honest measurement.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


def emit(table_text, name):
    """Print a rendered table and persist it to the results directory."""
    from repro.bench.tables import save_result

    print()
    print(table_text)
    path = save_result(name, table_text)
    print("[saved to %s]" % path)


@pytest.fixture
def report():
    return emit
