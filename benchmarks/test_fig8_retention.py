"""Figure 8 — data retention duration vs trace length and capacity usage.

Paper result: retention ranges from the 3-day floor to 56 days; lower
usage and lighter (university) workloads retain longer; retention grows
with trace length until the workload's steady-state cap.

Reproduction claims (shape):
* every volume retains at least ~the 3-day floor (unless aborted);
* per volume, retention at 50% usage >= retention at 80%;
* FIU volumes retain at least as long as the heaviest MSR volumes.
"""

import pytest

from repro.bench.tables import format_table
from repro.bench.trace_experiments import retention_rows

from benchmarks.conftest import emit, run_once

MSR_LENGTHS = (28, 42, 56)
FIU_LENGTHS = (20, 30, 40)


def _table(series_by_volume, lengths, title, name):
    headers = ("volume",) + tuple("%d d" % d for d in lengths)
    rows = []
    for volume, series in series_by_volume.items():
        rows.append(
            (volume,)
            + tuple(
                "%.1f%s" % (ret, "*" if aborted else "")
                for _days, ret, aborted in series
            )
        )
    emit(format_table(headers, rows, title=title + "  (* = stopped serving I/O)"), name)


@pytest.mark.benchmark(group="fig8")
def test_fig8a_retention_msr_80(benchmark):
    series = run_once(benchmark, lambda: retention_rows("msr", 0.8, MSR_LENGTHS))
    _table(series, MSR_LENGTHS, "Figure 8a: retention (days), MSR @ 80% usage", "fig8a_retention_msr_80")
    finals = [s[-1][1] for s in series.values()]
    assert all(f >= 2.5 for f in finals)  # at or above the floor


@pytest.mark.benchmark(group="fig8")
def test_fig8b_retention_msr_50(benchmark):
    series = run_once(benchmark, lambda: retention_rows("msr", 0.5, MSR_LENGTHS))
    _table(series, MSR_LENGTHS, "Figure 8b: retention (days), MSR @ 50% usage", "fig8b_retention_msr_50")
    series_80 = retention_rows("msr", 0.8, MSR_LENGTHS)  # memoized
    for volume in series:
        assert series[volume][-1][1] >= series_80[volume][-1][1] * 0.9


@pytest.mark.benchmark(group="fig8")
def test_fig8c_retention_fiu_80(benchmark):
    series = run_once(benchmark, lambda: retention_rows("fiu", 0.8, FIU_LENGTHS))
    _table(series, FIU_LENGTHS, "Figure 8c: retention (days), FIU @ 80% usage", "fig8c_retention_fiu_80")
    assert all(s[-1][1] >= 2.5 for s in series.values())


@pytest.mark.benchmark(group="fig8")
def test_fig8d_retention_fiu_50(benchmark):
    series = run_once(benchmark, lambda: retention_rows("fiu", 0.5, FIU_LENGTHS))
    _table(series, FIU_LENGTHS, "Figure 8d: retention (days), FIU @ 50% usage", "fig8d_retention_fiu_50")
    # University workloads at low usage retain for weeks (paper: up to 40d,
    # company servers up to 56d) — here the cap is the trace length.
    finals = [s[-1][1] for s in series.values()]
    assert max(finals) >= 20.0
    # Retention grows with trace length for the lightest volume.
    lightest = series["webusers"]
    assert lightest[-1][1] >= lightest[0][1]
