"""Microbenchmarks for the PR 8 hot paths.

Each benchmark times one of the loops the columnar core was built for:
the bulk OOB sweep, batch sequence-tag verification, mapping lookups
and GC victim selection.  Unlike the ``test_fig*`` experiments these
use pytest-benchmark's normal multi-round timing — the operations are
cheap and side-effect-free, so repetition is meaningful.
"""

import random
from array import array

import pytest

from repro.flash.core import verify_seq_tags
from repro.flash.geometry import FlashGeometry
from repro.flash.page import NULL_PPA, OOBMetadata
from repro.ftl.ssd import RegularSSD, SSDConfig


def hot_geometry():
    return FlashGeometry(
        channels=8, blocks_per_plane=48, pages_per_block=32, page_size=4096
    )


@pytest.fixture(scope="module")
def churned_ssd():
    ssd = RegularSSD(SSDConfig(geometry=hot_geometry()))
    rng = random.Random(2)
    working = ssd.logical_pages // 2
    for lpa in range(working):
        ssd.write(lpa)
        ssd.clock.advance(700)
    for _ in range(4000):
        ssd.write(rng.randrange(working))
        ssd.clock.advance(700)
    return ssd


def test_oob_sweep(benchmark, churned_ssd):
    """Full-device bulk OOB sweep (the recovery/scrub primitive)."""
    device = churned_ssd.device

    def sweep():
        total = 0
        for scan in device.scan_oob():
            total += sum(scan.intact)
        return total

    assert benchmark(sweep) > 0


def test_batch_seq_tag_verification(benchmark):
    """verify_seq_tags over 64k pages of synthetic OOB columns."""
    n = 65536
    lpas, backs, tss, seqs = (array("q", bytes(8 * n)) for _ in range(4))
    for i in range(n):
        oob = OOBMetadata(lpa=i, back_pointer=NULL_PPA, timestamp_us=i * 3)
        if i % 7 == 0:
            oob = oob.as_torn()
        lpas[i] = oob.lpa
        backs[i] = oob.back_pointer
        tss[i] = oob.timestamp_us
        seqs[i] = oob.seq_tag - ((1 << 64) if oob.seq_tag >> 63 else 0)

    flags = benchmark(verify_seq_tags, lpas, backs, tss, seqs)
    assert sum(flags) == n - len(range(0, n, 7))


def test_mapping_lookup(benchmark, churned_ssd):
    """Hot-path L2P lookups over the mapped working set."""
    mapping = churned_ssd.mapping
    lpas = [lpa for lpa in range(churned_ssd.logical_pages)][:2048]

    def lookups():
        hits = 0
        for lpa in lpas:
            if mapping.lookup(lpa) is not None:
                hits += 1
        return hits

    assert benchmark(lookups) > 0


def test_gc_victim_selection(benchmark, churned_ssd):
    """Greedy victim selection over the sealed-block population."""
    bm = churned_ssd.block_manager

    result = benchmark(bm.select_greedy_victim)
    assert result is not None
