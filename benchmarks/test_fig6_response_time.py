"""Figure 6 — average I/O response time, TimeSSD vs regular SSD.

Paper result: TimeSSD adds on average 2.5% at 50% capacity usage and
5.8% at 80%.  Reproduction claim (shape): overhead is small for every
volume, and larger at 80% usage than at 50% on average.
"""

import pytest

from repro.bench.tables import format_table
from repro.bench.trace_experiments import response_time_rows

from benchmarks.conftest import emit, run_once

DAYS = 14
HEADERS = ("volume", "regular (ms)", "TimeSSD (ms)", "overhead (%)")


def _mean_overhead(rows):
    return sum(r[3] for r in rows) / len(rows)


@pytest.mark.benchmark(group="fig6")
def test_fig6a_response_time_50(benchmark):
    rows = run_once(benchmark, lambda: response_time_rows(usage=0.5, days=DAYS))
    emit(
        format_table(HEADERS, rows, title="Figure 6a: avg I/O response time @ 50% usage"),
        "fig6a_response_time_50",
    )
    # Shape: modest overhead everywhere at 50%.
    assert all(row[3] < 25.0 for row in rows)
    benchmark.extra_info["mean_overhead_pct"] = _mean_overhead(rows)


@pytest.mark.benchmark(group="fig6")
def test_fig6b_response_time_80(benchmark):
    rows_80 = run_once(benchmark, lambda: response_time_rows(usage=0.8, days=DAYS))
    emit(
        format_table(HEADERS, rows_80, title="Figure 6b: avg I/O response time @ 80% usage"),
        "fig6b_response_time_80",
    )
    rows_50 = response_time_rows(usage=0.5, days=DAYS)  # memoized
    # Shape: overhead bounded, and on average larger at 80% than at 50%.
    assert all(row[3] < 60.0 for row in rows_80)
    assert _mean_overhead(rows_80) >= _mean_overhead(rows_50)
    benchmark.extra_info["mean_overhead_pct"] = _mean_overhead(rows_80)
