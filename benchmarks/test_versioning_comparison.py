"""Extension: software versioning (CoW snapshots) vs TimeSSD.

Not a paper figure — quantifies the paper's §2.2/§6 argument: software
versioning also retains history, but it costs user-visible capacity and
dies to a privileged wipe, while TimeSSD's firmware history costs the
user nothing visible and survives.
"""

import pytest

from repro.bench.tables import format_table
from repro.bench.versioning_experiments import run_comparison

from benchmarks.conftest import emit, run_once


@pytest.mark.benchmark(group="extension")
def test_versioning_vs_timessd(benchmark):
    cow, timessd = run_once(benchmark, run_comparison)
    rows = [
        (
            r.stack,
            r.elapsed_us / 1e6,
            r.history_pages,
            r.user_capacity_cost,
            "yes" if r.recovered_ok else "NO",
            "yes" if r.survives_privileged_wipe else "no",
        )
        for r in (cow, timessd)
    ]
    emit(
        format_table(
            (
                "stack",
                "elapsed (s)",
                "history pages",
                "user-visible cost",
                "recovers old version",
                "survives privileged wipe",
            ),
            rows,
            title="Extension: software versioning (CoW) vs TimeSSD",
        ),
        "extension_versioning_comparison",
    )
    # Both approaches recover history while intact...
    assert cow.recovered_ok and timessd.recovered_ok
    # ...but only firmware retention survives a privileged attacker.
    assert not cow.survives_privileged_wipe
    assert timessd.survives_privileged_wipe
    # And CoW's history eats user-visible capacity; TimeSSD's does not.
    assert cow.user_capacity_cost > 0
    assert timessd.user_capacity_cost == 0
