"""Figure 10 — recovering data encrypted by 13 ransomware families.

Paper result: TimeSSD restores every family's damage in under a minute;
FlashGuard is somewhat faster (TimeSSD pays ~14% for delta
decompression) but retains only read-then-overwritten pages.

Reproduction claims: both defenders fully restore the original bytes
for every family; recovery completes within simulated tens of seconds;
TimeSSD's mean recovery time is within a small factor of FlashGuard's.
"""

import pytest

from repro.bench.security_experiments import run_fig10
from repro.bench.tables import format_table

from benchmarks.conftest import emit, run_once


@pytest.mark.benchmark(group="fig10")
def test_fig10_ransomware_recovery(benchmark):
    rows = run_once(benchmark, run_fig10)
    table_rows = [
        (
            r.family,
            r.files_encrypted,
            r.flashguard_recovery_s,
            r.timessd_recovery_s,
            "yes" if (r.timessd_verified and r.flashguard_verified) else "NO",
        )
        for r in rows
    ]
    emit(
        format_table(
            ("family", "files", "FlashGuard (s)", "TimeSSD (s)", "verified"),
            table_rows,
            title="Figure 10: ransomware recovery time",
        ),
        "fig10_ransomware_recovery",
    )
    for r in rows:
        assert r.timessd_verified, "%s: TimeSSD recovery incomplete" % r.family
        assert r.flashguard_verified, "%s: FlashGuard recovery incomplete" % r.family
        assert r.timessd_recovery_s < 60.0
    mean_t = sum(r.timessd_recovery_s for r in rows) / len(rows)
    mean_f = sum(r.flashguard_recovery_s for r in rows) / len(rows)
    # TimeSSD pays decompression: slower than FlashGuard but same order.
    assert mean_t >= mean_f * 0.95
    assert mean_t <= mean_f * 3.0
    benchmark.extra_info["timessd_vs_flashguard"] = mean_t / mean_f
