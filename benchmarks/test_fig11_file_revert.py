"""Figure 11 — reversing OS files to previous versions.

Paper result: after replaying 1,000 Linux-kernel commits, reverting each
of ten source files to one minute earlier takes tens to hundreds of
milliseconds, dropping markedly from 1 to 2 to 4 recovery threads
(channel parallelism).

Reproduction claims: every revert restores byte-exact content; per-file
latency is millisecond-scale; 4 threads beat 1 thread on average.
"""

import pytest

from repro.bench.revert_experiments import run_fig11
from repro.bench.tables import format_table

from benchmarks.conftest import emit, run_once

COMMITS = 1000  # the paper's commit count


@pytest.mark.benchmark(group="fig11")
def test_fig11_file_revert(benchmark):
    rows = run_once(benchmark, lambda: run_fig11(commits=COMMITS))
    table_rows = [
        (
            r.name,
            r.per_thread_ms[1],
            r.per_thread_ms[2],
            r.per_thread_ms[4],
            "yes" if r.verified else "NO",
        )
        for r in rows
    ]
    emit(
        format_table(
            ("file", "1 thread (ms)", "2 threads (ms)", "4 threads (ms)", "verified"),
            table_rows,
            title="Figure 11: reverting OS files to one minute earlier",
        ),
        "fig11_file_revert",
    )
    assert all(r.verified for r in rows)
    mean_1 = sum(r.per_thread_ms[1] for r in rows) / len(rows)
    mean_4 = sum(r.per_thread_ms[4] for r in rows) / len(rows)
    assert mean_4 < mean_1  # parallel recovery is faster
    assert mean_1 < 1000.0  # millisecond scale, like the paper
    benchmark.extra_info["speedup_4_threads"] = mean_1 / mean_4
