"""Ablations over TimeSSD's design choices (see DESIGN.md).

These are not paper figures; they quantify the design decisions §3
argues for: delta compression, bloom grouping, the Equation-1 threshold,
and idle-time background work.
"""

import pytest

from repro.bench.ablations import (
    ablate_background_work,
    ablate_bloom_group_size,
    ablate_delta_compression,
    ablate_gc_threshold,
)
from repro.bench.tables import format_table

from benchmarks.conftest import emit, run_once

HEADERS = ("config", "retention (d)", "WA", "mean resp (us)", "bloom mem (B)")


def _rows(points):
    return [
        (
            p.label,
            p.retention_days,
            p.write_amplification,
            p.mean_response_us,
            p.bloom_memory_bytes,
        )
        for p in points
    ]


@pytest.mark.benchmark(group="ablations")
def test_ablation_delta_compression(benchmark):
    points = run_once(benchmark, ablate_delta_compression)
    emit(
        format_table(HEADERS, _rows(points), title="Ablation: delta compression (§3.6)"),
        "ablation_delta_compression",
    )
    on, off = points
    # Compression's benefit at equal workload: either the uncompressed
    # device cannot even sustain the retention floor (it stops serving
    # I/O), or — when both survive — compression writes less flash when
    # GC relocates retained history (§3.6 — "GC overhead is reduced").
    assert not on.aborted
    if not off.aborted:
        assert on.write_amplification <= off.write_amplification


@pytest.mark.benchmark(group="ablations")
def test_ablation_bloom_group_size(benchmark):
    points = run_once(benchmark, ablate_bloom_group_size)
    emit(
        format_table(HEADERS, _rows(points), title="Ablation: bloom group size N (§3.5)"),
        "ablation_bloom_group_size",
    )
    by_label = {p.label: p for p in points}
    # Larger groups need less bloom memory (fewer distinct entries).
    assert (
        by_label["group-size=64"].bloom_memory_bytes
        <= by_label["group-size=1"].bloom_memory_bytes
    )
    # No configuration breaks correctness (runs completed).
    assert all(not p.aborted for p in points)


@pytest.mark.benchmark(group="ablations")
def test_ablation_gc_threshold(benchmark):
    points = run_once(benchmark, ablate_gc_threshold)
    emit(
        format_table(HEADERS, _rows(points), title="Ablation: Equation-1 threshold TH (§3.8)"),
        "ablation_gc_threshold",
    )
    # A looser threshold may only lengthen retention.
    retentions = [p.retention_days for p in points]
    assert retentions == sorted(retentions) or max(retentions) - min(retentions) < 1.0


@pytest.mark.benchmark(group="ablations")
def test_ablation_background_work(benchmark):
    points = run_once(benchmark, ablate_background_work)
    emit(
        format_table(HEADERS, _rows(points), title="Ablation: idle-time background work (§3.6)"),
        "ablation_background_work",
    )
    on, off = points
    # Foreground-only housekeeping shows up in response time.
    assert off.mean_response_us >= on.mean_response_us


@pytest.mark.benchmark(group="ablations")
def test_ablation_mapping_cache(benchmark):
    from repro.bench.ablations import ablate_mapping_cache

    points = run_once(benchmark, ablate_mapping_cache)
    emit(
        format_table(HEADERS, _rows(points), title="Ablation: DFTL mapping cache"),
        "ablation_mapping_cache",
    )
    by_label = {p.label: p for p in points}
    # A tiny demand cache pays translation I/O on the critical path.
    assert (
        by_label["mapping-cache=256"].mean_response_us
        >= by_label["mapping-cache=full"].mean_response_us
    )


@pytest.mark.benchmark(group="ablations")
def test_ablation_compression_acceleration(benchmark):
    from repro.bench.ablations import ablate_compression_acceleration

    software, accelerated = run_once(benchmark, ablate_compression_acceleration)
    rows = [
        (
            "software codec",
            software.timessd_recovery_s * 1000.0,
            software.flashguard_recovery_s * 1000.0,
            (software.timessd_recovery_s - software.flashguard_recovery_s) * 1000.0,
        ),
        (
            "accelerated codec",
            accelerated.timessd_recovery_s * 1000.0,
            accelerated.flashguard_recovery_s * 1000.0,
            (accelerated.timessd_recovery_s - accelerated.flashguard_recovery_s)
            * 1000.0,
        ),
    ]
    emit(
        format_table(
            ("config", "TimeSSD (ms)", "FlashGuard (ms)", "decompression gap (ms)"),
            rows,
            title="Ablation: hardware-accelerated (de)compression (§5.5.1)",
        ),
        "ablation_compression_acceleration",
    )
    assert software.timessd_verified and accelerated.timessd_verified
    # Acceleration narrows the decompression gap vs FlashGuard.
    gap_sw = software.timessd_recovery_s - software.flashguard_recovery_s
    gap_hw = accelerated.timessd_recovery_s - accelerated.flashguard_recovery_s
    assert gap_hw <= gap_sw


@pytest.mark.benchmark(group="ablations")
def test_ablation_device_parallelism(benchmark):
    from repro.bench.ablations import ablate_device_parallelism

    points = run_once(benchmark, ablate_device_parallelism)
    rows = [(p.label, p.mean_response_us / 1000.0, p.write_amplification) for p in points]
    emit(
        format_table(
            ("config", "TimeQuery (ms)", "WA"),
            rows,
            title="Ablation: internal parallelism vs full-scan query latency (§3.9)",
        ),
        "ablation_device_parallelism",
    )
    latencies = [p.mean_response_us for p in points]
    # More channels -> faster full-device scans, monotonically.
    assert latencies == sorted(latencies, reverse=True)
    # Going 2 -> 8 channels should buy at least ~2x.
    assert latencies[0] > 2.0 * latencies[-1]


@pytest.mark.benchmark(group="ablations")
def test_ablation_gc_policy(benchmark):
    from repro.bench.ablations import ablate_gc_policy

    points = run_once(benchmark, ablate_gc_policy)
    emit(
        format_table(HEADERS, _rows(points), title="Ablation: GC victim policy under hot/cold skew"),
        "ablation_gc_policy",
    )
    by_label = {p.label: p for p in points}
    # Cost-benefit should be at least competitive with greedy under skew.
    assert (
        by_label["gc-policy=cost_benefit"].write_amplification
        <= by_label["gc-policy=greedy"].write_amplification * 1.15
    )


@pytest.mark.benchmark(group="ablations")
def test_ablation_queue_depth(benchmark):
    from repro.bench.ablations import ablate_queue_depth

    points = run_once(benchmark, ablate_queue_depth)
    rows = [(p.label, p.mean_response_us) for p in points]
    emit(
        format_table(
            ("queue depth", "random-read IOPS (simulated)"),
            rows,
            title="Ablation: NVMe queue depth vs device parallelism",
        ),
        "ablation_queue_depth",
    )
    iops = {p.label: p.mean_response_us for p in points}
    ordered = [p.mean_response_us for p in points]
    # Deeper queues never hurt (monotone non-decreasing scaling), and
    # the committed ratchet: QD=8 sustains at least 1.5x the QD=1
    # throughput on the event-driven engine.
    assert ordered == sorted(ordered)
    assert iops["QD=8"] >= 1.5 * iops["QD=1"]
