"""Figure 9 — TimeSSD vs software approaches (Ext4 journaling, F2FS).

Paper results:
* 9a (IOZone): reads and sequential writes at parity; random writes
  3.3x over Ext4 and slightly over F2FS;
* 9b (PostMark + OLTP): TimeSSD 1.5-2.2x over Ext4 and 1.1-1.2x over
  F2FS; F2FS 1.2-1.8x over Ext4.

Reproduction claims (shape): who wins and the ordering
TimeSSD >= F2FS > Ext4 on write-heavy workloads; parity on reads.
"""

import pytest

from repro.bench.fs_experiments import normalized, run_iozone, run_oltp, run_postmark
from repro.bench.tables import format_table

from benchmarks.conftest import emit, run_once


@pytest.mark.benchmark(group="fig9")
def test_fig9a_iozone(benchmark):
    results = run_once(benchmark, run_iozone)
    phases = ("SeqRead", "SeqWrite", "RandomRead", "RandomWrite")
    rows = []
    speedups = {}
    for phase in phases:
        per_stack = {stack: results[stack][phase] for stack in results}
        norm = normalized(per_stack)
        speedups[phase] = norm
        rows.append(
            (phase, norm["Ext4"], norm["F2FS"], norm["TimeSSD"])
        )
    emit(
        format_table(
            ("phase", "Ext4", "F2FS", "TimeSSD"),
            rows,
            title="Figure 9a: IOZone speedup normalized to Ext4",
        ),
        "fig9a_iozone",
    )
    # Reads: parity across stacks.
    assert 0.7 < speedups["SeqRead"]["TimeSSD"] < 1.4
    assert 0.7 < speedups["RandomRead"]["TimeSSD"] < 1.4
    # Random writes: TimeSSD beats journaling Ext4 clearly, and is at
    # least on par with F2FS.
    assert speedups["RandomWrite"]["TimeSSD"] > 1.5
    assert speedups["RandomWrite"]["TimeSSD"] >= speedups["RandomWrite"]["F2FS"] * 0.9


@pytest.mark.benchmark(group="fig9")
def test_fig9b_postmark_and_oltp(benchmark):
    def experiment():
        return run_postmark(), run_oltp()

    postmark, oltp = run_once(benchmark, experiment)
    rows = []
    norm_postmark = normalized(postmark)
    rows.append(("PostMark", norm_postmark["Ext4"], norm_postmark["F2FS"], norm_postmark["TimeSSD"]))
    norm_oltp = {}
    for bench_name in ("TPCC", "TPCB", "TATP"):
        per_stack = {stack: oltp[stack][bench_name] for stack in oltp}
        norm = normalized(per_stack)
        norm_oltp[bench_name] = norm
        rows.append((bench_name, norm["Ext4"], norm["F2FS"], norm["TimeSSD"]))
    emit(
        format_table(
            ("workload", "Ext4", "F2FS", "TimeSSD"),
            rows,
            title="Figure 9b: PostMark and OLTP speedup normalized to Ext4",
        ),
        "fig9b_postmark_oltp",
    )
    # Shape: TimeSSD > Ext4 on every workload; TimeSSD >= ~F2FS.
    for _name, _ext4, f2fs, timessd in rows:
        assert timessd > 1.05
        assert timessd >= f2fs * 0.9
    # Absolute ordering of OLTP benchmarks survives the stacks:
    for stack in ("Ext4", "F2FS", "TimeSSD"):
        assert oltp[stack]["TATP"] > oltp[stack]["TPCB"] > oltp[stack]["TPCC"]
