"""Table 3 — execution time of storage-state queries.

Paper result: TimeQuery takes minutes (a full-device scan: ~710-764 s on
a 1 TB device), while AddrQueryAll and RollBack take milliseconds
(0.3-7.6 ms).  Reproduction claim (shape): TimeQuery is orders of
magnitude slower than the per-LPA operations, which stay in the
millisecond range; RollBack costs slightly more than AddrQueryAll (it
adds a write).
"""

import pytest

from repro.bench.query_experiments import run_table3
from repro.bench.tables import format_table

from benchmarks.conftest import emit, run_once


@pytest.mark.benchmark(group="table3")
def test_table3_query_latency(benchmark):
    rows = run_once(benchmark, run_table3)
    table_rows = [
        (r.volume, r.time_query_s, r.addr_query_all_ms, r.rollback_ms) for r in rows
    ]
    emit(
        format_table(
            ("volume", "TimeQuery (s)", "AddrQueryAll (ms)", "RollBack (ms)"),
            table_rows,
            title="Table 3: storage-state query execution time",
        ),
        "table3_query_latency",
    )
    for r in rows:
        # Full scan vs a handful of page reads: >= 100x apart.
        assert r.time_query_s * 1000.0 > 100 * r.addr_query_all_ms
        # Per-LPA operations are millisecond-scale (AddrQueryAll walks
        # the full chain; RollBack stops at the target time, so it can
        # come out cheaper despite its extra write).
        assert 0 < r.addr_query_all_ms < 50.0
        assert 0 < r.rollback_ms < 50.0
