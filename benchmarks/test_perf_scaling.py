"""The 10x device-size unlock: 0.5 GiB geometry, checkpointed recovery.

ROADMAP item 2's acceptance run.  The seed's object-per-page flash
array topped out around 48 MiB; the columnar core must drive a device
ten times that size through the canonical churn workload on a CI
budget, and checkpointed ``rebuild_from_flash`` must scan under 25% of
the blocks a full OOB sweep would visit.
"""

import random
import time

from repro.flash.geometry import FlashGeometry
from repro.ftl.recovery import rebuild_from_flash, simulate_power_loss
from repro.ftl.ssd import RegularSSD, SSDConfig

#: Wall-clock ceiling for workload + crash + recovery, generous enough
#: for a loaded CI runner (a warm local run takes a small fraction).
BUDGET_S = 240.0

GIB = 1024**3


def big_geometry():
    """0.5 GiB raw: 10.7x the 48 MiB bench geometry."""
    return FlashGeometry(
        channels=8, blocks_per_plane=256, pages_per_block=64, page_size=4096
    )


def test_10x_device_checkpointed_recovery():
    t0 = time.perf_counter()  # almanac: ignore[determinism-wallclock]
    geometry = big_geometry()
    assert geometry.raw_capacity_bytes >= GIB // 2

    ssd = RegularSSD(
        SSDConfig(geometry=geometry, checkpoint_interval_blocks=16)
    )
    # Canonical churn: sequential fill of half the working set, then
    # seeded uniform updates — the same shape as the bench smoke.
    rng = random.Random(1)
    working = ssd.logical_pages // 4
    for lpa in range(working):
        ssd.write(lpa)
        ssd.clock.advance(300)
    for _ in range(20_000):
        ssd.write(rng.randrange(working))
        ssd.clock.advance(300)

    counters = ssd.obs.metrics.snapshot()["counters"]
    assert counters["recovery.checkpoint.written"] > 0

    mapping_before = {
        lpa: ssd.mapping.lookup(lpa)
        for lpa in range(working)
        if ssd.mapping.lookup(lpa) is not None
    }

    simulate_power_loss(ssd)
    t_recover = time.perf_counter()  # almanac: ignore[determinism-wallclock]
    stats = rebuild_from_flash(ssd)
    t_done = time.perf_counter()  # almanac: ignore[determinism-wallclock]
    recovery_s = t_done - t_recover

    # Exact equivalence with the full scan, at a fraction of the work.
    mapping_after = {
        lpa: ssd.mapping.lookup(lpa)
        for lpa in range(working)
        if ssd.mapping.lookup(lpa) is not None
    }
    assert mapping_after == mapping_before
    full_scan_blocks = stats["scanned_blocks"] + stats["summarized_blocks"]
    assert full_scan_blocks > 0
    scan_fraction = stats["scanned_blocks"] / full_scan_blocks
    print(
        "\n10x geometry: %.2f GiB raw, %d blocks; recovery scanned "
        "%d/%d blocks (%.1f%%), %d from checkpoint seq %s, in %.2fs"
        % (
            geometry.raw_capacity_bytes / GIB,
            geometry.total_blocks,
            stats["scanned_blocks"],
            full_scan_blocks,
            100 * scan_fraction,
            stats["summarized_blocks"],
            stats["checkpoint_seq"],
            recovery_s,
        )
    )
    assert scan_fraction < 0.25

    # Still a working device afterwards.
    for lpa in range(64):
        ssd.write(lpa)
        ssd.clock.advance(300)

    t_end = time.perf_counter()  # almanac: ignore[determinism-wallclock]
    elapsed = t_end - t0
    print("total wall-clock: %.1fs (budget %.0fs)" % (elapsed, BUDGET_S))
    assert elapsed < BUDGET_S
