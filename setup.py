"""Setup shim so `pip install -e .` works without the `wheel` package.

All real metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
