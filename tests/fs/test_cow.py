"""Copy-on-write snapshotting FS (the software-versioning comparator)."""

import pytest

from repro.common.errors import FileSystemError
from repro.fs.cow import CowFS

from tests.conftest import make_regular_ssd, small_geometry


@pytest.fixture
def fs():
    return CowFS(make_regular_ssd(geometry=small_geometry(blocks_per_plane=96)))


def page(fs, text):
    return text.encode().ljust(fs.page_size, b"\0")


def test_plain_use_without_snapshots_overwrites_in_place(fs):
    fs.create("f")
    fs.write("f", 0, page(fs, "v1"))
    lpa = fs.file_lpas("f")[0]
    fs.write("f", 0, page(fs, "v2"))
    assert fs.file_lpas("f")[0] == lpa  # no snapshot -> no COW
    assert fs.retained_version_pages() == 0


def test_snapshot_triggers_cow(fs):
    fs.create("f")
    fs.write("f", 0, page(fs, "v1"))
    old_lpa = fs.file_lpas("f")[0]
    snap = fs.snapshot()
    fs.write("f", 0, page(fs, "v2"))
    assert fs.file_lpas("f")[0] != old_lpa
    assert fs.read("f", 0, 2) == b"v2"
    assert fs.read_at("f", snap, 0, 2) == b"v1"
    assert fs.retained_version_pages() == 1


def test_one_cow_per_epoch(fs):
    fs.create("f")
    fs.write("f", 0, page(fs, "v1"))
    fs.snapshot()
    fs.write("f", 0, page(fs, "v2"))
    lpa = fs.file_lpas("f")[0]
    fs.write("f", 0, page(fs, "v3"))  # same epoch: in place
    assert fs.file_lpas("f")[0] == lpa
    assert fs.retained_version_pages() == 1


def test_multiple_snapshots_keep_distinct_versions(fs):
    fs.create("f")
    snaps = []
    for i in range(4):
        fs.write("f", 0, page(fs, "gen%d" % i))
        snaps.append(fs.snapshot())
    fs.write("f", 0, page(fs, "final"))
    for i, snap in enumerate(snaps):
        assert fs.read_at("f", snap, 0, 4) == (b"gen%d" % i)
    assert fs.read("f", 0, 5) == b"final"


def test_delete_snapshot_frees_unreferenced_versions(fs):
    fs.create("f")
    fs.write("f", 0, page(fs, "v1"))
    snap = fs.snapshot()
    fs.write("f", 0, page(fs, "v2"))
    assert fs.retained_version_pages() == 1
    free_before = fs.allocator.free_count
    fs.delete_snapshot(snap)
    assert fs.retained_version_pages() == 0
    assert fs.allocator.free_count == free_before + 1


def test_shared_version_survives_partial_snapshot_deletion(fs):
    fs.create("f")
    fs.write("f", 0, page(fs, "v1"))
    snap_a = fs.snapshot()
    snap_b = fs.snapshot()
    fs.write("f", 0, page(fs, "v2"))
    fs.delete_snapshot(snap_a)
    # snap_b still needs v1.
    assert fs.read_at("f", snap_b, 0, 2) == b"v1"


def test_restore_from_snapshot(fs):
    fs.create("f")
    fs.write("f", 0, page(fs, "good"))
    snap = fs.snapshot()
    fs.write("f", 0, page(fs, "bad!"))
    fs.restore_from_snapshot("f", snap)
    assert fs.read("f", 0, 4) == b"good"


def test_unknown_snapshot_rejected(fs):
    fs.create("f")
    with pytest.raises(FileSystemError):
        fs.read_at("f", 99, 0, 1)
    with pytest.raises(FileSystemError):
        fs.delete_snapshot(99)


def test_kernel_attacker_can_destroy_software_history(fs):
    """The paper's motivation, demonstrated: host software retention
    dies with one privileged call — unlike TimeSSD's firmware history."""
    fs.create("f")
    fs.write("f", 0, page(fs, "precious"))
    snap = fs.snapshot()
    fs.write("f", 0, page(fs, "ENCRYPTED"))
    # Attacker holds kernel privileges: delete the snapshot.
    fs.delete_snapshot(snap)
    assert fs.retained_version_pages() == 0
    with pytest.raises(FileSystemError):
        fs.read_at("f", snap, 0, 8)


def test_snapshot_history_costs_full_pages(fs):
    """Software versioning pays one full page per retained version —
    no delta compression below the FS."""
    fs.create("f")
    fs.write("f", 0, page(fs, "x" * 16))
    used_before = fs.allocator.used_count
    for i in range(5):
        fs.snapshot()
        fs.write("f", 0, page(fs, "x" * 16 + str(i)))  # tiny change
    assert fs.allocator.used_count == used_before + 5
