"""Hypothesis stateful test: each FS flavour vs a perfect dict model."""

import hypothesis.strategies as st
import pytest
from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.common.errors import FileSystemError
from repro.fs import CowFS, JournalingFS, LogStructuredFS, PlainFS

from tests.conftest import make_regular_ssd, small_geometry

NAMES = st.sampled_from(["a", "b", "c", "d"])
OFFSETS = st.integers(min_value=0, max_value=3 * 512)
SIZES = st.integers(min_value=1, max_value=700)
BYTES = st.integers(min_value=1, max_value=255)


class _FSMachine(RuleBasedStateMachine):
    fs_cls = PlainFS

    def __init__(self):
        super().__init__()
        ssd = make_regular_ssd(geometry=small_geometry(blocks_per_plane=96))
        self.fs = self.fs_cls(ssd, max_files=16)
        self.model = {}  # name -> bytearray

    @rule(name=NAMES)
    def create(self, name):
        if name in self.model:
            with pytest.raises(FileSystemError):
                self.fs.create(name)
            return
        self.fs.create(name)
        self.model[name] = bytearray()

    @rule(name=NAMES, offset=OFFSETS, size=SIZES, fill=BYTES)
    def write(self, name, offset, size, fill):
        data = bytes([fill]) * size
        if name not in self.model:
            with pytest.raises(FileSystemError):
                self.fs.write(name, offset, data)
            return
        self.fs.write(name, offset, data)
        shadow = self.model[name]
        if len(shadow) < offset + size:
            shadow.extend(bytes(offset + size - len(shadow)))
        shadow[offset : offset + size] = data
        self.fs.ssd.clock.advance(500)

    @rule(name=NAMES)
    def delete(self, name):
        if name not in self.model:
            with pytest.raises(FileSystemError):
                self.fs.delete(name)
            return
        self.fs.delete(name)
        del self.model[name]

    @rule(name=NAMES, offset=OFFSETS, size=SIZES)
    def read_matches_model(self, name, offset, size):
        if name not in self.model:
            return
        got = self.fs.read(name, offset, size)
        shadow = self.model[name]
        expected = bytes(shadow[offset : offset + size])
        assert got == expected

    @rule(name=NAMES)
    def size_matches_model(self, name):
        if name not in self.model:
            return
        assert self.fs.file_size(name) == len(self.model[name])

    @invariant()
    def namespace_matches(self):
        assert set(self.fs.list_files()) == set(self.model)


def _machine_for(cls):
    machine = type("%sMachine" % cls.__name__, (_FSMachine,), {"fs_cls": cls})
    case = machine.TestCase
    case.settings = settings(max_examples=15, stateful_step_count=30, deadline=None)
    return case


TestPlainFSStateful = _machine_for(PlainFS)
TestJournalingFSStateful = _machine_for(JournalingFS)
TestLogStructuredFSStateful = _machine_for(LogStructuredFS)
TestCowFSStateful = _machine_for(CowFS)
