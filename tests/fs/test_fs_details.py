"""Deeper file-system substrate behaviour: journal wrap, NAT cadence,
metadata content realism."""

import pytest

from repro.fs import JournalingFS, LogStructuredFS, PlainFS
from repro.fs.logstructured import NAT_UPDATE_INTERVAL

from tests.conftest import make_regular_ssd, small_geometry


def big_ssd():
    return make_regular_ssd(geometry=small_geometry(blocks_per_plane=128))


class TestJournalDetails:
    def test_journal_region_is_circular(self):
        fs = JournalingFS(big_ssd(), journal_pages=8)
        fs.create("f")
        # Far more journal writes than the region holds.
        for i in range(40):
            fs.write("f", 0, b"x" * fs.page_size)
        assert fs.stats.journal_page_writes == 40 * 2  # data + commit
        assert fs._journal_cursor < 8

    def test_commit_record_per_transaction(self):
        fs = JournalingFS(big_ssd())
        fs.create("f")
        fs.write("f", 0, b"y" * fs.page_size * 3)  # one txn, 3 data pages
        assert fs.transactions == 1
        assert fs.stats.journal_page_writes == 3 + 1

    def test_journal_lives_outside_data_region(self):
        fs = JournalingFS(big_ssd(), journal_pages=16)
        fs.create("f")
        fs.write("f", 0, b"z" * fs.page_size)
        data_lpa = fs.file_lpas("f")[0]
        assert data_lpa >= fs._journal_start + 16


class TestLogStructuredDetails:
    def test_nat_updates_amortized(self):
        fs = LogStructuredFS(big_ssd())
        fs.create("f")
        for _ in range(NAT_UPDATE_INTERVAL * 2 + 1):
            fs.write_pages("f", 0, 1)
        assert fs.nat_writes == 2

    def test_old_pages_trimmed_on_remap(self):
        fs = LogStructuredFS(big_ssd())
        fs.create("f")
        fs.write_pages("f", 0, 1)
        old = fs.file_lpas("f")[0]
        fs.write_pages("f", 0, 1)
        # The old location was TRIMmed at the device.
        assert not fs.ssd.mapping.is_mapped(old)

    def test_allocator_space_recycled(self):
        fs = LogStructuredFS(big_ssd())
        fs.create("f")
        free_before = fs.allocator.free_count
        for _ in range(50):
            fs.write_pages("f", 0, 1)
        # One page live; transient remaps returned their blocks.
        assert fs.allocator.free_count == free_before - 1


class TestMetadataRealism:
    def test_inode_page_content_changes_between_versions(self):
        fs = PlainFS(big_ssd())
        fs.create("f")
        first = fs._meta_page_content("inode1", 1)
        second = fs._meta_page_content("inode1", 2)
        assert first != second
        assert len(first) == fs.page_size
        # Mostly-stable content: good delta-compression fodder.
        same = sum(1 for a, b in zip(first, second) if a == b)
        assert same > fs.page_size * 0.9

    def test_every_write_touches_inode_page(self):
        fs = PlainFS(big_ssd())
        fs.create("f")
        meta_before = fs.stats.meta_page_writes
        fs.write_pages("f", 0, 4)
        assert fs.stats.meta_page_writes == meta_before + 1
