import os
import random

import pytest

from repro.common.errors import FileSystemError
from repro.fs import BlockAllocator, JournalingFS, LogStructuredFS, PlainFS

from tests.conftest import make_regular_ssd, make_timessd, small_geometry

ALL_FS = [PlainFS, JournalingFS, LogStructuredFS]


class TestBlockAllocator:
    def test_allocates_unique(self):
        alloc = BlockAllocator(10, 5)
        got = [alloc.allocate() for _ in range(5)]
        assert sorted(got) == list(range(10, 15))
        assert alloc.free_count == 0

    def test_exhaustion(self):
        alloc = BlockAllocator(0, 1)
        alloc.allocate()
        with pytest.raises(FileSystemError):
            alloc.allocate()

    def test_release_and_reuse(self):
        alloc = BlockAllocator(0, 2)
        a = alloc.allocate()
        b = alloc.allocate()
        alloc.release(a)
        assert alloc.allocate() == a

    def test_double_free_rejected(self):
        alloc = BlockAllocator(0, 2)
        a = alloc.allocate()
        alloc.release(a)
        with pytest.raises(FileSystemError):
            alloc.release(a)

    def test_out_of_region_rejected(self):
        with pytest.raises(FileSystemError):
            BlockAllocator(0, 2).release(10)


@pytest.mark.parametrize("fs_cls", ALL_FS)
class TestFileSystemBasics:
    def make_fs(self, fs_cls):
        ssd = make_regular_ssd(geometry=small_geometry(blocks_per_plane=64))
        return fs_cls(ssd, max_files=64)

    def test_create_and_exists(self, fs_cls):
        fs = self.make_fs(fs_cls)
        fs.create("a.txt")
        assert fs.exists("a.txt")
        assert fs.list_files() == ["a.txt"]

    def test_duplicate_create_rejected(self, fs_cls):
        fs = self.make_fs(fs_cls)
        fs.create("a")
        with pytest.raises(FileSystemError):
            fs.create("a")

    def test_write_read_roundtrip(self, fs_cls):
        fs = self.make_fs(fs_cls)
        fs.create("f")
        data = os.urandom(fs.page_size * 3 + 100)
        fs.write("f", 0, data)
        assert fs.read("f", 0, len(data)) == data
        assert fs.file_size("f") == len(data)

    def test_partial_page_rmw(self, fs_cls):
        fs = self.make_fs(fs_cls)
        fs.create("f")
        fs.write("f", 0, b"A" * fs.page_size)
        fs.write("f", 10, b"B" * 5)
        got = fs.read("f", 0, fs.page_size)
        assert got[:10] == b"A" * 10
        assert got[10:15] == b"B" * 5
        assert got[15:] == b"A" * (fs.page_size - 15)

    def test_sparse_read_returns_zeros(self, fs_cls):
        fs = self.make_fs(fs_cls)
        fs.create("f")
        fs.write("f", fs.page_size * 2, b"end")
        assert fs.read("f", 0, 4) == b"\x00" * 4

    def test_delete_frees_space(self, fs_cls):
        fs = self.make_fs(fs_cls)
        fs.create("f")
        fs.write("f", 0, b"x" * fs.page_size * 4)
        free_before = fs.allocator.free_count
        fs.delete("f")
        assert not fs.exists("f")
        assert fs.allocator.free_count == free_before + 4

    def test_missing_file_rejected(self, fs_cls):
        fs = self.make_fs(fs_cls)
        with pytest.raises(FileSystemError):
            fs.read("missing", 0, 1)

    def test_file_lpas_exposed(self, fs_cls):
        fs = self.make_fs(fs_cls)
        fs.create("f")
        fs.write_pages("f", 0, 3)
        assert len(fs.file_lpas("f")) == 3

    def test_overwrite_visible(self, fs_cls):
        fs = self.make_fs(fs_cls)
        fs.create("f")
        fs.write("f", 0, b"1" * fs.page_size)
        fs.write("f", 0, b"2" * fs.page_size)
        assert fs.read("f", 0, fs.page_size) == b"2" * fs.page_size


class TestWriteTrafficShape:
    """The Figure 9 signal: journaling > log-structured > plain."""

    def run_overwrites(self, fs, n=200):
        fs.create("f")
        rng = random.Random(3)
        page = fs.page_size
        fs.write("f", 0, b"0" * page * 8)
        for _ in range(n):
            fs.write("f", rng.randrange(8) * page, b"%d" % rng.random() * 1)
        return fs.stats

    def test_journaling_doubles_write_traffic(self):
        plain = PlainFS(make_regular_ssd(geometry=small_geometry(blocks_per_plane=64)))
        journaled = JournalingFS(
            make_regular_ssd(geometry=small_geometry(blocks_per_plane=64))
        )
        s_plain = self.run_overwrites(plain)
        s_journal = self.run_overwrites(journaled)
        assert s_journal.journal_page_writes > s_journal.data_page_writes
        assert s_journal.total_page_writes > 1.8 * s_plain.total_page_writes

    def test_log_structured_between_plain_and_journal(self):
        geo = small_geometry(blocks_per_plane=64)
        stats = {}
        for cls in ALL_FS:
            fs = cls(make_regular_ssd(geometry=geo))
            stats[cls.name] = self.run_overwrites(fs).total_page_writes
        assert stats["plainfs"] <= stats["f2fssim"] < stats["ext4sim"]

    def test_log_structured_remaps_pages(self):
        fs = LogStructuredFS(make_regular_ssd(geometry=small_geometry(blocks_per_plane=64)))
        fs.create("f")
        fs.write_pages("f", 0, 1)
        first = fs.file_lpas("f")[0]
        fs.write_pages("f", 0, 1)
        assert fs.file_lpas("f")[0] != first


class TestOnTimeSSD:
    def test_plainfs_history_recoverable(self):
        from repro.common.units import SECOND_US
        from repro.timekits import FileRecovery, TimeKits
        from repro.timessd.config import ContentMode

        ssd = make_timessd(
            geometry=small_geometry(blocks_per_plane=64),
            content_mode=ContentMode.REAL,
            retention_floor_us=3600 * SECOND_US,
        )
        fs = PlainFS(ssd)
        fs.create("doc")
        fs.write("doc", 0, b"GOOD" * (fs.page_size // 4))
        t_good = ssd.clock.now_us
        ssd.clock.advance(1000)
        fs.write("doc", 0, b"EVIL" * (fs.page_size // 4))
        kits = TimeKits(ssd)
        recovery = FileRecovery(kits)
        outcome = recovery.recover_file("doc", fs.file_lpas("doc"), t_good)
        assert outcome.complete
        assert fs.read("doc", 0, 4) == b"GOOD"
