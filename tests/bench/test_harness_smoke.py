"""Smoke tests for the benchmark harness at tiny scale.

The real benches (under ``benchmarks/``) run minutes-long sweeps; these
tests exercise the same code paths in seconds so harness regressions
surface in the unit suite.
"""

import pytest

from repro.bench.config import bench_geometry, make_bench_regular, make_bench_timessd, prefill
from repro.bench.tables import format_table, save_result
from repro.bench.trace_experiments import run_volume


class TestBenchConfig:
    def test_geometry_defaults(self):
        geo = bench_geometry()
        assert geo.page_size == 4096
        assert geo.total_pages == 8 * 48 * 32

    def test_devices_build(self):
        regular = make_bench_regular()
        timessd = make_bench_timessd()
        assert regular.logical_pages == timessd.logical_pages

    def test_prefill_writes_working_set(self):
        ssd = make_bench_regular()
        prefill(ssd, 100)
        assert ssd.host_pages_written == 100
        assert ssd.mapping.mapped_count() == 100


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(("a", "bb"), [(1, 2.5), ("xyz", 3)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "2.500" in text
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # all rows padded to the same width

    def test_save_result_writes_file(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_RESULTS", str(tmp_path))
        path = save_result("smoke", "hello")
        with open(path) as handle:
            assert handle.read() == "hello\n"


class TestTraceExperiment:
    def test_run_volume_is_memoized(self):
        first = run_volume("fiu", "webusers", "regular", 0.5, days=1, seed=99)
        second = run_volume("fiu", "webusers", "regular", 0.5, days=1, seed=99)
        assert first is second

    def test_run_volume_produces_metrics(self):
        result = run_volume("msr", "usr", "timessd", 0.5, days=1, seed=98)
        assert result.requests >= 0
        assert result.write_amplification >= 0
        assert result.retention_days >= 0


class TestExperimentRunnersSmall:
    def test_iozone_runner(self):
        from repro.bench.fs_experiments import normalized, run_iozone

        results = run_iozone(file_pages=32, seed=1)
        norm = normalized({s: results[s]["RandomWrite"] for s in results})
        assert norm["Ext4"] == 1.0
        assert norm["TimeSSD"] > 1.0

    def test_postmark_runner(self):
        from repro.bench.fs_experiments import run_postmark

        tps = run_postmark(transactions=40, seed=1)
        assert set(tps) == {"Ext4", "F2FS", "TimeSSD"}
        assert all(v > 0 for v in tps.values())

    def test_security_runner_single_family(self):
        from repro.bench.security_experiments import run_family

        timing = run_family("Stampado", seed=3)
        assert timing.timessd_verified and timing.flashguard_verified
        assert timing.timessd_recovery_s > 0

    def test_query_runner_single_volume(self):
        from repro.bench.query_experiments import run_volume_queries

        row = run_volume_queries("fiu", "webusers", usage=0.4, days=1, seed=97)
        assert row.time_query_s > 0
        assert row.addr_query_all_ms > 0

    def test_revert_runner_small(self):
        from repro.bench.revert_experiments import run_fig11

        rows = run_fig11(commits=40, threads=(1, 2))
        assert len(rows) == 10
        assert all(r.verified for r in rows)

    def test_ablation_runner_small(self):
        from repro.bench.ablations import ablate_gc_threshold

        points = ablate_gc_threshold(volume="usr", usage=0.4, days=1, thresholds=(1.0,))
        assert len(points) == 1
        assert not points[0].aborted
