import pytest

from repro.fs import JournalingFS, PlainFS
from repro.workloads.content import ContentFactory
from repro.workloads.iozone import IOZoneWorkload
from repro.workloads.postmark import PostMarkWorkload
from repro.workloads.oltp import TATP, TPCB, TPCC, MiniOLTPEngine

from tests.conftest import make_regular_ssd, small_geometry


def big_fs(cls=PlainFS):
    return cls(make_regular_ssd(geometry=small_geometry(blocks_per_plane=128)))


class TestContentFactory:
    def test_fresh_then_mutate_is_similar(self):
        factory = ContentFactory(512, mutation_fraction=0.05)
        v1 = factory.fresh("k")
        v2 = factory.mutate("k")
        same = sum(1 for a, b in zip(v1, v2) if a == b)
        assert same > 512 * 0.9
        assert v1 != v2

    def test_mutate_without_fresh_creates(self):
        factory = ContentFactory(128)
        assert len(factory.mutate("new")) == 128

    def test_forget(self):
        factory = ContentFactory(128)
        factory.fresh("k")
        factory.forget("k")
        assert factory.current("k") is None

    def test_bad_fraction_rejected(self):
        from repro.common.errors import ReproError

        with pytest.raises(ReproError):
            ContentFactory(128, mutation_fraction=2.0)


class TestIOZone:
    def test_phases_produce_throughput(self):
        result = IOZoneWorkload(big_fs(), file_pages=64, carry_content=False).run()
        values = result.as_dict()
        assert set(values) == {"SeqWrite", "SeqRead", "RandomWrite", "RandomRead"}
        assert all(v > 0 for v in values.values())

    def test_reads_faster_than_writes(self):
        result = IOZoneWorkload(big_fs(), file_pages=64, carry_content=False).run()
        assert result.seq_read > result.seq_write
        assert result.rand_read > result.rand_write

    def test_journaling_slows_writes_not_reads(self):
        plain = IOZoneWorkload(big_fs(PlainFS), file_pages=64, carry_content=False).run()
        journal = IOZoneWorkload(big_fs(JournalingFS), file_pages=64, carry_content=False).run()
        assert plain.rand_write > 1.3 * journal.rand_write
        assert journal.seq_read == pytest.approx(plain.seq_read, rel=0.3)


class TestPostMark:
    def test_run_completes_and_counts(self):
        workload = PostMarkWorkload(big_fs(), nfiles=16, carry_content=False)
        result = workload.run(transactions=200)
        assert result.transactions == 200
        assert result.tps > 0
        assert (
            result.creates + result.deletes + result.reads + result.appends == 200
        )

    def test_pool_stays_bounded_below(self):
        workload = PostMarkWorkload(big_fs(), nfiles=16, carry_content=False)
        workload.run(transactions=300)
        assert len(workload._pool) >= 8


class TestMiniOLTP:
    def test_tatp_faster_than_tpcb_faster_than_tpcc(self):
        results = {}
        for profile in (TPCC, TPCB, TATP):
            engine = MiniOLTPEngine(big_fs(), table_pages=128, carry_content=False)
            results[profile.name] = engine.run(profile, transactions=150).tps
        assert results["TATP"] > results["TPCB"] > results["TPCC"]

    def test_write_probability_respected(self):
        engine = MiniOLTPEngine(big_fs(), table_pages=64, carry_content=False)
        result = engine.run(TATP, transactions=400)
        # TATP writes ~20% of transactions.
        assert result.pages_written < 0.35 * result.transactions

    def test_log_appends_sequential(self):
        engine = MiniOLTPEngine(big_fs(), table_pages=64, carry_content=False)
        engine.run(TPCB, transactions=50)
        assert engine._log_page == 50
