import pytest

from repro.common.errors import ReproError
from repro.workloads.io import load_msr_csv, load_trace_csv, save_trace_csv
from repro.workloads.msr import msr_trace
from repro.workloads.trace import TraceRecord

MSR_LINES = [
    "128166372003061629,hm,0,Read,383496192,32768,334534",
    "128166372016382155,hm,0,Write,2822144,4096,21706",
    "128166372026382245,hm,0,Write,2826240,8192,25170",
]


class TestMSRFormat:
    def test_parses_ops_and_sizes(self):
        records = load_msr_csv(MSR_LINES, page_size=4096)
        assert [r.op for r in records] == ["R", "W", "W"]
        assert records[0].npages == 8  # 32768 / 4096
        assert records[2].npages == 2  # 8192 / 4096

    def test_time_rebased_to_zero_in_microseconds(self):
        records = load_msr_csv(MSR_LINES)
        assert records[0].timestamp_us == 0
        # Second record is 13321052.6 us of ticks later.
        assert records[1].timestamp_us == (128166372016382155 - 128166372003061629) // 10

    def test_offsets_become_page_lpas(self):
        records = load_msr_csv(MSR_LINES, page_size=4096)
        assert records[1].lpa == 2822144 // 4096

    def test_wraps_into_device_space(self):
        records = load_msr_csv(MSR_LINES, page_size=4096, logical_pages=100)
        assert all(r.lpa < 100 for r in records)
        assert all(r.lpa + r.npages <= 100 for r in records)

    def test_rejects_garbage(self):
        with pytest.raises(ReproError):
            load_msr_csv(["not,a,valid,msr,line,x"])
        with pytest.raises(ReproError):
            load_msr_csv(["1,h,0,Frobnicate,0,4096,1"])
        with pytest.raises(ReproError):
            load_msr_csv(["1,h,0"])

    def test_blank_lines_skipped(self):
        records = load_msr_csv([MSR_LINES[0], "", MSR_LINES[1]])
        assert len(records) == 2

    def test_records_sorted_by_time(self):
        shuffled = [MSR_LINES[2], MSR_LINES[0], MSR_LINES[1]]
        records = load_msr_csv(shuffled, rebase_time=False)
        stamps = [r.timestamp_us for r in records]
        assert stamps == sorted(stamps)


class TestNativeFormat:
    def test_roundtrip(self, tmp_path):
        original = list(msr_trace("hm", 2048, days=1, seed=5, intensity_scale=20))
        path = str(tmp_path / "trace.csv")
        count = save_trace_csv(original, path)
        assert count == len(original)
        loaded = load_trace_csv(path)
        assert loaded == original

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("nope,nope\n1,W,2,3\n")
        with pytest.raises(ReproError):
            load_trace_csv(str(path))

    def test_bad_row_rejected(self, tmp_path):
        path = tmp_path / "bad2.csv"
        path.write_text("timestamp_us,op,lpa,npages\nx,W,2,3\n")
        with pytest.raises(ReproError):
            load_trace_csv(str(path))

    def test_empty_trace_roundtrip(self, tmp_path):
        path = str(tmp_path / "empty.csv")
        save_trace_csv([], path)
        assert load_trace_csv(path) == []


class TestReplayCompatibility:
    def test_msr_csv_replays_against_device(self):
        from repro.workloads.trace import TraceReplayer
        from tests.conftest import make_regular_ssd

        ssd = make_regular_ssd()
        records = load_msr_csv(MSR_LINES, page_size=4096, logical_pages=ssd.logical_pages)
        stats = TraceReplayer(ssd).replay(records)
        assert stats.requests == 3
        assert stats.pages_written == 3
