"""The mini transactional storage manager: atomicity + durability."""

import random

import pytest

from repro.common.errors import ReproError
from repro.fs import PlainFS
from repro.workloads.oltp.wal import BufferPool, LogRecord, TransactionalEngine, WriteAheadLog

from tests.conftest import make_regular_ssd, small_geometry


@pytest.fixture
def fs():
    return PlainFS(make_regular_ssd(geometry=small_geometry(blocks_per_plane=128)))


def page(fs, text):
    return text.encode().ljust(fs.page_size, b"\0")


class TestLogRecord:
    def test_roundtrip(self):
        record = LogRecord(7, 3, "update", 12, b"\x00\xff binary \x1e\x1f ok")
        assert LogRecord.decode(record.encode()) == record

    def test_corrupt_rejected(self):
        with pytest.raises(ReproError):
            LogRecord.decode(b"nope")


class TestWAL:
    def test_append_flush_readback(self, fs):
        wal = WriteAheadLog(fs)
        wal.append(1, "update", 5, b"abc")
        wal.append(1, "commit")
        wal.flush()
        records = wal.records()
        assert [r.kind for r in records] == ["update", "commit"]
        assert records[0].after_image == b"abc"

    def test_unflushed_records_not_durable(self, fs):
        wal = WriteAheadLog(fs)
        wal.append(1, "update", 5, b"abc")
        assert wal.records() == []

    def test_log_spans_pages(self, fs):
        wal = WriteAheadLog(fs)
        big = bytes(range(256)) * 4  # 1 KiB after-image each
        for i in range(8):
            wal.append(1, "update", i, big)
        wal.flush()
        assert len(wal.records()) == 8


class TestBufferPool:
    def test_hit_miss_accounting(self, fs):
        pool = BufferPool(fs, capacity=4, table_pages=16)
        pool.get(1)
        pool.get(1)
        assert pool.misses == 1
        assert pool.hits == 1

    def test_lru_eviction_writes_dirty(self, fs):
        pool = BufferPool(fs, capacity=2, table_pages=16)
        pool.put(0, page(fs, "dirty0"))
        pool.get(1)
        pool.get(2)  # evicts page 0 (dirty -> written through)
        assert fs.read_pages(pool.name, 0, 1)[0] == page(fs, "dirty0")

    def test_drop_volatile_loses_unflushed(self, fs):
        pool = BufferPool(fs, capacity=4, table_pages=16)
        pool.put(0, page(fs, "volatile"))
        pool.drop_volatile()
        assert pool.get(0) == bytes(fs.page_size)  # back to durable state


class TestTransactions:
    def test_commit_is_visible_and_durable(self, fs):
        engine = TransactionalEngine(fs, table_pages=32)
        txn = engine.begin()
        engine.write(txn, 3, page(fs, "hello"))
        engine.commit(txn)
        txn2 = engine.begin()
        assert engine.read(txn2, 3) == page(fs, "hello")

    def test_own_writes_visible_before_commit(self, fs):
        engine = TransactionalEngine(fs, table_pages=32)
        txn = engine.begin()
        engine.write(txn, 3, page(fs, "mine"))
        assert engine.read(txn, 3) == page(fs, "mine")

    def test_abort_discards(self, fs):
        engine = TransactionalEngine(fs, table_pages=32)
        txn = engine.begin()
        engine.write(txn, 3, page(fs, "rollback-me"))
        engine.abort(txn)
        txn2 = engine.begin()
        assert engine.read(txn2, 3) == bytes(fs.page_size)

    def test_wrong_size_write_rejected(self, fs):
        engine = TransactionalEngine(fs, table_pages=32)
        txn = engine.begin()
        with pytest.raises(ReproError):
            engine.write(txn, 3, b"short")

    def test_unknown_txn_rejected(self, fs):
        engine = TransactionalEngine(fs, table_pages=32)
        with pytest.raises(ReproError):
            engine.commit(99)


class TestCrashRecovery:
    def test_committed_survive_crash(self, fs):
        engine = TransactionalEngine(fs, table_pages=32, checkpoint_every=1000)
        txn = engine.begin()
        engine.write(txn, 5, page(fs, "durable"))
        engine.commit(txn)
        engine.crash()
        engine.recover()
        txn2 = engine.begin()
        assert engine.read(txn2, 5) == page(fs, "durable")

    def test_uncommitted_do_not_survive(self, fs):
        engine = TransactionalEngine(fs, table_pages=32, checkpoint_every=1000)
        txn = engine.begin()
        engine.write(txn, 5, page(fs, "ghost"))
        engine.crash()  # no commit
        engine.recover()
        txn2 = engine.begin()
        assert engine.read(txn2, 5) == bytes(fs.page_size)

    def test_checkpoint_bounds_redo_work(self, fs):
        engine = TransactionalEngine(fs, table_pages=32, checkpoint_every=2)
        for i in range(6):
            txn = engine.begin()
            engine.write(txn, i, page(fs, "v%d" % i))
            engine.commit(txn)
        assert engine.checkpoints == 3
        engine.crash()
        redone = engine.recover()
        # Only work since the last checkpoint gets replayed.
        assert redone <= 2 * 2

    def test_randomized_crash_consistency(self, fs):
        """Property: after any crash point, recovery yields exactly the
        committed prefix of history."""
        engine = TransactionalEngine(fs, table_pages=16, checkpoint_every=5)
        rng = random.Random(17)
        committed_state = {}
        for step in range(40):
            txn = engine.begin()
            pages = rng.sample(range(16), rng.randrange(1, 3))
            writes = {p: page(fs, "s%d-p%d" % (step, p)) for p in pages}
            for p, data in writes.items():
                engine.write(txn, p, data)
            if rng.random() < 0.8:
                engine.commit(txn)
                committed_state.update(writes)
            else:
                engine.abort(txn)
            if rng.random() < 0.15:
                engine.crash()
                engine.recover()
                check = engine.begin()
                for p, data in committed_state.items():
                    assert engine.read(check, p) == data
                engine.abort(check)
        engine.crash()
        engine.recover()
        check = engine.begin()
        for p, data in committed_state.items():
            assert engine.read(check, p) == data
