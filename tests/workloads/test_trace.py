import pytest

from repro.common.units import DAY_US
from repro.workloads.trace import ReplayStats, TraceRecord, TraceReplayer
from repro.workloads.msr import MSR_VOLUMES, msr_trace
from repro.workloads.fiu import FIU_VOLUMES, fiu_trace
from repro.workloads.synthetic import synthetic_trace, trace_write_volume_pages

from tests.conftest import make_regular_ssd, make_timessd


class TestTraceRecord:
    def test_valid_ops(self):
        for op in ("R", "W", "T"):
            TraceRecord(0, op, 0)

    def test_invalid_op_rejected(self):
        with pytest.raises(ValueError):
            TraceRecord(0, "X", 0)

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            TraceRecord(0, "W", 0, npages=0)


class TestReplayer:
    def test_replay_applies_writes(self):
        ssd = make_regular_ssd()
        trace = [
            TraceRecord(100, "W", 0, 2),
            TraceRecord(5000, "R", 0, 2),
            TraceRecord(9000, "T", 0, 1),
        ]
        stats = TraceReplayer(ssd).replay(trace)
        assert stats.requests == 3
        assert stats.pages_written == 2
        assert stats.pages_read == 2
        assert not ssd.mapping.is_mapped(0)
        assert ssd.mapping.is_mapped(1)

    def test_replay_honours_timestamps(self):
        ssd = make_regular_ssd()
        TraceReplayer(ssd).replay([TraceRecord(50_000, "W", 0, 1)])
        assert ssd.clock.now_us >= 50_000

    def test_replay_records_response_times(self):
        ssd = make_regular_ssd()
        stats = TraceReplayer(ssd).replay(
            [TraceRecord(i * 10_000, "W", i, 1) for i in range(10)]
        )
        assert stats.response.count == 10
        assert stats.response.mean_us >= ssd.device.timing.program_us

    def test_replay_stops_cleanly_on_device_full(self):
        ssd = make_timessd(retention_floor_us=10**15)
        trace = (
            TraceRecord(i * 100, "W", i % 50, 1) for i in range(20_000)
        )
        stats = TraceReplayer(ssd).replay(trace)
        assert stats.aborted_at is not None


class TestSyntheticTraces:
    def test_msr_volumes_complete(self):
        assert set(MSR_VOLUMES) == {"hm", "rsrch", "src", "stg", "ts", "usr", "wdev"}

    def test_fiu_volumes_complete(self):
        assert set(FIU_VOLUMES) == {
            "research",
            "webmail",
            "online",
            "web-online",
            "webusers",
        }

    def test_trace_is_time_ordered_and_bounded(self):
        records = list(msr_trace("hm", logical_pages=2048, days=2, seed=1))
        assert records, "trace should not be empty"
        stamps = [r.timestamp_us for r in records]
        assert stamps == sorted(stamps)
        assert stamps[-1] < 2 * DAY_US
        assert all(0 <= r.lpa < 2048 for r in records)
        assert all(r.lpa + r.npages <= 2048 for r in records)

    def test_write_ratio_approximated(self):
        # Scale intensity up so the sample is large enough to estimate.
        records = list(
            msr_trace("rsrch", logical_pages=4096, days=7, seed=2, intensity_scale=50)
        )
        assert len(records) > 500
        writes = sum(1 for r in records if r.op == "W")
        ratio = writes / len(records)
        assert abs(ratio - MSR_VOLUMES["rsrch"].write_ratio) < 0.08

    def test_determinism_per_seed(self):
        a = list(fiu_trace("webmail", 4096, days=7, seed=7, intensity_scale=30))
        b = list(fiu_trace("webmail", 4096, days=7, seed=7, intensity_scale=30))
        assert a and a == b
        c = list(fiu_trace("webmail", 4096, days=7, seed=8, intensity_scale=30))
        assert a != c

    def test_intensity_scale_scales_volume(self):
        # Longer horizon so burst randomness averages out (4x intensity
        # should give roughly 4x the requests).
        low = list(msr_trace("hm", 4096, days=7, seed=1, intensity_scale=10))
        high = list(msr_trace("hm", 4096, days=7, seed=1, intensity_scale=40))
        assert 2.5 * len(low) < len(high) < 6 * len(low)

    def test_hot_pages_dominate(self):
        from repro.workloads.synthetic import VolumeProfile

        profile = VolumeProfile(
            name="t", write_ratio=1.0, daily_turnover=2.0, working_set=0.5,
            hot_fraction=0.1, hot_access_prob=0.9, seq_prob=0.0,
        )
        records = list(synthetic_trace(profile, 10_000, days=1, seed=3))
        working = int(10_000 * 0.5)
        hot_limit = int(working * 0.1)
        hot = sum(1 for r in records if r.lpa < hot_limit)
        assert hot / len(records) > 0.7

    def test_expected_write_volume_helper(self):
        profile = MSR_VOLUMES["hm"]
        expected = trace_write_volume_pages(profile, 10_000, days=2)
        working = int(10_000 * profile.working_set)
        assert expected == int(profile.daily_turnover * working * 2)

    def test_max_requests_cap(self):
        records = list(msr_trace("src", 4096, days=7, seed=1, max_requests=100))
        assert len(records) == 100
