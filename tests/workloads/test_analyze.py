"""Trace analyzer, and synthesizer-fidelity checks built on it."""

import pytest

from repro.common.units import DAY_US
from repro.workloads.analyze import analyze_trace
from repro.workloads.msr import MSR_VOLUMES, msr_trace
from repro.workloads.fiu import FIU_VOLUMES, fiu_trace
from repro.workloads.trace import TraceRecord


class TestAnalyzer:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            analyze_trace([])

    def test_basic_counts(self):
        stats = analyze_trace(
            [
                TraceRecord(0, "W", 0, 2),
                TraceRecord(1000, "R", 0, 1),
                TraceRecord(2000, "W", 2, 1),  # sequential after first W
            ]
        )
        assert stats.requests == 3
        assert stats.pages_written == 3
        assert stats.pages_read == 1
        assert stats.write_ratio == pytest.approx(2 / 3)
        assert stats.working_set_pages == 3

    def test_sequentiality_detection(self):
        seq = analyze_trace(
            [TraceRecord(i * 10, "W", i * 2, 2) for i in range(50)]
        )
        rand = analyze_trace(
            [TraceRecord(i * 10, "W", (i * 37) % 100, 1) for i in range(50)]
        )
        assert seq.sequentiality > 0.9
        assert rand.sequentiality < 0.2

    def test_idle_fraction(self):
        # One giant gap dominates the duration.
        stats = analyze_trace(
            [TraceRecord(0, "W", 0, 1), TraceRecord(10_000_000, "W", 1, 1)]
        )
        assert stats.idle_fraction > 0.99

    def test_hot_half_skew(self):
        skewed = [TraceRecord(i * 10, "W", 0, 1) for i in range(90)]
        skewed += [TraceRecord(1000 + i * 10, "W", i + 1, 1) for i in range(10)]
        stats = analyze_trace(skewed)
        assert stats.hot_half_fraction < 0.2

    def test_summary_renders(self):
        stats = analyze_trace([TraceRecord(0, "W", 0, 1), TraceRecord(10, "R", 1, 1)])
        text = stats.summary()
        assert "write ratio" in text


class TestSynthesizerFidelity:
    """The generated traces actually exhibit their volume profiles."""

    @pytest.mark.parametrize("volume", sorted(MSR_VOLUMES))
    def test_msr_write_ratios(self, volume):
        records = list(
            msr_trace(volume, 8192, days=7, seed=3, intensity_scale=40)
        )
        stats = analyze_trace(records)
        assert abs(stats.write_ratio - MSR_VOLUMES[volume].write_ratio) < 0.10

    @pytest.mark.parametrize("volume", sorted(FIU_VOLUMES))
    def test_fiu_write_ratios(self, volume):
        records = list(
            fiu_trace(volume, 8192, days=7, seed=3, intensity_scale=60)
        )
        stats = analyze_trace(records)
        assert abs(stats.write_ratio - FIU_VOLUMES[volume].write_ratio) < 0.10

    def test_turnover_close_to_profile(self):
        profile = MSR_VOLUMES["hm"]
        records = list(
            msr_trace("hm", 8192, days=7, seed=2, intensity_scale=30)
        )
        stats = analyze_trace(records)
        target = profile.daily_turnover * 30
        assert 0.4 * target < stats.daily_turnover < 2.5 * target

    def test_traces_are_mostly_idle(self):
        records = list(msr_trace("usr", 8192, days=7, seed=1, intensity_scale=5))
        stats = analyze_trace(records)
        assert stats.idle_fraction > 0.9  # light volumes are idle-rich
