import pytest

from repro.common.errors import RetentionViolationError
from repro.workloads.trace import TraceRecord, TraceReplayer

from tests.conftest import make_regular_ssd, make_timessd


def test_strict_mode_raises_instead_of_stopping():
    ssd = make_timessd(retention_floor_us=10**15)
    trace = (TraceRecord(i * 100, "W", i % 50, 1) for i in range(50_000))
    with pytest.raises(RetentionViolationError):
        TraceReplayer(ssd).replay(trace, stop_on_device_full=False)


def test_trim_records_unmap_ranges():
    ssd = make_regular_ssd()
    TraceReplayer(ssd).replay(
        [
            TraceRecord(0, "W", 10, 4),
            TraceRecord(1000, "T", 10, 3),
        ]
    )
    assert not ssd.mapping.is_mapped(10)
    assert not ssd.mapping.is_mapped(12)
    assert ssd.mapping.is_mapped(13)


def test_reads_of_unwritten_space_are_cheap():
    ssd = make_regular_ssd()
    stats = TraceReplayer(ssd).replay([TraceRecord(0, "R", 100, 4)])
    assert stats.pages_read == 4
    assert stats.response.mean_us == 0


def test_empty_trace():
    ssd = make_regular_ssd()
    stats = TraceReplayer(ssd).replay([])
    assert stats.requests == 0
    assert stats.aborted_at is None


def test_out_of_order_timestamps_tolerated():
    """A timestamp behind device time must not crash the replay (the
    clock is monotonic; the request simply queues immediately)."""
    ssd = make_regular_ssd()
    stats = TraceReplayer(ssd).replay(
        [
            TraceRecord(50_000, "W", 0, 1),
            TraceRecord(10, "W", 1, 1),  # in the past by then
        ]
    )
    assert stats.requests == 2
    assert ssd.clock.now_us >= 50_000
