import pytest

from repro.common.units import MINUTE_US, SECOND_US
from repro.casestudies import FileRevertStudy, KERNEL_FILES
from repro.fs import PlainFS
from repro.timessd.config import ContentMode, TimeSSDConfig
from repro.timessd.ssd import TimeSSD

from tests.conftest import small_geometry


@pytest.fixture
def study():
    ssd = TimeSSD(
        TimeSSDConfig(
            geometry=small_geometry(blocks_per_plane=128),
            content_mode=ContentMode.REAL,
            retention_floor_us=3600 * SECOND_US,
        )
    )
    fs = PlainFS(ssd)
    s = FileRevertStudy(fs, files=KERNEL_FILES[:4], pages_per_file=6, seed=1)
    s.setup()
    return s


def test_kernel_file_list():
    assert len(KERNEL_FILES) == 10
    assert "mmap.c" in KERNEL_FILES


def test_setup_creates_files(study):
    assert sorted(study.fs.list_files()) == sorted(KERNEL_FILES[:4])


def test_commit_stream_mutates_files(study):
    log = study.replay_commits(commits=40, commits_per_minute=100)
    assert len(log) == 40
    touched = {name for entry in log for name in entry.files}
    assert touched <= set(KERNEL_FILES[:4])
    # History grew beyond the initial snapshot for touched files.
    assert any(len(stamps) > 1 for stamps in study.history.values())


def test_revert_restores_exact_past_content(study):
    study.replay_commits(commits=40, commits_per_minute=100)
    t_past = study.fs.ssd.clock.now_us - MINUTE_US // 6
    outcome = study.revert_file("mmap.c", t_past, threads=1)
    assert outcome.verified
    assert outcome.elapsed_us > 0


def test_more_threads_recover_faster(study):
    study.replay_commits(commits=60, commits_per_minute=100)
    t_past = study.fs.ssd.clock.now_us - MINUTE_US // 6
    times = {}
    for threads in (1, 2, 4):
        outcome = study.revert_file("slab.c", t_past, threads=threads, verify=False)
        times[threads] = outcome.elapsed_us
    assert times[4] < times[1]


def test_snapshot_as_of_picks_correct_epoch(study):
    study.replay_commits(commits=10, commits_per_minute=100)
    name = "mmap.c"
    stamps = sorted(study.history[name])
    mid = stamps[len(stamps) // 2]
    snap = study.snapshot_as_of(name, mid)
    assert snap == study.history[name][mid]
