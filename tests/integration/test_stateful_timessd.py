"""Hypothesis stateful test: TimeSSD vs a perfect-recall model.

Random interleavings of writes, trims, clock advances, reads and
rollbacks run against a tiny real-content TimeSSD while a Python dict
keeps perfect history.  Invariants checked continuously:

* a read always returns the newest written content (or None after trim);
* every version the device reports matches a (timestamp, content) pair
  that was actually written;
* the version chain is strictly newest-first;
* rollback restores exactly the content that was current at the target
  time (when that version is still retained).
"""

import hypothesis.strategies as st
from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.common.errors import RetentionViolationError
from repro.common.units import SECOND_US
from repro.timekits.api import TimeKits
from repro.timessd.config import ContentMode, TimeSSDConfig
from repro.timessd.ssd import TimeSSD

from tests.conftest import small_geometry

LPAS = st.integers(min_value=0, max_value=15)
PAYLOAD_SEEDS = st.integers(min_value=0, max_value=255)


class TimeSSDMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.ssd = TimeSSD(
            TimeSSDConfig(
                geometry=small_geometry(blocks_per_plane=32),
                content_mode=ContentMode.REAL,
                retention_floor_us=3600 * SECOND_US,
                bloom_capacity=64,
            )
        )
        self.kits = TimeKits(self.ssd)
        self.page_size = self.ssd.device.geometry.page_size
        # lpa -> list of (timestamp, content); None content means trimmed.
        self.history = {}
        self.full = False

    def _payload(self, lpa, seed):
        body = b"%03d:%03d:%012d" % (lpa, seed, self.ssd.clock.now_us)
        return body.ljust(self.page_size, bytes([seed]))

    @rule(lpa=LPAS, seed=PAYLOAD_SEEDS)
    def write(self, lpa, seed):
        if self.full:
            return
        payload = self._payload(lpa, seed)
        stamp = self.ssd.clock.now_us
        try:
            self.ssd.write(lpa, payload)
        except RetentionViolationError:
            self.full = True
            return
        self.history.setdefault(lpa, []).append((stamp, payload))
        self.ssd.clock.advance(1000)

    @rule(lpa=LPAS)
    def trim(self, lpa):
        if self.full:
            return
        self.ssd.trim(lpa)
        if self.history.get(lpa):
            self.history[lpa].append((self.ssd.clock.now_us, None))
        self.ssd.clock.advance(1000)

    @rule(delta_ms=st.integers(min_value=1, max_value=50_000))
    def advance(self, delta_ms):
        self.ssd.clock.advance(delta_ms * 1000)

    def _current(self, lpa):
        entries = [e for e in self.history.get(lpa, []) if e[1] is not None]
        trims = [e for e in self.history.get(lpa, []) if e[1] is None]
        if not self.history.get(lpa):
            return None
        last = self.history[lpa][-1]
        return last[1]

    @rule(lpa=LPAS)
    def read_matches_model(self, lpa):
        data, _ = self.ssd.read(lpa)
        expected = self._current(lpa)
        assert data == expected

    @rule(lpa=LPAS)
    def chain_is_sound(self, lpa):
        if self.full:
            return
        versions, _ = self.ssd.version_chain(lpa)
        stamps = [v.timestamp_us for v in versions]
        assert stamps == sorted(stamps, reverse=True), "chain not newest-first"
        written = {
            ts: content for ts, content in self.history.get(lpa, []) if content is not None
        }
        for v in versions:
            assert v.timestamp_us in written, "phantom version"
            assert v.data == written[v.timestamp_us], "version content corrupted"

    @rule(lpa=LPAS, back_ms=st.integers(min_value=0, max_value=100_000))
    def rollback_restores_past(self, lpa, back_ms):
        if self.full or not self.history.get(lpa):
            return
        t = max(0, self.ssd.clock.now_us - back_ms * 1000)
        versions, _ = self.ssd.version_chain(lpa)
        if not versions:
            return
        candidates = [v for v in versions if v.timestamp_us <= t]
        target = candidates[0] if candidates else versions[-1]
        try:
            self.kits.rollback(lpa, cnt=1, t=t)
        except RetentionViolationError:
            self.full = True
            return
        data, _ = self.ssd.read(lpa)
        assert data == target.data
        if data != self._current(lpa):
            # The rollback wrote a new version; mirror it in the model
            # with the timestamp the device actually stamped.
            head = self.ssd.mapping.lookup(lpa)
            actual_ts = self.ssd.device.peek_page(head).oob.timestamp_us
            self.history.setdefault(lpa, []).append((actual_ts, data))

    @invariant()
    def accounting_is_sane(self):
        assert self.ssd.retained_pages >= 0
        assert self.ssd.block_manager.free_block_count >= 0


TestTimeSSDStateful = TimeSSDMachine.TestCase
TestTimeSSDStateful.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None
)
