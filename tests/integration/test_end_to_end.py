"""End-to-end integration: the whole stack working together."""

import random

import pytest

from repro.common.units import DAY_US, SECOND_US
from repro.flash.page import PageState
from repro.fs import PlainFS
from repro.ftl.block_manager import BlockKind
from repro.nvme import HostNVMeDriver
from repro.timekits import FileRecovery, TimeKits
from repro.timessd.config import ContentMode
from repro.workloads.msr import msr_trace
from repro.workloads.trace import TraceReplayer

from tests.conftest import make_timessd, small_geometry


class TestTraceDrivenConsistency:
    """Replay a realistic trace, then audit the device's entire state."""

    @pytest.fixture(scope="class")
    def replayed(self):
        ssd = make_timessd(
            geometry=small_geometry(blocks_per_plane=64, pages_per_block=32),
            retention_floor_us=2 * SECOND_US,
            bloom_segment_max_age_us=SECOND_US,
        )
        working = ssd.logical_pages // 2
        trace = list(
            msr_trace(
                "src",
                ssd.logical_pages,
                days=2,
                seed=4,
                intensity_scale=400,
                working_pages=working,
            )
        )
        stats = TraceReplayer(ssd).replay(trace)
        assert stats.aborted_at is None
        assert stats.requests > 2000
        return ssd, stats

    def test_gc_ran_and_device_survived(self, replayed):
        ssd, _stats = replayed
        assert ssd.gc_runs + ssd.background_gc_runs > 0
        assert ssd.block_manager.free_block_count > 0

    def test_pvt_agrees_with_mapping(self, replayed):
        """Every mapped LPA's head page is valid; no valid page is
        unreachable from the mapping."""
        ssd, _ = replayed
        valid_ppas = set()
        for lpa in ssd.mapping.mapped_lpas():
            ppa = ssd.mapping.lookup(lpa)
            assert ssd.block_manager.is_valid(ppa), "mapped head not valid"
            valid_ppas.add(ppa)
        geo = ssd.device.geometry
        for pba in range(geo.total_blocks):
            for ppa in geo.pages_of_block(pba):
                if ssd.block_manager.is_valid(ppa):
                    assert ppa in valid_ppas, "orphan valid page %d" % ppa

    def test_valid_pages_hold_their_lpa(self, replayed):
        ssd, _ = replayed
        for lpa in ssd.mapping.mapped_lpas():
            page = ssd.device.peek_page(ssd.mapping.lookup(lpa))
            assert page.state is PageState.PROGRAMMED
            assert page.oob.lpa == lpa

    def test_prt_only_marks_invalid_pages(self, replayed):
        ssd, _ = replayed
        for ppa in list(ssd.index._reclaimable):
            assert not ssd.block_manager.is_valid(ppa)

    def test_chains_timestamp_ordered_everywhere(self, replayed):
        ssd, _ = replayed
        for lpa in list(ssd.mapping.mapped_lpas())[::17]:
            versions, _ = ssd.version_chain(lpa)
            stamps = [v.timestamp_us for v in versions]
            assert stamps == sorted(stamps, reverse=True)

    def test_free_blocks_really_are_erased(self, replayed):
        ssd, _ = replayed
        geo = ssd.device.geometry
        for pba in range(geo.total_blocks):
            if ssd.block_manager.kind(pba) is BlockKind.FREE:
                assert ssd.device.blocks[pba].is_erased

    def test_retention_window_respects_floor(self, replayed):
        ssd, _ = replayed
        # The run never aborted, so the window never dipped below floor
        # while serving writes.
        assert ssd.retention_window_us() >= 0


class TestFullStackRecovery:
    """NVMe driver -> file system -> attack -> TimeKits recovery."""

    def test_file_written_through_fs_recovered_through_nvme(self):
        ssd = make_timessd(
            geometry=small_geometry(blocks_per_plane=64),
            content_mode=ContentMode.REAL,
            retention_floor_us=3600 * SECOND_US,
        )
        fs = PlainFS(ssd)
        driver = HostNVMeDriver(ssd)

        fs.create("report.doc")
        original = b"quarterly numbers".ljust(fs.page_size, b".")
        fs.write("report.doc", 0, original)
        t_good = ssd.clock.now_us
        ssd.clock.advance(SECOND_US)

        # Corruption happens through a *different* interface (raw NVMe
        # write, e.g. malware bypassing the FS).
        lpa = fs.file_lpas("report.doc")[0]
        driver.write(lpa, [b"garbage".ljust(fs.page_size, b"!")])

        # Recovery through the vendor NVMe command set.
        driver.rollback(lpa, t=t_good)
        assert fs.read("report.doc", 0, len(original)) == original

    def test_fs_level_recovery_after_heavy_churn(self):
        ssd = make_timessd(
            geometry=small_geometry(blocks_per_plane=64),
            content_mode=ContentMode.REAL,
            retention_floor_us=3600 * SECOND_US,
        )
        fs = PlainFS(ssd)
        rng = random.Random(8)
        fs.create("db.bin")
        snapshots = {}
        for round_no in range(12):
            for page in range(6):
                body = (b"r%02dp%d" % (round_no, page)).ljust(fs.page_size, b"\x0a")
                fs.write_pages("db.bin", page, 1, [body])
            snapshots[ssd.clock.now_us] = fs.read(
                "db.bin", 0, 6 * fs.page_size
            )
            ssd.clock.advance(5 * SECOND_US)
            # Background noise from other "applications".
            for _ in range(30):
                fs_lpa = rng.randrange(100, 400)
                noise = bytes([rng.randrange(256)]) * fs.page_size
                ssd.write(fs_lpa, noise)
                ssd.clock.advance(20_000)
        kits = TimeKits(ssd)
        recovery = FileRecovery(kits)
        # Restore to the third snapshot and verify byte-exactness.
        target_ts = sorted(snapshots)[2]
        recovery.recover_file("db.bin", fs.file_lpas("db.bin"), target_ts, threads=4)
        assert fs.read("db.bin", 0, 6 * fs.page_size) == snapshots[target_ts]
