"""Bit-for-bit determinism: the whole simulation is seeded.

Reproducibility is a deliverable — every experiment in EXPERIMENTS.md
must come out identical on re-run.  These tests run the same scenario
twice from scratch and require identical results.
"""

import pytest

from repro.common.units import SECOND_US
from repro.workloads.msr import msr_trace
from repro.workloads.trace import TraceReplayer

from tests.conftest import make_regular_ssd, make_timessd, small_geometry


def _replay_fingerprint():
    ssd = make_timessd(
        geometry=small_geometry(blocks_per_plane=48),
        retention_floor_us=2 * SECOND_US,
        bloom_segment_max_age_us=SECOND_US,
    )
    trace = msr_trace(
        "src",
        ssd.logical_pages,
        days=1,
        seed=6,
        intensity_scale=300,
        working_pages=ssd.logical_pages // 2,
    )
    stats = TraceReplayer(ssd).replay(trace)
    return (
        stats.requests,
        stats.pages_written,
        round(stats.response.mean_us, 6),
        round(ssd.write_amplification, 9),
        ssd.retention_window_us(),
        ssd.gc_runs,
        ssd.background_gc_runs,
        ssd.retained_pages,
        ssd.deltas.records_created,
        ssd.device.counters.page_programs,
        ssd.device.counters.block_erases,
        ssd.clock.now_us,
    )


def test_timessd_replay_is_deterministic():
    assert _replay_fingerprint() == _replay_fingerprint()


def test_regular_ssd_churn_is_deterministic():
    import random

    def run():
        ssd = make_regular_ssd()
        rng = random.Random(77)
        for lpa in range(ssd.logical_pages // 2):
            ssd.write(lpa)
        for _ in range(3000):
            ssd.write(rng.randrange(ssd.logical_pages // 2))
            ssd.clock.advance(300)
        return (
            ssd.device.counters.page_programs,
            ssd.device.counters.block_erases,
            tuple(ssd.device.block_erase_counts()),
            round(ssd.write_latency.mean_us, 9),
        )

    assert run() == run()


def test_bench_runner_is_deterministic():
    from repro.bench.trace_experiments import _CACHE, run_volume

    first = run_volume("fiu", "online", "timessd", 0.4, days=2, seed=55)
    _CACHE.clear()  # force a genuine re-run
    second = run_volume("fiu", "online", "timessd", 0.4, days=2, seed=55)
    assert first == second
