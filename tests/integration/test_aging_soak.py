"""Month-scale aging soak: scrub + retry keep an aging device readable.

The ISSUE 7 acceptance drill: a seeded TimeSSD workload spanning a
simulated month of retention leakage completes with zero user-visible
:class:`UncorrectableReadError` when the read-retry ladder and patrol
scrub are on — and demonstrably fails when both defenses are disabled.
The error model is deterministic per seed, so so is the whole soak.
"""

import random

import pytest

from repro.common.units import HOUR_US
from repro.flash.reliability import FlashReliability, UncorrectableReadError

from tests.conftest import make_timessd

WORKING_SET = 48
EPOCHS = 24          # 24 x 30 h = a 720-hour (30-day) month
EPOCH_US = 30 * HOUR_US
GAP_US = 15_000      # wide enough for the idle machinery to open windows
SEED = 0x50A4


def aging_model(seed=SEED):
    # Fresh pages sit far under the 16-bit budget; by ~350 h of
    # retention a page crosses it, so an undefended month must fail.
    return FlashReliability(
        raw_bit_error_rate=2e-4,
        ecc_correctable_bits=16,
        retention_ber_per_hour=0.05,
        read_disturb_ber_per_read=1e-3,
        retry_ber_factor=0.5,
        seed=seed,
    )


def run_soak(defended, seed=SEED):
    """Fill, then a month of epoch reads + light churn; count errors."""
    overrides = dict(reliability=aging_model(seed), patrol_scrub=defended)
    if not defended:
        overrides["read_retry_limit"] = 0
    ssd = make_timessd(**overrides)
    rng = random.Random(seed)
    errors = 0
    for lpa in range(WORKING_SET):
        ssd.write(lpa)
        ssd.clock.advance(GAP_US)
    for _epoch in range(EPOCHS):
        ssd.clock.advance(EPOCH_US)
        for lpa in range(WORKING_SET):
            try:
                ssd.read(lpa)
            except UncorrectableReadError:
                errors += 1
            ssd.clock.advance(GAP_US)
        for _ in range(4):  # churn keeps GC/compression honest
            ssd.write(rng.randrange(WORKING_SET))
            ssd.clock.advance(GAP_US)
    return ssd, errors


class TestAgingSoak:
    def test_defended_month_has_zero_user_visible_errors(self):
        ssd, errors = run_soak(defended=True)
        assert errors == 0
        counters = ssd.obs.metrics.snapshot()["counters"]
        # The month was survivable *because* the defenses worked, not
        # because the model was idle: scrub really patrolled + refreshed.
        assert counters["scrub.patrol_reads"] > 0
        assert counters["scrub.refreshed_valid"] > 0
        assert counters["flash.ecc.corrected_reads"] > 0
        assert counters["reliability.retry_exhausted"] == 0

    def test_undefended_month_loses_data(self):
        ssd, errors = run_soak(defended=False)
        assert errors > 0
        counters = ssd.obs.metrics.snapshot()["counters"]
        # The engine sees every failed media read — the host-visible
        # errors plus the ones background GC/compression contained.
        assert counters["flash.ecc.uncorrectable_reads"] >= errors

    def test_soak_is_deterministic_per_seed(self):
        snapshots = []
        for _ in range(2):
            ssd, errors = run_soak(defended=True)
            assert errors == 0
            snapshots.append(ssd.obs.metrics.snapshot()["counters"])
        assert snapshots[0] == snapshots[1]

    @pytest.mark.parametrize("seed", [1, 2])
    def test_other_seeds_also_survive_when_defended(self, seed):
        _ssd, errors = run_soak(defended=True, seed=seed)
        assert errors == 0
