"""Two recovery paths for the same database: its own WAL, or TimeKits.

A crash is survivable by the engine's WAL.  A *malicious* corruption
that also destroys the WAL is not — that is exactly the paper's threat
model, and the firmware's retained history still recovers the database.
"""

import pytest

from repro.common.units import SECOND_US
from repro.fs import PlainFS
from repro.timekits import TimeKits
from repro.timessd.config import ContentMode, TimeSSDConfig
from repro.timessd.ssd import TimeSSD
from repro.workloads.oltp.wal import TransactionalEngine

from tests.conftest import small_geometry


@pytest.fixture
def stack():
    ssd = TimeSSD(
        TimeSSDConfig(
            geometry=small_geometry(blocks_per_plane=128),
            content_mode=ContentMode.REAL,
            retention_floor_us=3600 * SECOND_US,
        )
    )
    fs = PlainFS(ssd)
    engine = TransactionalEngine(fs, table_pages=32, checkpoint_every=4)
    return ssd, fs, engine


def commit_rows(engine, fs, n, tag):
    state = {}
    for i in range(n):
        txn = engine.begin()
        data = ("%s-%d" % (tag, i)).encode().ljust(fs.page_size, b"\0")
        engine.write(txn, i % 16, data)
        engine.commit(txn)
        state[i % 16] = data
        fs.ssd.clock.advance(2000)
    return state


def test_crash_recovery_via_wal(stack):
    _ssd, fs, engine = stack
    state = commit_rows(engine, fs, 10, "row")
    engine.crash()
    engine.recover()
    check = engine.begin()
    for page_index, data in state.items():
        assert engine.read(check, page_index) == data


def test_malicious_corruption_defeats_wal_but_not_timekits(stack):
    ssd, fs, engine = stack
    state = commit_rows(engine, fs, 10, "row")
    engine.checkpoint()  # durable, consistent on-device state
    t_clean = ssd.clock.now_us
    ssd.clock.advance(SECOND_US)

    # The attacker (kernel privileges) shreds BOTH the table file and
    # the WAL at device level — software recovery has nothing left.
    garbage = b"\xde\xad" * (fs.page_size // 2)
    for name in (engine.pool.name, engine.wal.name):
        for lpa in fs.file_lpas(name):
            ssd.write(lpa, garbage)

    engine.crash()
    engine.recover()  # WAL replay reads shredded log: nothing to redo
    check = engine.begin()
    corrupted = any(
        engine.read(check, page_index) != data for page_index, data in state.items()
    )
    assert corrupted, "corruption should have defeated software recovery"
    engine.abort(check)

    # Firmware time travel: roll every device page back to t_clean.
    kits = TimeKits(ssd)
    kits.rollback_all(t_clean, threads=4)
    engine.crash()  # drop any stale cache
    engine.recover()
    check = engine.begin()
    for page_index, data in state.items():
        assert engine.read(check, page_index) == data
