"""Differential oracle: RegularSSD and TimeSSD must agree with a model dict.

The same seeded op stream drives both devices plus an in-memory model of
the logical address space.  Read-your-writes equivalence is checked at
every step — any divergence between the two FTLs (or between either FTL
and the model) fails immediately with the op index.  A second harness
power-cuts both devices mid-stream and checks that every acknowledged
write survives recovery on both.
"""

import random

import pytest

from repro.common.units import SECOND_US
from repro.ftl import recovery as regular_recovery
from repro.timessd import recovery as timessd_recovery
from repro.timessd.config import ContentMode

from tests.conftest import make_regular_ssd, make_timessd

PAGE_SIZE = 512


def payload(lpa, step):
    return (b"L%d S%d" % (lpa, step)).ljust(PAGE_SIZE, b"\xa5")


def make_pair():
    """A (RegularSSD, TimeSSD) pair storing real page content."""
    regular = make_regular_ssd()
    timessd = make_timessd(
        content_mode=ContentMode.REAL,
        retention_floor_us=3600 * SECOND_US,
    )
    assert regular.logical_pages == timessd.logical_pages
    return regular, timessd


def op_stream(rng, working, steps):
    """Seeded (op, lpa) stream: ~60% writes, 30% reads, 10% trims."""
    for step in range(steps):
        lpa = rng.randrange(working)
        roll = rng.random()
        if roll < 0.60:
            yield step, "write", lpa
        elif roll < 0.90:
            yield step, "read", lpa
        else:
            yield step, "trim", lpa


class TestLiveEquivalence:
    @pytest.mark.parametrize("seed", [3, 17, 4242])
    def test_read_your_writes_every_step(self, seed):
        regular, timessd = make_pair()
        rng = random.Random(seed)
        working = regular.logical_pages // 3
        model = {}
        for step, op, lpa in op_stream(rng, working, steps=900):
            if op == "write":
                data = payload(lpa, step)
                regular.write(lpa, data)
                timessd.write(lpa, data)
                model[lpa] = data
            elif op == "trim":
                regular.trim(lpa)
                timessd.trim(lpa)
                model.pop(lpa, None)
            expected = model.get(lpa)
            got_regular = regular.read(lpa)[0]
            got_timessd = timessd.read(lpa)[0]
            assert got_regular == expected, "regular diverged at op %d" % step
            assert got_timessd == expected, "timessd diverged at op %d" % step
            for ssd in (regular, timessd):
                ssd.clock.advance(1500)

    def test_full_space_sweep_after_churn(self):
        regular, timessd = make_pair()
        rng = random.Random(11)
        working = regular.logical_pages // 3
        model = {}
        for step, op, lpa in op_stream(rng, working, steps=1500):
            if op == "write":
                data = payload(lpa, step)
                regular.write(lpa, data)
                timessd.write(lpa, data)
                model[lpa] = data
            elif op == "trim":
                regular.trim(lpa)
                timessd.trim(lpa)
                model.pop(lpa, None)
            for ssd in (regular, timessd):
                ssd.clock.advance(1500)
        # Sweep the whole logical space, including never-written LPAs.
        for lpa in range(regular.logical_pages):
            expected = model.get(lpa)
            assert regular.read(lpa)[0] == expected, lpa
            assert timessd.read(lpa)[0] == expected, lpa

    def test_write_amplification_comparable_under_identical_load(self):
        # Not an equality check — TimeSSD pays extra programs for history
        # — but both must stay physically sane under the same workload.
        regular, timessd = make_pair()
        rng = random.Random(5)
        working = regular.logical_pages // 3
        for step, op, lpa in op_stream(rng, working, steps=1200):
            if op == "write":
                data = payload(lpa, step)
                regular.write(lpa, data)
                timessd.write(lpa, data)
            for ssd in (regular, timessd):
                ssd.clock.advance(1500)
        assert regular.host_pages_written == timessd.host_pages_written
        assert regular.write_amplification >= 1.0
        assert timessd.write_amplification >= 1.0


class TestPowerCutEquivalence:
    """Acked writes survive a crash on both devices.

    Trims are excluded: trim durability is advisory (a trimmed-then-
    crashed LPA may legitimately resurrect its last value from flash),
    so the oracle pins only positive durability — every acknowledged
    write must read back its exact acked content after recovery.
    """

    @pytest.mark.parametrize("seed", [9, 2718])
    def test_acked_writes_survive_power_cut(self, seed):
        regular, timessd = make_pair()
        rng = random.Random(seed)
        working = regular.logical_pages // 3
        acked = {}
        for step in range(700):
            lpa = rng.randrange(working)
            data = payload(lpa, step)
            regular.write(lpa, data)
            timessd.write(lpa, data)
            acked[lpa] = data
            for ssd in (regular, timessd):
                ssd.clock.advance(1500)

        regular_recovery.simulate_power_loss(regular)
        regular_stats = regular_recovery.rebuild_from_flash(regular)
        timessd_recovery.simulate_power_loss(timessd)
        timessd_recovery.rebuild_from_flash(timessd)

        assert regular_stats["mapped_lpas"] == len(acked)
        for lpa, data in acked.items():
            assert regular.read(lpa)[0] == data, "regular lost lpa %d" % lpa
            assert timessd.read(lpa)[0] == data, "timessd lost lpa %d" % lpa

    def test_devices_stay_writable_and_equivalent_after_recovery(self):
        regular, timessd = make_pair()
        rng = random.Random(77)
        working = regular.logical_pages // 3
        for step in range(400):
            lpa = rng.randrange(working)
            data = payload(lpa, step)
            regular.write(lpa, data)
            timessd.write(lpa, data)
            for ssd in (regular, timessd):
                ssd.clock.advance(1500)

        regular_recovery.simulate_power_loss(regular)
        regular_recovery.rebuild_from_flash(regular)
        timessd_recovery.simulate_power_loss(timessd)
        timessd_recovery.rebuild_from_flash(timessd)

        # Post-recovery writes behave identically on both devices.
        model = {}
        for step in range(200):
            lpa = rng.randrange(working)
            data = payload(lpa, 10_000 + step)
            regular.write(lpa, data)
            timessd.write(lpa, data)
            model[lpa] = data
            assert regular.read(lpa)[0] == data
            assert timessd.read(lpa)[0] == data
            for ssd in (regular, timessd):
                ssd.clock.advance(1500)
        for lpa, data in model.items():
            assert regular.read(lpa)[0] == data
            assert timessd.read(lpa)[0] == data
