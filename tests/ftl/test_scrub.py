"""Patrol scrubber + refresh engine unit tests (ISSUE 7 tentpole).

The crash-safety side of scrub lives in tests/faults/test_torture_scrub.py
and the heal policy in tests/faults/test_heal.py; these tests pin the
scrubber's mechanics: the read-retry ladder and its at-risk feedback,
patrol ordering, and the three refresh dispositions (valid migration,
retained chain compression, retention-expired skip).
"""

import pytest

from repro.common.units import SECOND_US
from repro.flash.reliability import FlashReliability, UncorrectableReadError

from tests.conftest import make_regular_ssd, make_timessd

PAGE_SIZE = 512
PAGE = b"scrub-me".ljust(PAGE_SIZE, b"\0")


def tame_reliability(**overrides):
    """An enabled engine that essentially never flips a bit."""
    params = dict(raw_bit_error_rate=1e-12, ecc_correctable_bits=40)
    params.update(overrides)
    return FlashReliability(**params)


class TestReadRetryLadder:
    def test_ladder_rescues_a_marginal_read(self):
        # ~33 expected raw errors against an 8-bit budget: step 0 always
        # fails, step 1 (BER x0.1, ~3 errors) recovers.
        ssd = make_regular_ssd(
            reliability=FlashReliability(
                raw_bit_error_rate=8e-3,
                ecc_correctable_bits=8,
                retry_ber_factor=0.1,
                seed=0xA11,
            ),
            patrol_scrub=True,
        )
        ssd.write(3, PAGE)
        data, _ = ssd.read(3)
        assert data == PAGE
        metrics = ssd.obs.metrics
        assert metrics.counter("reliability.retry_reads").value >= 1
        assert metrics.counter("reliability.retry_exhausted").value == 0
        assert metrics.histogram("reliability.retry_depth").count >= 1
        # A read that needed the ladder is at-risk by definition.
        assert ssd.scrubber.at_risk_backlog() >= 1

    def test_error_surfaces_only_after_the_ladder_is_exhausted(self):
        # The retry factor barely helps: every step stays far over budget.
        ssd = make_regular_ssd(
            reliability=FlashReliability(
                raw_bit_error_rate=5e-2,
                ecc_correctable_bits=8,
                retry_ber_factor=0.9,
                seed=0xA11,
            ),
            patrol_scrub=True,
        )
        ssd.write(3, PAGE)
        with pytest.raises(UncorrectableReadError):
            ssd.read(3)
        metrics = ssd.obs.metrics
        assert metrics.counter("reliability.retry_exhausted").value == 1
        assert (
            metrics.counter("reliability.retry_reads").value
            == ssd.config.read_retry_limit
        )

    def test_disabled_engine_bypasses_the_ladder(self):
        ssd = make_regular_ssd()  # no reliability model at all
        ssd.write(3, PAGE)
        assert ssd.read(3)[0] == PAGE
        counters = ssd.obs.metrics.snapshot()["counters"]
        assert counters.get("reliability.retry_reads", 0) == 0


class TestObserveRead:
    def make(self):
        # Budget 40, risk fraction 0.5 -> watermark at 20 corrected bits.
        return make_timessd(
            reliability=tame_reliability(), patrol_scrub=True
        ).scrubber

    def test_watermark_gates_the_queue(self):
        scrubber = self.make()
        scrubber.observe_read(7, corrected_bits=19)
        assert scrubber.at_risk_backlog() == 0
        scrubber.observe_read(7, corrected_bits=20)
        assert scrubber.at_risk_backlog() == 1

    def test_any_retry_queues_even_a_clean_correction(self):
        scrubber = self.make()
        scrubber.observe_read(9, corrected_bits=0, retry_step=1)
        assert scrubber.at_risk_backlog() == 1

    def test_duplicates_are_not_requeued(self):
        scrubber = self.make()
        for _ in range(3):
            scrubber.observe_read(7, corrected_bits=25)
        assert scrubber.at_risk_backlog() == 1
        assert (
            scrubber._ssd.obs.metrics.counter("scrub.at_risk_queued").value
            == 1
        )


class TestPatrolOrder:
    def _sealed_ssd(self):
        ssd = make_timessd(reliability=tame_reliability(), patrol_scrub=True)
        # Allocation stripes across the 4 channels' active blocks, so it
        # takes a few blocks' worth of writes before any block seals.
        for lpa in range(160):
            ssd.write(lpa % 80, PAGE)
            ssd.clock.advance(1000)
        return ssd

    def test_patrol_is_oldest_programmed_first(self):
        ssd = self._sealed_ssd()
        order = ssd.scrubber._patrol_order()
        assert len(order) >= 2
        blocks = ssd.device.blocks
        assert order == sorted(
            order, key=lambda pba: (blocks[pba].last_program_us, pba)
        )

    def test_cursor_rotates_the_sweep(self):
        ssd = self._sealed_ssd()
        scrubber = ssd.scrubber
        order = scrubber._patrol_order()
        scrubber._patrol_cursor = 1
        assert scrubber._rotate(order) == order[1:] + order[:1]
        scrubber._patrol_cursor = len(order)  # wraps
        assert scrubber._rotate(order) == order

    def test_run_patrols_inside_the_window_only(self):
        ssd = self._sealed_ssd()
        now = ssd.clock.now_us
        reads = ssd.obs.metrics.counter("scrub.patrol_reads")
        # A window too small for even one ladder read: no work admitted.
        ssd.scrubber.run(now, now + 10)
        assert reads.value == 0
        end = ssd.scrubber.run(now, now + SECOND_US)
        assert 0 < reads.value <= ssd.config.scrub_pages_per_run
        assert end <= now + SECOND_US


class TestRefreshDispositions:
    def test_valid_page_refresh_migrates_and_marks_the_old_copy(self):
        ssd = make_timessd(patrol_scrub=True)
        ssd.write(5, PAGE)
        head = ssd.mapping.lookup(5)
        ts = ssd.device.peek_page(head).oob.timestamp_us
        ssd.scrubber._scrub_page(head, ssd.clock.now_us, force_refresh=True)
        new_head = ssd.mapping.lookup(5)
        assert new_head != head
        assert ssd.block_manager.is_valid(new_head)
        assert not ssd.block_manager.is_valid(head)
        # Same version, not retained history: the stale copy is
        # PRT-marked so it can never grow a self-referential delta.
        assert ssd.index.is_reclaimable(head)
        # OOB (and hence the version timestamp) carries over unchanged.
        assert ssd.device.peek_page(new_head).oob.timestamp_us == ts
        assert ssd.read(5)[0] == PAGE
        assert ssd.obs.metrics.counter("scrub.refreshed_valid").value == 1

    def test_retained_refresh_preserves_the_version_chain(self):
        ssd = make_timessd(patrol_scrub=True)
        old_payload = b"v1".ljust(PAGE_SIZE, b"\x11")
        ssd.write(5, old_payload)
        old_ppa = ssd.mapping.lookup(5)
        ssd.clock.advance(2000)
        ssd.write(5, b"v2".ljust(PAGE_SIZE, b"\x22"))
        before, _ = ssd.version_chain(5)
        stamps = [v.timestamp_us for v in before]
        assert len(stamps) == 2
        ssd.scrubber._scrub_page(
            old_ppa, ssd.clock.now_us, force_refresh=True
        )
        assert (
            ssd.obs.metrics.counter("scrub.refreshed_retained").value == 1
        )
        # The aged flash page is now redundant with the delta chain...
        assert ssd.index.is_reclaimable(old_ppa)
        # ...and the chain still serves the same timestamps and bytes.
        after, _ = ssd.version_chain(5)
        assert [v.timestamp_us for v in after] == stamps
        assert after[-1].data == old_payload

    def test_expired_page_is_skipped_not_refreshed(self):
        ssd = make_timessd(patrol_scrub=True)
        ssd.write(5, PAGE)
        old_ppa = ssd.mapping.lookup(5)
        for lpa in range(100, 164):
            ssd.write(lpa, PAGE)
        # Overwriting lpa 5 records its old block's bloom group into the
        # active segment; only overwrites record, so the segment chain
        # rotates on the *next* overwrite after the segment max age —
        # one whose old page sits in a different flash block, so the old
        # version's group lands in no newer filter.
        ssd.write(5, b"v2".ljust(PAGE_SIZE, b"\x22"))
        geo = ssd.device.geometry
        block_a = geo.block_of_page(old_ppa)
        victim = next(
            lpa
            for lpa in range(100, 164)
            if geo.block_of_page(ssd.mapping.lookup(lpa)) != block_a
        )
        ssd.clock.advance(SECOND_US)
        ssd.write(victim, b"v2".ljust(PAGE_SIZE, b"\x33"))
        ssd.clock.advance(10 * SECOND_US)
        while ssd.retention.shrink() is not None:
            pass
        assert ssd.blooms.find_segment(old_ppa) is None
        ssd.scrubber._scrub_page(
            old_ppa, ssd.clock.now_us, force_refresh=True
        )
        metrics = ssd.obs.metrics
        assert metrics.counter("scrub.skipped_expired").value == 1
        assert metrics.counter("scrub.refreshed_retained").value == 0
        assert ssd.index.is_reclaimable(old_ppa)
