"""Idle-window background GC at the base-FTL level."""

import random

import pytest

from tests.conftest import make_regular_ssd


def gappy_churn(ssd, writes=4000, gap_us=30_000, seed=8):
    rng = random.Random(seed)
    working = ssd.logical_pages // 2
    for lpa in range(working):
        ssd.write(lpa)
    for _ in range(writes):
        ssd.write(rng.randrange(working))
        ssd.clock.advance(gap_us)


def test_idle_gaps_absorb_gc():
    ssd = make_regular_ssd()
    gappy_churn(ssd)
    assert ssd.background_gc_runs > 0
    # With long predictable gaps, foreground GC nearly disappears.
    assert ssd.gc_runs < ssd.background_gc_runs / 4


def test_background_gc_can_be_disabled():
    ssd = make_regular_ssd(background_gc=False)
    gappy_churn(ssd)
    assert ssd.background_gc_runs == 0
    assert ssd.gc_runs > 0  # the work moved to the foreground


def test_background_gc_improves_write_latency():
    with_bg = make_regular_ssd()
    without_bg = make_regular_ssd(background_gc=False)
    gappy_churn(with_bg)
    gappy_churn(without_bg)
    assert with_bg.write_latency.mean_us <= without_bg.write_latency.mean_us


def test_back_to_back_traffic_gets_no_background_gc():
    ssd = make_regular_ssd()
    rng = random.Random(8)
    working = ssd.logical_pages // 2
    for lpa in range(working):
        ssd.write(lpa)
    for _ in range(3000):
        ssd.write(rng.randrange(working))  # zero think time
    assert ssd.background_gc_runs == 0
    assert ssd.gc_runs > 0
