import pytest

from repro.common.errors import AddressError
from repro.flash.page import NULL_PPA
from repro.ftl.mapping import AddressMappingTable


def test_starts_unmapped():
    amt = AddressMappingTable(16)
    assert amt.lookup(0) == NULL_PPA
    assert not amt.is_mapped(0)
    assert amt.mapped_count() == 0


def test_update_and_lookup():
    amt = AddressMappingTable(16)
    assert amt.update(3, 100) == NULL_PPA
    assert amt.lookup(3) == 100
    assert amt.is_mapped(3)


def test_update_returns_previous():
    amt = AddressMappingTable(16)
    amt.update(3, 100)
    assert amt.update(3, 200) == 100


def test_invalidate():
    amt = AddressMappingTable(16)
    amt.update(3, 100)
    assert amt.invalidate(3) == 100
    assert not amt.is_mapped(3)


def test_bounds_checked():
    amt = AddressMappingTable(16)
    with pytest.raises(AddressError):
        amt.lookup(16)
    with pytest.raises(AddressError):
        amt.update(-1, 0)


def test_mapped_lpas_iteration():
    amt = AddressMappingTable(8)
    amt.update(1, 10)
    amt.update(5, 50)
    assert list(amt.mapped_lpas()) == [1, 5]
    assert amt.mapped_count() == 2


def test_rejects_empty_table():
    with pytest.raises(ValueError):
        AddressMappingTable(0)


class TestDemandCache:
    def test_miss_costs_translation_read(self):
        amt = AddressMappingTable(16, cache_entries=2)
        amt.lookup(0)
        assert amt.translation_reads == 1
        amt.lookup(0)  # hit
        assert amt.translation_reads == 1

    def test_dirty_eviction_costs_translation_write(self):
        amt = AddressMappingTable(16, cache_entries=1)
        amt.update(0, 5)  # dirty entry 0
        amt.lookup(1)  # evicts 0 -> writeback
        assert amt.translation_writes == 1

    def test_clean_eviction_is_free(self):
        amt = AddressMappingTable(16, cache_entries=1)
        amt.lookup(0)
        amt.lookup(1)
        assert amt.translation_writes == 0

    def test_lru_order(self):
        amt = AddressMappingTable(16, cache_entries=2)
        amt.lookup(0)
        amt.lookup(1)
        amt.lookup(0)  # refresh 0; next miss evicts 1
        amt.lookup(2)
        reads_before = amt.translation_reads
        amt.lookup(0)  # still cached
        assert amt.translation_reads == reads_before


def test_infinite_cache_never_counts_traffic():
    amt = AddressMappingTable(1024)
    for lpa in range(1024):
        amt.update(lpa, lpa)
        amt.lookup(lpa)
    assert amt.translation_reads == 0
    assert amt.translation_writes == 0
