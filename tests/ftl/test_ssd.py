import random

import pytest

from repro.common.errors import AddressError
from repro.flash.page import NULL_PPA
from repro.ftl.ssd import RegularSSD, SSDConfig

from tests.conftest import fill_and_churn, make_regular_ssd, small_geometry


def test_config_defaults():
    cfg = SSDConfig(geometry=small_geometry())
    assert 0 < cfg.logical_pages < cfg.geometry.total_pages
    assert cfg.gc_low_watermark >= 4


def test_config_rejects_bad_op_ratio():
    with pytest.raises(ValueError):
        SSDConfig(geometry=small_geometry(), op_ratio=0)


def test_write_then_read_roundtrip(regular_ssd):
    regular_ssd.write(5, b"payload")
    data, response = regular_ssd.read(5)
    assert data == b"payload"
    assert response > 0


def test_read_unwritten_returns_none(regular_ssd):
    data, response = regular_ssd.read(9)
    assert data is None
    assert response == 0


def test_overwrite_returns_latest(regular_ssd):
    regular_ssd.write(5, b"v1")
    regular_ssd.clock.advance(10)
    regular_ssd.write(5, b"v2")
    assert regular_ssd.read(5)[0] == b"v2"


def test_trim_unmaps(regular_ssd):
    regular_ssd.write(5, b"v1")
    regular_ssd.trim(5)
    assert regular_ssd.read(5)[0] is None


def test_write_advances_clock(regular_ssd):
    t0 = regular_ssd.clock.now_us
    regular_ssd.write(0)
    assert regular_ssd.clock.now_us >= t0 + regular_ssd.device.timing.program_us


def test_oob_back_pointer_chains_versions(regular_ssd):
    regular_ssd.write(7, b"v1")
    ppa1 = regular_ssd.mapping.lookup(7)
    regular_ssd.clock.advance(5)
    regular_ssd.write(7, b"v2")
    ppa2 = regular_ssd.mapping.lookup(7)
    oob = regular_ssd.device.peek_page(ppa2).oob
    assert oob.back_pointer == ppa1
    assert oob.lpa == 7


def test_write_amplification_starts_at_one(regular_ssd):
    for lpa in range(20):
        regular_ssd.write(lpa)
    assert regular_ssd.write_amplification == pytest.approx(1.0)


def test_gc_reclaims_space_under_churn():
    ssd = make_regular_ssd()
    fill_and_churn(ssd, working_set=ssd.logical_pages // 2, churn_writes=ssd.logical_pages * 3)
    assert ssd.gc_runs > 0
    assert ssd.block_manager.free_block_count > ssd.config.gc_low_watermark
    assert ssd.write_amplification >= 1.0


def test_gc_preserves_all_current_data():
    ssd = make_regular_ssd()
    rng = random.Random(4)
    expected = {}
    working = ssd.logical_pages // 2
    for _ in range(ssd.logical_pages * 3):
        lpa = rng.randrange(working)
        payload = b"%d:%d" % (lpa, ssd.clock.now_us)
        ssd.write(lpa, payload)
        expected[lpa] = payload
        ssd.clock.advance(100)
    for lpa, payload in expected.items():
        assert ssd.read(lpa)[0] == payload


def test_latency_reflects_gc_pressure():
    quiet = make_regular_ssd()
    for lpa in range(100):
        quiet.write(lpa)
    busy = make_regular_ssd()
    fill_and_churn(busy, busy.logical_pages // 2, busy.logical_pages * 4, gap_us=0)
    assert busy.write_latency.mean_us > quiet.write_latency.mean_us


def test_out_of_range_lpa_rejected(regular_ssd):
    with pytest.raises(AddressError):
        regular_ssd.write(regular_ssd.logical_pages)


def test_write_range_and_read_range(regular_ssd):
    pages = [b"a", b"b", b"c"]
    regular_ssd.write_range(10, 3, pages)
    data, total = regular_ssd.read_range(10, 3)
    assert data == pages
    assert total > 0


def _erase_spread_after_hot_churn(ssd):
    rng = random.Random(1)
    for lpa in range(ssd.logical_pages // 2):
        ssd.write(lpa)
    for _ in range(ssd.logical_pages * 6):
        ssd.write(rng.randrange(16))
    counts = ssd.device.block_erase_counts()
    return max(counts) - min(counts)


def test_wear_leveling_bounds_spread():
    # Hammer a tiny hot set so unleveled wear concentrates on few blocks.
    leveled = make_regular_ssd(wear_check_interval=8, wear_gap_threshold=4)
    unleveled = make_regular_ssd(wear_check_interval=10**9)
    leveled_spread = _erase_spread_after_hot_churn(leveled)
    unleveled_spread = _erase_spread_after_hot_churn(unleveled)
    assert leveled.wear_leveler.swaps > 0
    assert unleveled.wear_leveler.swaps == 0
    assert leveled_spread < unleveled_spread
    assert leveled_spread <= 8 * leveled.config.wear_gap_threshold


def test_free_page_estimate_decreases_with_writes(regular_ssd):
    before = regular_ssd.free_page_estimate()
    regular_ssd.write(0)
    assert regular_ssd.free_page_estimate() == before - 1
