"""Checkpointed recovery: sublinear scans, exact equivalence, crash safety."""

import random

import pytest

from repro.ftl.checkpoint import (
    CHECKPOINT_STREAM,
    CheckpointImage,
    find_translation_blocks,
    load_latest_checkpoint,
    summary_for,
)
from repro.ftl.recovery import rebuild_from_flash, simulate_power_loss

from tests.conftest import make_regular_ssd, small_geometry


def churned(interval=4, seed=11, writes=900, **overrides):
    ssd = make_regular_ssd(
        geometry=small_geometry(blocks_per_plane=32),
        checkpoint_interval_blocks=interval,
        **overrides,
    )
    rng = random.Random(seed)
    working = ssd.logical_pages // 2
    for lpa in range(working):
        ssd.write(lpa)
        ssd.clock.advance(1200)
    for _ in range(writes):
        ssd.write(rng.randrange(working))
        ssd.clock.advance(1200)
    return ssd


def mapping_snapshot(ssd):
    return {
        lpa: ssd.mapping.lookup(lpa)
        for lpa in range(ssd.logical_pages)
        if ssd.mapping.lookup(lpa) is not None
    }


def test_checkpoints_are_written_and_superseded():
    ssd = churned()
    counters = ssd.obs.metrics.snapshot()["counters"]
    assert counters["recovery.checkpoint.written"] > 2
    # Steady state reuses cached summaries instead of rescanning.
    assert counters["recovery.checkpoint.summaries_reused"] > 0
    # Old checkpoints are garbage-collected, not hoarded: the writer's
    # working set stays a handful of translation blocks.
    assert counters["recovery.checkpoint.superseded_erased"] > 0
    assert len(find_translation_blocks(ssd.device)) <= 8


def test_checkpointed_recovery_matches_full_scan_exactly():
    ssd = churned()
    before = mapping_snapshot(ssd)
    erases_before = ssd.device.block_erase_counts()
    simulate_power_loss(ssd)
    stats = rebuild_from_flash(ssd)
    assert mapping_snapshot(ssd) == before
    assert ssd.device.block_erase_counts() == erases_before
    assert stats["checkpoint_seq"] is not None
    assert stats["summarized_blocks"] > 0
    # The whole point: most sealed blocks come from the checkpoint.
    assert stats["scanned_blocks"] < stats["summarized_blocks"]
    # Device stays writable afterwards.
    for lpa in range(40):
        ssd.write(lpa)
        ssd.clock.advance(500)
    assert mapping_snapshot(ssd).keys() >= set(range(40))


def test_recovery_without_checkpoints_is_identical():
    """checkpoint_interval_blocks=None (the default) still recovers."""
    with_cp = churned()
    without_cp = churned(interval=None)
    assert without_cp.checkpointer is None
    for ssd in (with_cp, without_cp):
        before = mapping_snapshot(ssd)
        simulate_power_loss(ssd)
        rebuild_from_flash(ssd)
        assert mapping_snapshot(ssd) == before
    stats = rebuild_from_flash(simulate_power_loss(churned(interval=None)))
    assert stats["checkpoint_seq"] is None
    assert stats["summarized_blocks"] == 0


def test_stale_summary_is_rejected_after_reuse():
    """A summary keyed on an old erase count must not apply to the
    block's new life."""
    ssd = churned()
    image = load_latest_checkpoint(
        ssd.device, find_translation_blocks(ssd.device)
    )
    assert image is not None
    pba = next(iter(image.summaries))
    core = ssd.device.core
    assert summary_for(image, core, pba, ssd.device.geometry.pages_per_block)
    core.erase_count[pba] += 1  # simulate GC + reuse after the checkpoint
    assert (
        summary_for(image, core, pba, ssd.device.geometry.pages_per_block)
        is None
    )
    core.erase_count[pba] -= 1
    core.failed[pba] = 1  # grown bad after the checkpoint
    assert (
        summary_for(image, core, pba, ssd.device.geometry.pages_per_block)
        is None
    )


def test_torn_root_falls_back_to_previous_checkpoint():
    """A power cut mid-checkpoint leaves the previous one in force."""
    ssd = churned()
    blocks = find_translation_blocks(ssd.device)
    image = load_latest_checkpoint(ssd.device, blocks)
    assert image is not None
    # Tear the newest root page in place, as a cut mid-commit would.
    device = ssd.device
    core = device.core
    torn = None
    for pba in blocks:
        first = device.geometry.first_page_of_block(pba)
        for offset in range(core.write_pointer[pba]):
            payload = core.data[first + offset]
            if isinstance(payload, CheckpointImage) and payload.seq == image.seq:
                page = device.peek_page(first + offset)
                page.oob = page.oob.as_torn()
                torn = payload
    assert torn is not None
    fallback = load_latest_checkpoint(device, blocks)
    assert fallback is None or fallback.seq < image.seq
    # Recovery still rebuilds the exact mapping off the older image.
    before = mapping_snapshot(ssd)
    simulate_power_loss(ssd)
    rebuild_from_flash(ssd)
    assert mapping_snapshot(ssd) == before


def test_missing_part_invalidates_checkpoint():
    """Tearing one continuation page must invalidate its whole image."""
    ssd = churned()
    device = ssd.device
    core = device.core
    blocks = find_translation_blocks(device)
    image = load_latest_checkpoint(device, blocks)
    assert image is not None
    if image.parts == 0:
        pytest.skip("checkpoint fits in the root page on this geometry")
    from repro.ftl.checkpoint import CheckpointPart

    for pba in blocks:
        first = device.geometry.first_page_of_block(pba)
        for offset in range(core.write_pointer[pba]):
            payload = core.data[first + offset]
            if isinstance(payload, CheckpointPart) and payload.seq == image.seq:
                page = device.peek_page(first + offset)
                page.oob = page.oob.as_torn()
    fallback = load_latest_checkpoint(device, blocks)
    assert fallback is None or fallback.seq < image.seq


def test_checkpoint_trigger_is_interval_based():
    ssd = make_regular_ssd(
        geometry=small_geometry(blocks_per_plane=32),
        checkpoint_interval_blocks=1000,  # never triggers in this test
    )
    for lpa in range(60):
        ssd.write(lpa)
        ssd.clock.advance(500)
    counters = ssd.obs.metrics.snapshot()["counters"]
    assert counters["recovery.checkpoint.written"] == 0
    assert find_translation_blocks(ssd.device) == set()


def test_recovered_checkpointer_adopts_and_supersedes():
    """After recovery the writer must supersede, not collide with, the
    surviving checkpoint chain."""
    ssd = churned()
    simulate_power_loss(ssd)
    rebuild_from_flash(ssd)
    seq_after_recovery = ssd.checkpointer.seq
    assert seq_after_recovery > 0
    old_blocks = find_translation_blocks(ssd.device)
    rng = random.Random(3)
    for _ in range(700):
        ssd.write(rng.randrange(ssd.logical_pages // 2))
        ssd.clock.advance(1200)
    assert ssd.checkpointer.seq > seq_after_recovery
    image = load_latest_checkpoint(
        ssd.device, find_translation_blocks(ssd.device)
    )
    assert image is not None and image.seq > seq_after_recovery
    # The pre-crash translation blocks were reclaimed once superseded.
    counters = ssd.obs.metrics.snapshot()["counters"]
    assert counters["recovery.checkpoint.superseded_erased"] > 0


def test_checkpoint_stream_is_translation_kind():
    ssd = churned()
    from repro.ftl.block_manager import BlockKind

    for pba in find_translation_blocks(ssd.device):
        assert ssd.block_manager.kind(pba) is BlockKind.TRANSLATION
    active = ssd.block_manager.active_block(CHECKPOINT_STREAM)
    if active is not None:
        assert ssd.block_manager.kind(active) is BlockKind.TRANSLATION
