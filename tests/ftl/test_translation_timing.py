"""Demand-paged mapping (DFTL) with timed translation I/O."""

import random

import pytest

from tests.conftest import make_regular_ssd


def test_fully_cached_mapping_charges_nothing():
    ssd = make_regular_ssd()
    for lpa in range(64):
        ssd.write(lpa)
        ssd.read(lpa)
    assert ssd.device.counters.translation_reads == 0
    assert ssd.device.counters.translation_writes == 0


def test_cache_misses_cost_device_time():
    cached = make_regular_ssd()
    demand = make_regular_ssd(mapping_cache_entries=8)
    rng = random.Random(1)
    # Random access over a working set far larger than the cache.
    lpas = [rng.randrange(256) for _ in range(400)]
    for ssd in (cached, demand):
        for lpa in lpas:
            ssd.write(lpa)
            ssd.clock.advance(100)
    assert demand.device.counters.translation_reads > 0
    assert demand.write_latency.mean_us > cached.write_latency.mean_us


def test_dirty_evictions_write_translation_pages():
    ssd = make_regular_ssd(mapping_cache_entries=4)
    for lpa in range(64):
        ssd.write(lpa)  # every entry is dirtied, then evicted
    assert ssd.device.counters.translation_writes > 0


def test_hot_working_set_hits_cache():
    ssd = make_regular_ssd(mapping_cache_entries=16)
    for _ in range(20):
        for lpa in range(8):  # fits comfortably in the cache
            ssd.write(lpa)
    # Only compulsory misses, no steady-state translation traffic.
    assert ssd.device.counters.translation_reads <= 16


def test_reads_also_charge_misses():
    ssd = make_regular_ssd(mapping_cache_entries=4)
    for lpa in range(32):
        ssd.write(lpa)
    before = ssd.device.counters.translation_reads
    latencies = []
    for lpa in range(32):
        _data, response = ssd.read(lpa)
        latencies.append(response)
    assert ssd.device.counters.translation_reads > before
    # Some reads paid a translation fetch on top of the data read.
    assert max(latencies) >= 2 * ssd.device.timing.read_us
