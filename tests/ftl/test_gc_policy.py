"""GC victim policies: greedy vs cost-benefit."""

import random

import pytest

from repro.common.errors import AddressError
from repro.ftl.block_manager import BlockKind

from tests.conftest import make_regular_ssd, small_geometry


def hot_cold_churn(ssd, writes=6000, seed=12):
    """90% of writes hit 10% of the working set — cost-benefit's home turf."""
    rng = random.Random(seed)
    working = ssd.logical_pages // 2
    hot = max(1, working // 10)
    for lpa in range(working):
        ssd.write(lpa)
    for _ in range(writes):
        if rng.random() < 0.9:
            ssd.write(rng.randrange(hot))
        else:
            ssd.write(hot + rng.randrange(working - hot))
        ssd.clock.advance(200)
    return ssd


def test_unknown_policy_rejected():
    ssd = make_regular_ssd()
    with pytest.raises(AddressError):
        ssd.block_manager.select_victim("magic", 0)


def test_cost_benefit_prefers_old_garbage():
    ssd = make_regular_ssd()
    bm = ssd.block_manager
    geo = ssd.device.geometry
    # Fill two generations of data far apart in time.
    for lpa in range(geo.pages_per_block * geo.channels):
        ssd.write(lpa)
    ssd.clock.advance(10_000_000)
    base = geo.pages_per_block * geo.channels
    for lpa in range(base, base + geo.pages_per_block * geo.channels):
        ssd.write(lpa)
    # Make an old block slightly dirty and a new block very dirty.
    old_block = geo.block_of_page(ssd.mapping.lookup(0))
    new_block = geo.block_of_page(ssd.mapping.lookup(base))
    dirtied_old = 0
    for ppa in geo.pages_of_block(old_block):
        if bm.is_valid(ppa) and dirtied_old < 4:
            bm.invalidate_page(ppa)
            dirtied_old += 1
    dirtied_new = 0
    for ppa in geo.pages_of_block(new_block):
        if bm.is_valid(ppa) and dirtied_new < 8:
            bm.invalidate_page(ppa)
            dirtied_new += 1
    # Greedy picks the dirtiest; cost-benefit weighs age in.
    assert bm.select_victim("greedy", ssd.clock.now_us) == new_block
    assert bm.select_victim("cost_benefit", ssd.clock.now_us) == old_block


def test_both_policies_sustain_hot_cold_churn():
    for policy in ("greedy", "cost_benefit"):
        ssd = make_regular_ssd(gc_policy=policy)
        hot_cold_churn(ssd, writes=4000)
        assert ssd.block_manager.free_block_count > 0
        assert ssd.write_amplification < 4.0


def test_policies_preserve_data():
    rng = random.Random(3)
    ssd = make_regular_ssd(gc_policy="cost_benefit")
    expected = {}
    working = ssd.logical_pages // 2
    for _ in range(4000):
        lpa = rng.randrange(working)
        payload = b"%d:%d" % (lpa, ssd.clock.now_us)
        ssd.write(lpa, payload)
        expected[lpa] = payload
        ssd.clock.advance(150)
    for lpa, payload in expected.items():
        assert ssd.read(lpa)[0] == payload
