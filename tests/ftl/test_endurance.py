"""Block endurance and bad-block retirement."""

import random

import pytest

from repro.common.errors import DeviceFullError
from repro.ftl.block_manager import BlockKind

from tests.conftest import make_regular_ssd


def churn(ssd, working, writes, seed=5):
    rng = random.Random(seed)
    for lpa in range(working):
        ssd.write(lpa)
    for _ in range(writes):
        ssd.write(rng.randrange(working))


def test_unlimited_endurance_never_retires():
    ssd = make_regular_ssd()
    churn(ssd, ssd.logical_pages // 2, 4000)
    assert ssd.block_manager.retired_blocks == 0


def test_worn_blocks_are_retired():
    ssd = make_regular_ssd(block_endurance_cycles=4)
    try:
        churn(ssd, ssd.logical_pages // 2, 8000)
    except DeviceFullError:
        pass  # wearing completely out is fine for this check
    assert ssd.block_manager.retired_blocks > 0
    retired = [
        pba
        for pba in range(ssd.device.geometry.total_blocks)
        if ssd.block_manager.kind(pba) is BlockKind.RETIRED
    ]
    assert len(retired) == ssd.block_manager.retired_blocks
    # Retired blocks really did exhaust their budget.
    for pba in retired:
        assert ssd.device.blocks[pba].erase_count >= 4


def test_device_dies_when_spares_run_out():
    ssd = make_regular_ssd(block_endurance_cycles=3)
    with pytest.raises(DeviceFullError):
        churn(ssd, ssd.logical_pages // 2, 100_000)
    assert ssd.block_manager.retired_blocks > 0


def test_endurance_report():
    ssd = make_regular_ssd(block_endurance_cycles=50)
    churn(ssd, ssd.logical_pages // 2, 2000)
    report = ssd.endurance_report()
    assert report["rated_pe_cycles"] == 50
    assert 0 < report["life_used"] < 1
    assert report["max_pe_cycles"] >= report["min_pe_cycles"]
    assert report["total_erases"] == sum(ssd.device.block_erase_counts())


def test_wear_leveling_extends_lifetime():
    """With leveling, the same hot workload survives more writes before
    the first retirement (wear spreads instead of burning few blocks)."""

    def writes_until_first_retirement(ssd):
        rng = random.Random(3)
        for lpa in range(ssd.logical_pages // 2):
            ssd.write(lpa)
        writes = 0
        while ssd.block_manager.retired_blocks == 0 and writes < 60_000:
            ssd.write(rng.randrange(16))  # hot hammering
            writes += 1
        return writes

    leveled = make_regular_ssd(
        block_endurance_cycles=40, wear_check_interval=8, wear_gap_threshold=4
    )
    unleveled = make_regular_ssd(
        block_endurance_cycles=40, wear_check_interval=10**9
    )
    survived_leveled = writes_until_first_retirement(leveled)
    survived_unleveled = writes_until_first_retirement(unleveled)
    assert survived_leveled > survived_unleveled
